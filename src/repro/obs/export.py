"""Exporters: Chrome-trace/Perfetto JSON for traces, JSON for metrics.

The trace format is the Chrome Trace Event format (the ``traceEvents``
array of ``"ph": "X"`` complete events), which both ``chrome://tracing``
and https://ui.perfetto.dev load directly.  Virtual time maps to the
format's microseconds; each simulated node becomes a process (with a
``process_name`` metadata event) and each trace becomes a thread lane, so
one operation reads as one row of nested spans.
"""

from __future__ import annotations

import json
from typing import Iterable

from .trace import Span


def chrome_trace(spans: Iterable[Span]) -> dict:
    """Convert spans to a Chrome-trace JSON document (virtual µs)."""
    spans = list(spans)
    nodes = sorted({span.node for span in spans})
    pids = {node: index + 1 for index, node in enumerate(nodes)}
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pids[node],
            "tid": 0,
            "args": {"name": node},
        }
        for node in nodes
    ]
    for span in spans:
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.name.split(".")[0],
                "ts": span.begin * 1e6,
                "dur": span.duration * 1e6,
                "pid": pids[span.node],
                "tid": span.trace_id,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "trace_id": span.trace_id,
                    "src": span.src,
                    "dst": span.dst,
                    "bytes": span.bytes,
                    "incarnation": span.incarnation,
                    "retransmits": span.retransmits,
                    "duplicates": span.duplicates,
                    "delivered": span.delivered,
                    **(span.attrs or {}),
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(document: dict) -> list[str]:
    """Schema-check an exported trace; returns a list of problems (empty
    when valid).

    Beyond the structural checks the two graph invariants the CI smoke job
    gates on are verified: every ``parent_id`` resolves to a span in the
    same trace (**no orphan parents**), and a child begins no earlier than
    its parent (**spans nest** in virtual time).
    """
    errors: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    by_span: dict[tuple[int, int], dict] = {}
    complete: list[dict] = []
    for index, event in enumerate(events):
        if not isinstance(event, dict) or "ph" not in event:
            errors.append(f"event {index}: not a trace event object")
            continue
        if event["ph"] != "X":
            continue
        for required in ("name", "ts", "dur", "pid", "tid", "args"):
            if required not in event:
                errors.append(f"event {index}: missing {required!r}")
                break
        else:
            args = event["args"]
            if not isinstance(args, dict) or "span_id" not in args:
                errors.append(f"event {index}: args.span_id missing")
                continue
            if event["dur"] < 0:
                errors.append(f"event {index}: negative duration")
            by_span[(event["tid"], args["span_id"])] = event
            complete.append(event)
    for event in complete:
        parent_id = event["args"].get("parent_id")
        if parent_id is None:
            continue
        parent = by_span.get((event["tid"], parent_id))
        if parent is None:
            errors.append(
                f"span {event['args']['span_id']} (trace {event['tid']}): "
                f"orphan parent {parent_id}"
            )
        elif event["ts"] < parent["ts"] - 1e-6:
            errors.append(
                f"span {event['args']['span_id']} (trace {event['tid']}): "
                f"begins before its parent"
            )
    return errors


def write_chrome_trace(path: str, spans: Iterable[Span]) -> dict:
    """Write the Chrome-trace JSON for ``spans`` to ``path``; returns the
    document so callers can validate or summarise it."""
    document = chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return document


def write_metrics(path: str, registry) -> dict:
    """Dump a :class:`~repro.obs.metrics.MetricsRegistry` snapshot as JSON."""
    document = registry.to_dict()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True, default=str)
        handle.write("\n")
    return document
