"""Distributed tracing on the simulator's virtual clock.

The design is Dapper with the randomness removed.  A :class:`Tracer` hangs
off the :class:`~repro.net.simnet.Network` (``network.tracer``, ``None`` by
default); when present, every ``Network.send`` opens a :class:`Span` for the
message and stamps a :class:`TraceContext` onto it, and every handler
executes *inside* its message's span (the network activates the context
around ``_dispatch``), so sends made while handling a message become its
children without any per-call-site plumbing.  Operation root spans are
opened by the admission scheduler around each launch, which makes one
publish/retrieve/query submission exactly one trace.

Determinism: trace and span ids are sequential integers from per-tracer
counters — no wall clock, no :mod:`random` — so a traced run is replayable
and two runs of the same seed produce identical trees.

Honest accounting under faults:

* a span's ``bytes`` are accumulated at the same call sites that feed the
  :class:`~repro.net.simnet.TrafficMeter` (including lost attempts that the
  reliable channel retries), so span byte totals reconcile with metered
  wire bytes;
* retransmissions and duplicate deliveries *annotate* the one span for the
  logical message (``retransmits`` / ``duplicates`` counters) instead of
  creating new spans — a retried message is still one hop;
* spans record the sender's **incarnation**.  A crash-restart bumps the
  incarnation, and the network already discards deliveries addressed to a
  dead incarnation, so a restarted node can never execute inside — and
  therefore never parent onto — a span tree of its previous life.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping

#: Wire cost of a propagated trace context: trace id + span id + parent id,
#: eight bytes each.  Charged into ``Message.size`` for remote sends only
#: when tracing is enabled (local deliveries never touch the wire).
CONTEXT_WIRE_BYTES = 24

#: Payload keys lifted onto spans at send time; the profile builder and the
#: exporters key on these.  Both the payload envelope and an RPC ``body``
#: are inspected.
_ATTR_KEYS = ("query_id", "exchange_id", "scan_op_id", "call_id", "relation")


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The propagated identity of one span: which trace, which span."""

    trace_id: int
    span_id: int


@dataclass(slots=True)
class Span:
    """One traced unit of work, stamped in virtual time.

    Message spans run from ``sent_at`` to delivery; operation root spans run
    from admission to resolution.  ``end`` stays ``None`` for a message that
    was never delivered (lost past the retransmit budget, or addressed to an
    incarnation that died first) — the exporters render those as zero-width
    and mark ``delivered: false``.
    """

    trace_id: int
    span_id: int
    parent_id: int | None
    name: str
    node: str
    begin: float
    end: float | None = None
    src: str = ""
    dst: str = ""
    bytes: int = 0
    incarnation: int = 0
    retransmits: int = 0
    duplicates: int = 0
    delivered: bool = False
    attrs: dict | None = None

    @property
    def duration(self) -> float:
        return (self.end - self.begin) if self.end is not None else 0.0

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node,
            "begin": self.begin,
            "end": self.end,
            "src": self.src,
            "dst": self.dst,
            "bytes": self.bytes,
            "incarnation": self.incarnation,
            "retransmits": self.retransmits,
            "duplicates": self.duplicates,
            "delivered": self.delivered,
            "attrs": dict(self.attrs) if self.attrs else {},
        }


@dataclass(slots=True)
class OperatorSummary:
    """Runtime-operator counters one node emits at fragment teardown.

    The span tree knows bytes and timing per exchange; rows and batches live
    in the runtime operators, so each participant reports them here when its
    fragment is torn down and the profile builder joins the two by
    ``(query_id, op_id)``.
    """

    query_id: str
    node: str
    op_id: int
    op_type: str
    counters: dict[str, int] = field(default_factory=dict)


class Tracer:
    """Span store, deterministic id source, and active-context stack.

    The simulator is single-threaded and handlers run to completion, so the
    active context is a plain stack: the network pushes a message's context
    before dispatching it and pops it after, and the scheduler does the same
    around operation launches.
    """

    context_wire_bytes = CONTEXT_WIRE_BYTES

    def __init__(self, max_spans: int = 1_000_000) -> None:
        self.max_spans = max_spans
        self.spans: dict[int, Span] = {}
        self.summaries: list[OperatorSummary] = []
        #: First trace id seen per query id (restarts of a query reuse the
        #: submission's trace, so later query ids map to the same trace).
        self.query_traces: dict[str, int] = {}
        #: Spans not recorded because ``max_spans`` was reached.
        self.dropped_spans = 0
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._traces: dict[int, list[int]] = {}
        self._stack: list[TraceContext] = []

    # -- active context --------------------------------------------------------

    def current(self) -> TraceContext | None:
        """The context new sends parent onto, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def current_trace_id(self) -> int | None:
        context = self.current()
        return context.trace_id if context is not None else None

    def activate(self, span: Span) -> TraceContext:
        """Push ``span`` as the active context; returns the pop token."""
        context = TraceContext(span.trace_id, span.span_id)
        self._stack.append(context)
        return context

    def deactivate(self, token: TraceContext) -> None:
        if self._stack and self._stack[-1] == token:
            self._stack.pop()

    # -- span lifecycle --------------------------------------------------------

    def start_trace(
        self, name: str, node: str, at: float, attrs: dict | None = None
    ) -> Span:
        """Open a fresh root span (always a new trace, ignoring any active
        context) — used by the scheduler so each operation is one trace even
        when it is submitted from inside another operation's callback."""
        return self.open_span(name, node, at, attrs=attrs)

    def open_span(
        self,
        name: str,
        node: str,
        at: float,
        trace_id: int | None = None,
        parent_id: int | None = None,
        attrs: dict | None = None,
    ) -> Span:
        """Open a span explicitly — in an existing trace when ``trace_id`` is
        given (how restart/recovery phases re-enter a query's trace from a
        context-free callback), in a fresh trace otherwise."""
        if trace_id is None:
            trace_id = next(self._trace_ids)
        return self._record(trace_id, parent_id, name, node, at, node, "", 0, attrs)

    def end_span(self, span: Span, at: float) -> None:
        span.end = at
        span.delivered = True

    # -- network hooks (all cheap no-ops when tracing is off: the network
    # -- guards every call behind ``self.tracer is not None``) -----------------

    def on_send(self, message, now: float, incarnation: int) -> None:
        """Open a span for a freshly sent message and stamp its context.

        The span parents onto the active context — the span of the message
        whose handler (or the operation whose launch) performed this send —
        or starts a new trace for spontaneous sends (gossip timers, drivers).
        """
        parent = self.current()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = next(self._trace_ids), None
        attrs = self._extract_attrs(message.payload)
        span = self._record(
            trace_id,
            parent_id,
            message.kind,
            message.src,
            now,
            message.src,
            message.dst,
            incarnation,
            attrs,
        )
        if attrs:
            query_id = attrs.get("query_id")
            if query_id is not None:
                self.query_traces.setdefault(query_id, trace_id)
        message.trace = TraceContext(trace_id, span.span_id)

    def on_transmit(self, message) -> None:
        """Charge one wire transmission (including lost attempts) to the
        message's span — mirrors every ``TrafficMeter.record`` call."""
        span = self._span_of(message)
        if span is not None:
            span.bytes += message.size

    def on_retransmit(self, message) -> None:
        span = self._span_of(message)
        if span is not None:
            span.retransmits += 1

    def on_duplicate(self, message) -> None:
        span = self._span_of(message)
        if span is not None:
            span.duplicates += 1

    def begin_delivery(self, message, now: float) -> TraceContext | None:
        """Close the hop span at delivery time and make it the active
        context for the handler about to run.  Returns the token for
        :meth:`end_delivery` (``None`` when the message carries no context)."""
        context = message.trace
        if context is None:
            return None
        span = self.spans.get(context.span_id)
        if span is not None:
            if span.end is None:
                span.end = now
            span.delivered = True
        self._stack.append(context)
        return context

    def end_delivery(self, token: TraceContext | None) -> None:
        if token is not None:
            self.deactivate(token)

    # -- operator summaries ----------------------------------------------------

    def record_operator_summary(
        self,
        query_id: str,
        node: str,
        op_id: int,
        op_type: str,
        counters: dict[str, int],
    ) -> None:
        self.summaries.append(
            OperatorSummary(query_id, node, op_id, op_type, dict(counters))
        )

    def summaries_for(self, query_ids: Iterable[str]) -> list[OperatorSummary]:
        wanted = set(query_ids)
        return [summary for summary in self.summaries if summary.query_id in wanted]

    # -- queries ---------------------------------------------------------------

    def spans_of(self, trace_id: int) -> list[Span]:
        """The spans of one trace, in creation (== send) order."""
        ids = self._traces.get(trace_id, ())
        return [self.spans[span_id] for span_id in ids if span_id in self.spans]

    def all_spans(self) -> list[Span]:
        return list(self.spans.values())

    def trace_of_query(self, query_id: str) -> int | None:
        return self.query_traces.get(query_id)

    def query_ids_of(self, trace_id: int) -> set[str]:
        """Every query id observed in a trace — a restarted query appears
        under both its original and relaunched ids."""
        return {
            query_id
            for query_id, owner in self.query_traces.items()
            if owner == trace_id
        }

    # -- internals -------------------------------------------------------------

    def _record(
        self,
        trace_id: int,
        parent_id: int | None,
        name: str,
        node: str,
        begin: float,
        src: str,
        dst: str,
        incarnation: int,
        attrs: dict | None,
    ) -> Span:
        span = Span(
            trace_id=trace_id,
            span_id=next(self._span_ids),
            parent_id=parent_id,
            name=name,
            node=node,
            begin=begin,
            src=src,
            dst=dst,
            incarnation=incarnation,
            attrs=attrs,
        )
        if len(self.spans) < self.max_spans:
            self.spans[span.span_id] = span
            self._traces.setdefault(trace_id, []).append(span.span_id)
        else:
            self.dropped_spans += 1
        return span

    def _span_of(self, message) -> Span | None:
        context = message.trace
        if context is None:
            return None
        return self.spans.get(context.span_id)

    @staticmethod
    def _extract_attrs(payload) -> dict | None:
        if not isinstance(payload, Mapping):
            return None
        attrs = {}
        body = payload.get("body")
        sources = (payload, body) if isinstance(body, Mapping) else (payload,)
        for source in sources:
            for key in _ATTR_KEYS:
                value = source.get(key)
                if value is not None and key not in attrs:
                    attrs[key] = value
        return attrs or None
