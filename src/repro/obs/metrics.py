"""A tagged metrics registry over the existing stats objects.

Instruments are Prometheus-shaped: a named :class:`Counter`, :class:`Gauge`
or :class:`Histogram` holds one value per *tag set* (``rpc.bytes{kind=...}``,
``scheduler.admitted{initiator=...}``, ``cache.hits{tier=...}``).  Histogram
buckets are **fixed** and in virtual seconds — simulated latencies are
deterministic, so adaptive buckets would only make runs harder to diff.

The hot-path stats objects (``TrafficMeter``, ``SchedulerStats``,
``CacheStats``, ``QueryStatistics``) keep their plain-dict internals — the
simulator's inner loop should not pay instrument lookups — and instead
expose a ``metric_series()`` view.  The registry pulls those through
registered *collectors* at snapshot time, so ``Cluster.observability()``
presents one uniformly-named view without a single extra instruction on the
message path.

Every stats object also speaks the common ``to_dict()`` protocol
(:class:`SupportsToDict`); the registry's own export uses it too.
"""

from __future__ import annotations

from typing import Callable, Iterable, Protocol, runtime_checkable

#: One collected sample: ``(name, tags, value)``.
Series = tuple[str, dict, object]

#: Fixed virtual-time latency buckets (seconds).  They span the regimes the
#: simulator produces: sub-millisecond RPCs up to multi-second scans.
DEFAULT_TIME_BUCKETS = (
    0.0005,
    0.001,
    0.002,
    0.005,
    0.01,
    0.02,
    0.05,
    0.1,
    0.2,
    0.5,
    1.0,
    2.0,
    5.0,
)


@runtime_checkable
class SupportsToDict(Protocol):
    """The common serialization protocol all stats objects implement."""

    def to_dict(self) -> dict:  # pragma: no cover - protocol signature
        ...


def format_series(name: str, tags: dict) -> str:
    """Render ``name{k=v,...}`` with sorted tag keys (stable across runs)."""
    if not tags:
        return name
    inner = ",".join(f"{key}={tags[key]}" for key in sorted(tags))
    return f"{name}{{{inner}}}"


def _tag_key(tags: dict) -> tuple:
    return tuple(sorted(tags.items()))


class _Instrument:
    """Base: one named instrument holding a value per tag set."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: dict[tuple, object] = {}
        self._tags: dict[tuple, dict] = {}

    def _slot(self, tags: dict) -> tuple:
        key = _tag_key(tags)
        if key not in self._tags:
            self._tags[key] = dict(tags)
        return key

    def series(self) -> list[Series]:
        return [
            (self.name, self._tags[key], self._values[key])
            for key in sorted(self._values)
        ]

    def to_dict(self) -> dict:
        return {format_series(self.name, tags): value for _, tags, value in self.series()}


class Counter(_Instrument):
    """Monotonically increasing count per tag set."""

    def inc(self, amount: int = 1, **tags) -> None:
        key = self._slot(tags)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **tags) -> int:
        return self._values.get(_tag_key(tags), 0)

    def total(self) -> int:
        return sum(self._values.values())


class Gauge(_Instrument):
    """Last-written value per tag set."""

    def set(self, value: float, **tags) -> None:
        self._values[self._slot(tags)] = value

    def value(self, **tags) -> float | None:
        return self._values.get(_tag_key(tags))


class Histogram(_Instrument):
    """Fixed-bucket histogram per tag set.

    Each tag set's value is ``{"count", "sum", "min", "max", "buckets"}``
    where ``buckets`` maps each upper bound (plus ``inf``) to a cumulative
    count, Prometheus-style.
    """

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS) -> None:
        super().__init__(name)
        self.buckets = tuple(buckets)

    def observe(self, value: float, **tags) -> None:
        key = self._slot(tags)
        state = self._values.get(key)
        if state is None:
            state = {
                "count": 0,
                "sum": 0.0,
                "min": value,
                "max": value,
                "buckets": {bound: 0 for bound in self.buckets},
            }
            state["buckets"][float("inf")] = 0
            self._values[key] = state
        state["count"] += 1
        state["sum"] += value
        state["min"] = min(state["min"], value)
        state["max"] = max(state["max"], value)
        for bound in self.buckets:
            if value <= bound:
                state["buckets"][bound] += 1
        state["buckets"][float("inf")] += 1

    def count(self, **tags) -> int:
        state = self._values.get(_tag_key(tags))
        return state["count"] if state else 0


class MetricsRegistry:
    """Named instruments plus pull-style collectors.

    ``snapshot()`` merges both sources into one flat, uniformly named view;
    ``to_dict()`` is the JSON-ready form the exporters and
    ``Cluster.observability()`` use.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}
        self._collectors: list[Callable[[], Iterable[Series]]] = []

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Histogram(name, buckets)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Histogram):
            raise TypeError(f"metric {name!r} is a {type(instrument).__name__}")
        return instrument

    def register_collector(self, collector: Callable[[], Iterable[Series]]) -> None:
        """Register a pull source: a callable returning ``(name, tags,
        value)`` samples at snapshot time."""
        self._collectors.append(collector)

    def series(self) -> list[Series]:
        samples: list[Series] = []
        for name in sorted(self._instruments):
            samples.extend(self._instruments[name].series())
        for collector in self._collectors:
            samples.extend(collector())
        return samples

    def snapshot(self) -> dict[str, object]:
        """The flat ``{"name{tags}": value}`` view with uniform naming."""
        return {
            format_series(name, tags): value for name, tags, value in self.series()
        }

    def to_dict(self) -> dict:
        return {"metrics": self.snapshot()}

    def _get(self, name: str, cls) -> _Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(f"metric {name!r} is a {type(instrument).__name__}")
        return instrument
