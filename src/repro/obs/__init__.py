"""Unified observability: virtual-time tracing, metrics, query profiles.

Three pillars, all on the simulator's virtual clock:

* :mod:`repro.obs.trace` — Dapper-style distributed tracing.  A
  :class:`~repro.obs.trace.TraceContext` rides on every
  :class:`~repro.net.simnet.Message` (charged honestly into the wire size,
  and **off by default** so golden wire vectors and committed traffic
  numbers stay byte-identical), and every handler runs inside its message's
  span, so one operation yields one complete span tree.
* :mod:`repro.obs.metrics` — a tagged Counter/Gauge/Histogram registry the
  existing stats objects (``TrafficMeter``, ``SchedulerStats``,
  ``CacheStats``, ``QueryStatistics``) export through with uniform naming
  (``rpc.bytes{kind=...}``, ``scheduler.admitted{initiator=...}``,
  ``cache.hits{tier=...}``); snapshot it with ``Cluster.observability()``.
* :mod:`repro.obs.profile` — per-operator rows/batches/bytes/virtual-time
  attributed from the span tree, via ``QueryStatistics.profile()``.

:mod:`repro.obs.export` converts traces to Chrome-trace/Perfetto JSON, and
``python -m repro.obs.report`` runs a figure query with tracing on and dumps
the trace, the metrics snapshot, and the execution profile.
"""

from .export import chrome_trace, validate_chrome_trace, write_chrome_trace
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import QueryProfile, build_profile, format_profile
from .trace import Span, TraceContext, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryProfile",
    "Span",
    "TraceContext",
    "Tracer",
    "build_profile",
    "chrome_trace",
    "format_profile",
    "validate_chrome_trace",
    "write_chrome_trace",
]
