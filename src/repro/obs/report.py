"""CLI: run a figure query with tracing on and export the observability.

Builds a TPC-H cluster, enables tracing, runs one figure query, and writes

* the Chrome-trace/Perfetto JSON of the query's trace (``--trace``),
* the metrics-registry snapshot (``--metrics``),

then prints the per-operator execution profile and the trace's wire-byte
coverage (span bytes vs. metered bytes) to stderr.  ``--validate`` schema-
checks the exported trace — spans must nest and no parent may be orphaned
— and exits non-zero on failure; the CI ``trace-smoke`` job runs exactly
this.

Example::

    PYTHONPATH=src python -m repro.obs.report --query Q3 --nodes 8 \
        --scale-factor 1.0 --trace trace.json --metrics metrics.json

Load ``trace.json`` at https://ui.perfetto.dev (or ``chrome://tracing``).
"""

from __future__ import annotations

import argparse
import json
import sys

from .export import validate_chrome_trace, write_chrome_trace, write_metrics


def run_report(
    query: str = "Q3",
    nodes: int = 8,
    scale_factor: float = 1.0,
    seed: int = 0,
    trace_path: str | None = None,
    metrics_path: str | None = None,
    validate: bool = False,
) -> int:
    from ..cluster import Cluster
    from ..net.profiles import LAN_GIGABIT
    from ..query.service import QueryOptions
    from ..workloads import tpch

    instance = tpch.generate(scale_factor, seed)
    cluster = Cluster(nodes, profile=LAN_GIGABIT)
    cluster.publish_relations(instance.relation_list())

    tracer = cluster.enable_tracing()
    before = cluster.network.traffic.snapshot()
    result = cluster.query(
        tpch.query(query), options=QueryOptions(use_result_cache=False)
    )
    metered = before.delta(cluster.network.traffic.snapshot())

    statistics = result.statistics
    profile = statistics.profile()
    if profile is None:
        print("no trace was captured for the query", file=sys.stderr)
        return 2
    print(profile.format(), file=sys.stderr)

    spans = tracer.spans_of(statistics.trace_id)
    traced_bytes = sum(span.bytes for span in spans)
    coverage = traced_bytes / max(1, metered.total_bytes)
    print(
        f"trace {statistics.trace_id}: {len(spans)} spans, "
        f"{traced_bytes:,d} of {metered.total_bytes:,d} metered wire bytes "
        f"({coverage:.1%} coverage)",
        file=sys.stderr,
    )

    status = 0
    if trace_path:
        document = write_chrome_trace(trace_path, spans)
        print(f"wrote trace to {trace_path}", file=sys.stderr)
        if validate:
            errors = validate_chrome_trace(document)
            if errors:
                for error in errors:
                    print(f"trace schema error: {error}", file=sys.stderr)
                status = 1
            else:
                print("trace schema: ok (spans nest, no orphan parents)",
                      file=sys.stderr)
    if metrics_path:
        write_metrics(metrics_path, cluster.metrics)
        print(f"wrote metrics to {metrics_path}", file=sys.stderr)
    if not trace_path and not metrics_path:
        json.dump(cluster.observability(), sys.stdout, indent=1, default=str)
        print()
    if validate and coverage < 0.95:
        print(
            f"trace coverage {coverage:.1%} is below the 95% acceptance bar",
            file=sys.stderr,
        )
        status = 1
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--query", default="Q3", help="TPC-H figure query name")
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--scale-factor", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trace", dest="trace_path", default=None,
                        help="write Chrome-trace/Perfetto JSON here")
    parser.add_argument("--metrics", dest="metrics_path", default=None,
                        help="write the metrics snapshot JSON here")
    parser.add_argument("--validate", action="store_true",
                        help="fail on trace schema or coverage violations")
    arguments = parser.parse_args(argv)
    return run_report(
        query=arguments.query,
        nodes=arguments.nodes,
        scale_factor=arguments.scale_factor,
        seed=arguments.seed,
        trace_path=arguments.trace_path,
        metrics_path=arguments.metrics_path,
        validate=arguments.validate,
    )


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
