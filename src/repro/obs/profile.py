"""Per-query execution profiles, attributed from the span tree.

A profile joins two sources over one query's trace:

* **spans** give bytes, message counts and virtual-time activity per
  operator: data/EOS messages carry the ``exchange_id`` of the exchange
  they belong to and scan-protocol messages carry the ``scan_op_id``, and
  any span without its own marker (replica chases, tuple fetches spawned
  while handling a scan message) inherits the attribution of its nearest
  marked ancestor;
* **operator summaries** give rows and batches: each participant reports
  its runtime-operator counters to the tracer when a fragment is torn
  down, and the builder aggregates them by ``(op_id)`` across nodes.

A restarted query keeps its submission's trace, so the profile spans all
attempts — ``query_ids`` lists every id the trace executed under.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .trace import Span, Tracer

#: Span kinds that belong to the query as a whole rather than any operator.
_OVERHEAD_KINDS = (
    "query.start",
    "query.recover",
    "query.abort",
    "query.restart",
    "query.recovery",
)


@dataclass
class OperatorProfileRow:
    """One operator's aggregated runtime footprint."""

    op_id: int
    depth: int
    label: str
    rows: int | None = None
    batches: int | None = None
    bytes: int = 0
    messages: int = 0
    busy_from: float | None = None
    busy_until: float | None = None

    @property
    def busy_seconds(self) -> float:
        if self.busy_from is None or self.busy_until is None:
            return 0.0
        return self.busy_until - self.busy_from

    def to_dict(self) -> dict:
        return {
            "op_id": self.op_id,
            "depth": self.depth,
            "label": self.label,
            "rows": self.rows,
            "batches": self.batches,
            "bytes": self.bytes,
            "messages": self.messages,
            "busy_from": self.busy_from,
            "busy_until": self.busy_until,
        }


@dataclass
class QueryProfile:
    """The per-operator breakdown of one traced query."""

    trace_id: int
    query_ids: tuple[str, ...]
    operators: list[OperatorProfileRow] = field(default_factory=list)
    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    messages_by_kind: dict[str, int] = field(default_factory=dict)
    #: Columnar-encoding footprint of the query (per-codec encoded bytes and
    #: batch counters), copied from the statistics when available.
    encoding: dict = field(default_factory=dict)
    #: Resilience activity during the query (hedges by outcome, retries,
    #: breaker skips), copied from the statistics when available.
    resilience: dict = field(default_factory=dict)
    #: Integrity activity during the query (corruptions detected by site,
    #: read-repairs by source), copied from the statistics when available.
    integrity: dict = field(default_factory=dict)
    overhead_bytes: int = 0
    total_bytes: int = 0
    span_count: int = 0
    begin: float | None = None
    end: float | None = None

    def operator_bytes(self) -> dict[int, int]:
        return {row.op_id: row.bytes for row in self.operators}

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "query_ids": list(self.query_ids),
            "operators": [row.to_dict() for row in self.operators],
            "bytes_by_kind": dict(self.bytes_by_kind),
            "messages_by_kind": dict(self.messages_by_kind),
            "encoding": dict(self.encoding),
            "resilience": dict(self.resilience),
            "integrity": dict(self.integrity),
            "overhead_bytes": self.overhead_bytes,
            "total_bytes": self.total_bytes,
            "span_count": self.span_count,
            "begin": self.begin,
            "end": self.end,
        }

    def format(self) -> str:
        return format_profile(self)


def build_profile(
    tracer: Tracer, trace_id: int, plan, encoding: dict | None = None,
    resilience: dict | None = None, integrity: dict | None = None,
) -> QueryProfile:
    """Assemble the profile of ``trace_id`` over ``plan``'s operator tree."""
    spans = tracer.spans_of(trace_id)
    query_ids = tuple(sorted(tracer.query_ids_of(trace_id)))
    profile = QueryProfile(trace_id=trace_id, query_ids=query_ids)
    if encoding:
        profile.encoding = dict(encoding)
    if resilience:
        profile.resilience = dict(resilience)
    if integrity:
        profile.integrity = dict(integrity)
    profile.span_count = len(spans)

    rows: list[OperatorProfileRow] = []
    by_op: dict[int, OperatorProfileRow] = {}

    def visit(op, depth: int) -> None:
        row = OperatorProfileRow(op_id=op.op_id, depth=depth, label=repr(op))
        rows.append(row)
        by_op[op.op_id] = row
        for child in op.children():
            visit(child, depth + 1)

    visit(plan.root, 0)
    profile.operators = rows

    attribution: dict[int, int | None] = {}
    for span in spans:
        op_id = _attribute(span, attribution, tracer.spans)
        if profile.begin is None or span.begin < profile.begin:
            profile.begin = span.begin
        if span.end is not None and (profile.end is None or span.end > profile.end):
            profile.end = span.end
        profile.total_bytes += span.bytes
        if span.bytes or span.name:
            profile.bytes_by_kind[span.name] = (
                profile.bytes_by_kind.get(span.name, 0) + span.bytes
            )
            profile.messages_by_kind[span.name] = (
                profile.messages_by_kind.get(span.name, 0) + 1
            )
        row = by_op.get(op_id) if op_id is not None else None
        if row is None:
            profile.overhead_bytes += span.bytes
            continue
        row.bytes += span.bytes
        row.messages += 1
        if row.busy_from is None or span.begin < row.busy_from:
            row.busy_from = span.begin
        if span.end is not None and (row.busy_until is None or span.end > row.busy_until):
            row.busy_until = span.end

    for summary in tracer.summaries_for(query_ids):
        row = by_op.get(summary.op_id)
        if row is None:
            continue
        produced = _rows_of(summary.counters)
        if produced is not None:
            row.rows = (row.rows or 0) + produced
        batches = summary.counters.get("batches_sent")
        if batches is not None:
            row.batches = (row.batches or 0) + batches

    return profile


def format_profile(profile: QueryProfile) -> str:
    """Render the profile as an indented operator tree."""
    ids = ", ".join(profile.query_ids) or "?"
    header = (
        f"profile of {ids} (trace {profile.trace_id}, "
        f"{profile.span_count} spans, {profile.total_bytes} wire bytes)"
    )
    lines = [header]
    for row in profile.operators:
        cells = []
        if row.rows is not None:
            cells.append(f"rows={row.rows}")
        if row.batches is not None:
            cells.append(f"batches={row.batches}")
        if row.messages:
            cells.append(f"msgs={row.messages}")
            cells.append(f"bytes={row.bytes}")
        if row.busy_from is not None and row.busy_until is not None:
            cells.append(
                f"t=[{row.busy_from * 1e3:.3f}ms..{row.busy_until * 1e3:.3f}ms]"
            )
        suffix = ("  [" + " ".join(cells) + "]") if cells else ""
        lines.append("  " * row.depth + row.label + suffix)
    if profile.overhead_bytes:
        lines.append(f"(+ {profile.overhead_bytes} bytes of dissemination/control)")
    encoded = profile.encoding.get("encoded_bytes") if profile.encoding else None
    if encoded:
        per_codec = " ".join(
            f"{codec}={encoded[codec]}" for codec in sorted(encoded)
        )
        lines.append(
            f"(encoded columns: {per_codec}; "
            f"{profile.encoding.get('batches_encoded', 0)} batches encoded, "
            f"{profile.encoding.get('batches_skipped', 0)} skipped undecoded)"
        )
    if profile.resilience:
        hedges = profile.resilience.get("hedges", {})
        launched = sum(
            hedges.get(outcome, 0) for outcome in ("won", "lost")
        )
        lines.append(
            f"(resilience: {launched} hedges launched "
            f"({hedges.get('won', 0)} won), "
            f"{profile.resilience.get('retries', 0)} retries, "
            f"{profile.resilience.get('breaker_skips', 0)} breaker skips)"
        )
    if profile.integrity:
        detected = profile.integrity.get("detected", {})
        repaired = profile.integrity.get("repaired", {})
        sites = " ".join(f"{site}={detected[site]}" for site in sorted(detected))
        lines.append(
            f"(integrity: {sum(detected.values())} corruptions detected"
            + (f" ({sites})" if sites else "")
            + f", {sum(repaired.values())} read-repaired)"
        )
    return "\n".join(lines)


def _attribute(
    span: Span, cache: dict[int, int | None], spans: dict[int, Span]
) -> int | None:
    """The operator a span belongs to: its own exchange/scan marker, or the
    nearest marked ancestor's (memoised per span)."""
    if span.span_id in cache:
        return cache[span.span_id]
    op_id: int | None = None
    attrs = span.attrs or {}
    if span.name in _OVERHEAD_KINDS:
        op_id = None
    elif "exchange_id" in attrs:
        op_id = attrs["exchange_id"]
    elif "scan_op_id" in attrs:
        op_id = attrs["scan_op_id"]
    elif span.parent_id is not None:
        parent = spans.get(span.parent_id)
        if parent is not None:
            op_id = _attribute(parent, cache, spans)
    cache[span.span_id] = op_id
    return op_id


def _rows_of(counters: dict[str, int]) -> int | None:
    """The 'rows' a summary contributes: rows produced for regular operators,
    rows sent for exchange senders (the receiver side reports
    ``rows_received``, which would double-count the same tuples)."""
    for key in ("rows_out", "rows_sent"):
        if key in counters:
            return counters[key]
    return None
