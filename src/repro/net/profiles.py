"""Network profiles matching the three experimental settings in the paper.

Section VI evaluates the system on:

* a **local-area** 16-node cluster with Gigabit Ethernet (Sections VI-B);
* a **simulated wide-area network** created by shaping the LAN with NetEm
  (added latency) and the HTB queueing discipline (reduced per-node
  bandwidth), used for the bandwidth sweep of Figure 17 and the latency
  observations of Section VI-C;
* **Amazon EC2 "large" instances** (7.5 GB RAM, virtualised dual-core 2 GHz
  Opteron) for the 10–100 node scalability experiments of Figures 18–20.

Each profile bundles a default :class:`~repro.net.simnet.HostSpec` with the
link latency used between nodes.  Benchmarks construct clusters from these
profiles so that each figure runs under the same network conditions as the
corresponding experiment in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from .simnet import HostSpec, Network


@dataclass(frozen=True)
class NetworkProfile:
    """A named combination of host characteristics and link latency."""

    name: str
    host: HostSpec
    latency: float
    failure_detection_delay: float = 0.05

    def create_network(self) -> Network:
        return Network(
            latency=self.latency,
            default_host=self.host,
            failure_detection_delay=self.failure_detection_delay,
        )

    def with_bandwidth(self, bytes_per_second: float) -> "NetworkProfile":
        """Derive a profile with throttled per-node bandwidth (the HTB shaping
        used for Figure 17)."""
        return NetworkProfile(
            name=f"{self.name}-bw{int(bytes_per_second)}",
            host=self.host.scaled(bandwidth=bytes_per_second),
            latency=self.latency,
            failure_detection_delay=self.failure_detection_delay,
        )

    def with_latency(self, latency_seconds: float) -> "NetworkProfile":
        """Derive a profile with added link latency (the NetEm shaping of
        Section VI-C)."""
        return NetworkProfile(
            name=f"{self.name}-lat{int(latency_seconds * 1000)}ms",
            host=self.host,
            latency=latency_seconds,
            failure_detection_delay=self.failure_detection_delay,
        )


#: The 16-node local cluster: dual-core 2.4 GHz Xeon, Gigabit Ethernet.
LAN_GIGABIT = NetworkProfile(
    name="lan-gigabit",
    host=HostSpec(
        cpu_factor=1.0,
        egress_bandwidth=125_000_000.0,
        ingress_bandwidth=125_000_000.0,
        disk_read_bandwidth=80_000_000.0,
    ),
    latency=0.0001,  # ~0.1 ms LAN round trip
)

#: A wide-area baseline: institutional broadband, ~20 ms latency, 3200 KB/s.
WAN_DEFAULT = NetworkProfile(
    name="wan",
    host=HostSpec(
        cpu_factor=1.0,
        egress_bandwidth=3_200_000.0,
        ingress_bandwidth=3_200_000.0,
        disk_read_bandwidth=80_000_000.0,
    ),
    latency=0.020,
)

#: Amazon EC2 "large" instances: slightly slower virtualised 2 GHz cores,
#: high bandwidth between instances inside the data centre.
EC2_LARGE = NetworkProfile(
    name="ec2-large",
    host=HostSpec(
        cpu_factor=0.8,
        egress_bandwidth=100_000_000.0,
        ingress_bandwidth=100_000_000.0,
        disk_read_bandwidth=60_000_000.0,
    ),
    latency=0.0005,
)


def wan_profile(bandwidth_kbytes_per_second: float, latency_ms: float = 20.0) -> NetworkProfile:
    """A shaped WAN profile, mirroring the paper's NetEm/HTB configuration.

    ``bandwidth_kbytes_per_second`` is the per-node bandwidth in KB/s exactly
    as on the x-axis of Figure 17 (the paper sweeps 100–3200 KB/s).
    """
    return NetworkProfile(
        name=f"wan-{int(bandwidth_kbytes_per_second)}KBps-{int(latency_ms)}ms",
        host=HostSpec(
            cpu_factor=1.0,
            egress_bandwidth=bandwidth_kbytes_per_second * 1000.0,
            ingress_bandwidth=bandwidth_kbytes_per_second * 1000.0,
            disk_read_bandwidth=80_000_000.0,
        ),
        latency=latency_ms / 1000.0,
    )


PROFILES = {
    "lan": LAN_GIGABIT,
    "wan": WAN_DEFAULT,
    "ec2": EC2_LARGE,
}
