"""Connection-oriented messaging on top of the raw simulator.

The paper's engine keeps a direct TCP connection between every pair of nodes
(Section III-B): with at most a few hundred participants a full mesh is cheap,
gives single-hop routing, and — crucially for Section V-A — makes failures
visible almost immediately because the TCP connection to a crashed peer drops.

:class:`RpcEndpoint` models that connection layer for one node.  It provides:

* request/response messaging with correlation IDs (``call``), so the storage
  layer can express its coordinator → index-node → data-node protocols;
* one-way messages (``cast``), used by the push-style query dataflow;
* failure notification for outstanding requests: when the peer a request was
  sent to fails, the request's ``on_failure`` callback fires instead of its
  reply callback (the dropped-connection signal);
* periodic application-level pings to detect "hung" peers, as described in
  Section V-C.  In the crash-stop simulation a hung node is modelled as a
  failed node whose failure-detection delay is long, so pings are what bound
  the detection time when connection drops are slow to surface.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Mapping

from ..common.errors import NodeFailedError
from .simnet import Message, Network, SimNode

#: RPC handler signature: ``handler(src_address, payload, respond)`` where
#: ``respond(payload, size)`` sends the reply.  Handlers may also ignore
#: ``respond`` for one-way casts.
RpcHandler = Callable[[str, Mapping[str, object], Callable[[Mapping[str, object], int], None]], None]

_RPC_REQUEST = "rpc.request"
_RPC_RESPONSE = "rpc.response"
_RPC_CAST = "rpc.cast"
_PING = "rpc.ping"
_PONG = "rpc.pong"


@dataclass
class _PendingCall:
    dst: str
    on_reply: Callable[[Mapping[str, object]], None]
    on_failure: Callable[[str], None] | None
    #: Simulated send time, for the endpoint's reply-time observer.
    sent_at: float = 0.0


class RpcEndpoint:
    """Request/response and one-way messaging for a single simulated node."""

    #: Wire size of an empty control message (headers + correlation id).
    CONTROL_SIZE = 16

    def __init__(self, node: SimNode) -> None:
        self.node = node
        self.network: Network = node.network
        self.address = node.address
        self._methods: dict[str, RpcHandler] = {}
        self._pending: dict[int, _PendingCall] = {}
        self._call_ids = itertools.count(1)
        #: Optional measurement hooks (installed by the resilience layer):
        #: ``reply_observer(dst, rtt)`` fires for every reply received,
        #: ``failure_observer(dst, kind)`` for every failed call, with
        #: ``kind`` in ``{"refused", "failed", "timeout"}``.  ``None`` (the
        #: default) keeps the endpoint byte-identical to the unhooked one.
        self.reply_observer: Callable[[str, float], None] | None = None
        self.failure_observer: Callable[[str, str], None] | None = None
        self._ping_seq = itertools.count(1)
        self._ping_outstanding: dict[int, str] = {}
        node.register_handler(_RPC_REQUEST, self._on_request)
        node.register_handler(_RPC_RESPONSE, self._on_response)
        node.register_handler(_RPC_CAST, self._on_cast)
        node.register_handler(_PING, self._on_ping)
        node.register_handler(_PONG, self._on_pong)
        node.add_failure_listener(self._on_peer_failure)
        node.services["rpc"] = self

    # -- registration ----------------------------------------------------------

    def register(self, method: str, handler: RpcHandler) -> None:
        """Register the handler for RPC method ``method``."""
        self._methods[method] = handler

    def unregister(self, method: str) -> None:
        self._methods.pop(method, None)

    def reset_volatile(self) -> None:
        """Drop per-connection state after a crash-restart.

        Outstanding calls and pings died with the process; registered method
        handlers survive (they are part of the program, not of a connection).
        A reply to a pre-crash call that somehow arrives later finds no
        pending entry and is ignored.
        """
        self._pending.clear()
        self._ping_outstanding.clear()

    # -- outgoing --------------------------------------------------------------

    def call(
        self,
        dst: str,
        method: str,
        payload: Mapping[str, object],
        size: int,
        on_reply: Callable[[Mapping[str, object]], None],
        on_failure: Callable[[str], None] | None = None,
        timeout: float | None = None,
    ) -> int:
        """Send a request to ``dst`` and invoke ``on_reply`` with the response.

        If ``dst`` fails before replying, ``on_failure`` (if given) is invoked
        with the failed address; otherwise the failure is silently dropped and
        the caller is expected to learn about it through its own failure
        listener (this matches how the query layer reacts: the recovery
        manager, not each individual call site, drives compensation).

        ``timeout`` (simulated seconds) bounds the wait for the reply: when it
        elapses first, ``on_failure`` fires and a reply arriving later is
        discarded — which is only safe for idempotent requests, since the
        peer may still execute the handler.  The resilience layer uses this
        for its adaptively-timed read RPCs.

        A call to a peer that *already* crashed fails fast: the failure
        notification for that peer has fired (or will fire) exactly once, so a
        request issued afterwards — typically from an operation still holding
        a pre-crash routing snapshot — would otherwise wait forever for a
        reply that cannot come.  This models the immediate connection-refused
        a new TCP connection to a dead host gets.
        """
        call_id = next(self._call_ids)
        self._pending[call_id] = _PendingCall(
            dst, on_reply, on_failure, sent_at=self.network.now
        )
        if timeout is not None:

            def expire() -> None:
                if not self.node.alive:
                    return
                pending = self._pending.pop(call_id, None)
                if pending is None:
                    return  # answered (or failed) in time
                if self.failure_observer is not None:
                    self.failure_observer(dst, "timeout")
                if pending.on_failure is not None:
                    pending.on_failure(dst)

            self.network.schedule(timeout, expire)
        destination = self.network.nodes.get(dst)
        if destination is not None and not destination.alive:
            tracer = self.network.tracer
            if tracer is not None:
                # No message is ever sent, but the refused attempt is still an
                # event the trace should show: a zero-byte span closed at the
                # (simulated) moment the connection refusal surfaces.
                parent = tracer.current()
                now = self.network.now
                span = tracer.open_span(
                    "rpc.refused", self.address, now,
                    trace_id=parent.trace_id if parent is not None else None,
                    parent_id=parent.span_id if parent is not None else None,
                    attrs={"call_id": call_id, "method": method},
                )
                span.dst = dst
                tracer.end_span(
                    span, now + self.network.link_latency(self.address, dst)
                )

            def refuse() -> None:
                if not self.node.alive:
                    return  # the caller crashed too; nothing to resume
                pending = self._pending.pop(call_id, None)
                if pending is None:
                    return
                if self.failure_observer is not None:
                    self.failure_observer(dst, "refused")
                if pending.on_failure is not None:
                    pending.on_failure(dst)

            self.network.schedule(self.network.link_latency(self.address, dst), refuse)
            return call_id
        self.node.send(
            dst,
            _RPC_REQUEST,
            {"method": method, "call_id": call_id, "body": payload},
            size + self.CONTROL_SIZE,
        )
        return call_id

    def cast(self, dst: str, method: str, payload: Mapping[str, object], size: int) -> None:
        """Send a one-way message (no response expected)."""
        self.node.send(dst, _RPC_CAST, {"method": method, "body": payload}, size + self.CONTROL_SIZE)

    def ping(self, dst: str, on_timeout: Callable[[str], None], timeout: float = 1.0) -> None:
        """Application-level liveness probe.

        If no pong arrives within ``timeout`` simulated seconds, ``on_timeout``
        is invoked with the probed address.  This is the background ping of
        Section V-C used to detect hung machines.
        """
        seq = next(self._ping_seq)
        self._ping_outstanding[seq] = dst
        self.node.send(dst, _PING, {"seq": seq}, self.CONTROL_SIZE)

        def check() -> None:
            if seq in self._ping_outstanding:
                del self._ping_outstanding[seq]
                on_timeout(dst)

        self.network.schedule(timeout, check)

    # -- incoming --------------------------------------------------------------

    def _on_request(self, message: Message) -> None:
        method = message.payload["method"]
        call_id = message.payload["call_id"]
        handler = self._methods.get(method)
        if handler is None:
            raise NodeFailedError(
                self.address, f"no RPC handler registered for method {method!r}"
            )

        def respond(payload: Mapping[str, object], size: int) -> None:
            self.node.send(
                message.src,
                _RPC_RESPONSE,
                {"call_id": call_id, "body": payload},
                size + self.CONTROL_SIZE,
            )

        handler(message.src, message.payload["body"], respond)

    def cancel_call(self, call_id: int) -> bool:
        """Withdraw interest in an outstanding call (hedged-race loser).

        The request may still execute remotely; its reply, if it arrives,
        finds no pending entry and is discarded.  Returns whether the call
        was still pending.
        """
        return self._pending.pop(call_id, None) is not None

    def _on_response(self, message: Message) -> None:
        call_id = message.payload["call_id"]
        pending = self._pending.pop(call_id, None)
        if pending is None:
            return  # response to a call already failed over
        if self.reply_observer is not None:
            self.reply_observer(pending.dst, self.network.now - pending.sent_at)
        pending.on_reply(message.payload["body"])

    def _on_cast(self, message: Message) -> None:
        method = message.payload["method"]
        handler = self._methods.get(method)
        if handler is None:
            raise NodeFailedError(
                self.address, f"no RPC handler registered for method {method!r}"
            )
        handler(message.src, message.payload["body"], lambda payload, size: None)

    def _on_ping(self, message: Message) -> None:
        self.node.send(message.src, _PONG, {"seq": message.payload["seq"]}, self.CONTROL_SIZE)

    def _on_pong(self, message: Message) -> None:
        self._ping_outstanding.pop(message.payload["seq"], None)

    def _on_peer_failure(self, failed_address: str) -> None:
        affected = [cid for cid, call in self._pending.items() if call.dst == failed_address]
        for call_id in affected:
            call = self._pending.pop(call_id)
            if self.failure_observer is not None:
                self.failure_observer(failed_address, "failed")
            if call.on_failure is not None:
                call.on_failure(failed_address)


def rpc_endpoint(node: SimNode) -> RpcEndpoint:
    """Return the node's RPC endpoint, creating it if necessary."""
    existing = node.services.get("rpc")
    if isinstance(existing, RpcEndpoint):
        return existing
    return RpcEndpoint(node)
