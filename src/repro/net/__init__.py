"""Simulated networking substrate: event loop, transport and network profiles."""

from .profiles import EC2_LARGE, LAN_GIGABIT, PROFILES, WAN_DEFAULT, NetworkProfile, wan_profile
from .simnet import HostSpec, Message, Network, SimNode, TrafficMeter, TrafficSnapshot, broadcast
from .transport import RpcEndpoint, rpc_endpoint

__all__ = [
    "EC2_LARGE",
    "HostSpec",
    "LAN_GIGABIT",
    "Message",
    "Network",
    "NetworkProfile",
    "PROFILES",
    "RpcEndpoint",
    "SimNode",
    "TrafficMeter",
    "TrafficSnapshot",
    "WAN_DEFAULT",
    "broadcast",
    "rpc_endpoint",
    "wan_profile",
]
