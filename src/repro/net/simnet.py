"""A deterministic discrete-event network simulator.

The paper evaluates ORCHESTRA's storage and query layer on a 16-node Gigabit
cluster, on bandwidth/latency-shaped networks (NetEm + HTB), and on up to 100
Amazon EC2 instances.  This module replaces those physical test beds with a
discrete-event simulation so that the same distributed algorithms — the very
same message exchanges — can run on a single machine with a virtual clock.

Model
-----
* Every :class:`SimNode` models one participant machine.  A node owns three
  serial resources: a CPU, an egress link and an ingress link.  Handlers for
  incoming messages run on the CPU; message transmission occupies the sender's
  egress link, then traverses the link latency, then occupies the receiver's
  ingress link.  This simple M/D/1-per-resource model is what produces the
  paper's qualitative behaviours — e.g. the query initiator's ingress link
  becoming the bottleneck for the STBenchmark *Copy* query, or low per-node
  bandwidth dominating run time in the WAN experiments (Figure 17).
* Messages between a node and itself are delivered through a fast local path:
  no latency, no bandwidth charge, and no contribution to the traffic meters
  (the paper's co-location optimisation relies on local index/data accesses
  being free of network cost).
* A :class:`TrafficMeter` records bytes sent per node and in total; benchmark
  figures 8/9/11/12/15/16/19/20 read these counters.
* Node failures (:meth:`Network.fail_node`) stop delivery of all in-flight and
  future messages to/from the failed node and, after a configurable detection
  delay, notify every other live node through registered failure listeners —
  modelling the dropped-TCP-connection signal of Section V-A.

The simulation is fully deterministic: events at equal timestamps are ordered
by insertion sequence, and no wall-clock or OS randomness is consulted.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from ..common.errors import NodeFailedError, UnknownNodeError
from ..common.hashing import node_id_for

#: Signature of a message handler registered on a node:
#: ``handler(message) -> None``.  Handlers run in virtual time; CPU work must
#: be reported through :meth:`SimNode.charge_cpu`.
Handler = Callable[["Message"], None]

#: Signature of node-failure listeners: ``listener(failed_address) -> None``.
FailureListener = Callable[[str], None]


@dataclass(frozen=True)
class HostSpec:
    """Performance characteristics of one simulated machine.

    ``cpu_factor`` scales all CPU costs (1.0 = the paper's 2.4 GHz Xeon
    cluster node; the EC2 "large" instances are modelled slightly slower).
    Bandwidths are bytes/second of the node's own network interface; the LAN
    profile uses Gigabit, the WAN profile throttles this down exactly as the
    paper throttles per-node bandwidth with HTB.
    """

    cpu_factor: float = 1.0
    egress_bandwidth: float = 125_000_000.0  # 1 Gbit/s in bytes/s
    ingress_bandwidth: float = 125_000_000.0
    disk_read_bandwidth: float = 80_000_000.0  # bytes/s sequential read

    def scaled(self, cpu: float | None = None, bandwidth: float | None = None) -> "HostSpec":
        return HostSpec(
            cpu_factor=cpu if cpu is not None else self.cpu_factor,
            egress_bandwidth=bandwidth if bandwidth is not None else self.egress_bandwidth,
            ingress_bandwidth=bandwidth if bandwidth is not None else self.ingress_bandwidth,
            disk_read_bandwidth=self.disk_read_bandwidth,
        )


@dataclass
class Message:
    """A message in flight between two simulated nodes."""

    msg_type: str
    src: str
    dst: str
    payload: Mapping[str, object]
    size: int
    sent_at: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message({self.msg_type!r}, {self.src!r}->{self.dst!r}, {self.size}B)"


class TrafficMeter:
    """Byte counters for network traffic, per sending node and in total.

    Only *remote* messages are counted; the local fast path bypasses the
    meter.  ``snapshot()`` captures the counters so a benchmark can compute
    the traffic attributable to a single query.
    """

    def __init__(self) -> None:
        self.total_bytes = 0
        self.total_messages = 0
        self.bytes_sent: dict[str, int] = {}
        self.bytes_received: dict[str, int] = {}

    def record(self, src: str, dst: str, size: int) -> None:
        self.total_bytes += size
        self.total_messages += 1
        self.bytes_sent[src] = self.bytes_sent.get(src, 0) + size
        self.bytes_received[dst] = self.bytes_received.get(dst, 0) + size

    def snapshot(self) -> "TrafficSnapshot":
        return TrafficSnapshot(
            total_bytes=self.total_bytes,
            total_messages=self.total_messages,
            bytes_sent=dict(self.bytes_sent),
            bytes_received=dict(self.bytes_received),
        )


@dataclass(frozen=True)
class TrafficSnapshot:
    total_bytes: int
    total_messages: int
    bytes_sent: dict[str, int]
    bytes_received: dict[str, int]

    def delta(self, later: "TrafficSnapshot") -> "TrafficSnapshot":
        """Traffic that occurred between this snapshot and ``later``."""
        return TrafficSnapshot(
            total_bytes=later.total_bytes - self.total_bytes,
            total_messages=later.total_messages - self.total_messages,
            bytes_sent={
                node: later.bytes_sent.get(node, 0) - self.bytes_sent.get(node, 0)
                for node in set(later.bytes_sent) | set(self.bytes_sent)
            },
            bytes_received={
                node: later.bytes_received.get(node, 0) - self.bytes_received.get(node, 0)
                for node in set(later.bytes_received) | set(self.bytes_received)
            },
        )

    def per_node_bytes(self) -> dict[str, int]:
        """Bytes sent + received per node (the paper's per-node traffic metric)."""
        nodes = set(self.bytes_sent) | set(self.bytes_received)
        return {
            node: self.bytes_sent.get(node, 0) + self.bytes_received.get(node, 0)
            for node in nodes
        }

    def max_per_node_bytes(self) -> int:
        per_node = self.per_node_bytes()
        return max(per_node.values()) if per_node else 0

    def mean_per_node_bytes(self) -> float:
        per_node = self.per_node_bytes()
        if not per_node:
            return 0.0
        # Traffic is double counted when summing sent + received over all
        # nodes; per-node averages divide the *total* transferred bytes by the
        # participating node count, matching the paper's per-node figures.
        return self.total_bytes / max(1, len(per_node))


class SimNode:
    """Runtime state of one simulated machine."""

    def __init__(self, network: "Network", address: str, host: HostSpec) -> None:
        self.network = network
        self.address = address
        self.host = host
        self.node_id = node_id_for(address)
        self.alive = True
        self._handlers: dict[str, Handler] = {}
        self._failure_listeners: list[FailureListener] = []
        #: Arbitrary per-node services (storage engine, query fragments...)
        #: attached by the higher layers.
        self.services: dict[str, object] = {}
        # Serial-resource availability times.
        self._cpu_free_at = 0.0
        self._egress_free_at = 0.0
        self._ingress_free_at = 0.0
        # Accumulated busy time, used to report CPU utilisation in benches.
        self.cpu_busy_seconds = 0.0

    # -- registration --------------------------------------------------------

    def register_handler(self, msg_type: str, handler: Handler) -> None:
        """Register the handler invoked for messages of ``msg_type``."""
        self._handlers[msg_type] = handler

    def unregister_handler(self, msg_type: str) -> None:
        self._handlers.pop(msg_type, None)

    def add_failure_listener(self, listener: FailureListener) -> None:
        """Subscribe to peer-failure notifications (dropped-connection signal)."""
        self._failure_listeners.append(listener)

    def remove_failure_listener(self, listener: FailureListener) -> None:
        if listener in self._failure_listeners:
            self._failure_listeners.remove(listener)

    # -- actions available to handlers ---------------------------------------

    @property
    def now(self) -> float:
        return self.network.now

    def send(self, dst: str, msg_type: str, payload: Mapping[str, object], size: int) -> None:
        """Send a message; convenience wrapper over :meth:`Network.send`."""
        self.network.send(self.address, dst, msg_type, payload, size)

    def charge_cpu(self, seconds: float) -> None:
        """Account ``seconds`` of CPU work for the currently running handler.

        The charge is scaled by the host's CPU factor and pushes back the
        node's CPU availability, delaying subsequent handler executions on
        this node — which is how CPU-bound stages (e.g. local hash joins)
        show up in simulated run time.
        """
        if seconds <= 0:
            return
        scaled = seconds / self.host.cpu_factor
        self._cpu_free_at = max(self._cpu_free_at, self.network.now) + scaled
        self.cpu_busy_seconds += scaled

    def charge_disk_read(self, num_bytes: int) -> None:
        """Account a sequential disk read of ``num_bytes`` as CPU-side latency."""
        if num_bytes <= 0:
            return
        self.charge_cpu(num_bytes / self.host.disk_read_bandwidth * self.host.cpu_factor)

    # -- internal -------------------------------------------------------------

    def _dispatch(self, message: Message) -> None:
        if not self.alive:
            return
        handler = self._handlers.get(message.msg_type)
        if handler is None:
            raise UnknownNodeError(
                f"node {self.address!r} has no handler for message type "
                f"{message.msg_type!r}"
            )
        handler(message)

    def _notify_failure(self, failed_address: str) -> None:
        if not self.alive:
            return
        for listener in list(self._failure_listeners):
            listener(failed_address)


@dataclass(order=True)
class ScheduledEvent:
    """A scheduled action; kept so callers can cancel it before it fires.

    Cancellation leaves the entry in the heap but marks it dead: the run
    loop discards dead events without advancing the clock, so e.g. a
    watchdog timer for an operation that already completed neither fires
    nor drags the virtual time out to its deadline.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class Network:
    """The event loop, clock and link model shared by all simulated nodes."""

    #: Fixed per-message overhead in bytes: a TCP/IPv4 header (20 + 20) on the
    #: persistent connections the engine keeps between every pair of nodes.
    MESSAGE_OVERHEAD_BYTES = 40
    #: CPU cost of unmarshalling one message, in seconds (per message, plus a
    #: per-byte component), calibrated against the paper's observation that
    #: result collection at the initiator has measurable unmarshalling cost.
    UNMARSHAL_SECONDS_PER_MESSAGE = 20e-6
    UNMARSHAL_SECONDS_PER_BYTE = 4e-9

    def __init__(
        self,
        latency: float = 0.0001,
        default_host: HostSpec | None = None,
        failure_detection_delay: float = 0.05,
    ) -> None:
        self.now = 0.0
        self.latency = latency
        self.default_host = default_host or HostSpec()
        self.failure_detection_delay = failure_detection_delay
        self.traffic = TrafficMeter()
        self.nodes: dict[str, SimNode] = {}
        self._queue: list[ScheduledEvent] = []
        self._sequence = itertools.count()
        self._pairwise_latency: dict[tuple[str, str], float] = {}

    # -- topology -------------------------------------------------------------

    def add_node(self, address: str, host: HostSpec | None = None) -> SimNode:
        if address in self.nodes:
            raise ValueError(f"node {address!r} already exists")
        node = SimNode(self, address, host or self.default_host)
        self.nodes[address] = node
        return node

    def node(self, address: str) -> SimNode:
        try:
            return self.nodes[address]
        except KeyError:
            raise UnknownNodeError(f"unknown node {address!r}") from None

    def live_nodes(self) -> list[str]:
        return [address for address, node in self.nodes.items() if node.alive]

    def set_pairwise_latency(self, src: str, dst: str, latency: float) -> None:
        """Override link latency for a specific ordered node pair."""
        self._pairwise_latency[(src, dst)] = latency

    def link_latency(self, src: str, dst: str) -> float:
        return self._pairwise_latency.get((src, dst), self.latency)

    # -- event scheduling ------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> ScheduledEvent:
        """Run ``action`` after ``delay`` simulated seconds.

        Returns the scheduled event; calling its :meth:`~ScheduledEvent.cancel`
        before it fires discards it without advancing the clock.
        """
        if delay < 0:
            raise ValueError("cannot schedule events in the past")
        event = ScheduledEvent(self.now + delay, next(self._sequence), action)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, action: Callable[[], None]) -> ScheduledEvent:
        return self.schedule(max(0.0, time - self.now), action)

    def run(self, until: float | None = None) -> float:
        """Process events until the queue drains (or ``until`` is reached).

        Returns the simulation clock after processing.
        """
        while self._queue:
            if self._queue[0].cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and self._queue[0].time > until:
                self.now = until
                return self.now
            event = heapq.heappop(self._queue)
            self.now = max(self.now, event.time)
            event.action()
        return self.now

    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    # -- messaging -------------------------------------------------------------

    def send(
        self,
        src: str,
        dst: str,
        msg_type: str,
        payload: Mapping[str, object],
        size: int,
    ) -> None:
        """Send a message from ``src`` to ``dst``.

        Local messages (``src == dst``) bypass the link model and the traffic
        meter.  Remote messages serialise on the sender's egress link, incur
        link latency, serialise on the receiver's ingress link and are then
        handed to the receiving node's handler (which runs when that node's
        CPU becomes free).
        """
        sender = self.node(src)
        if not sender.alive:
            raise NodeFailedError(src, "attempted to send from a failed node")
        wire_size = size + self.MESSAGE_OVERHEAD_BYTES
        message = Message(msg_type, src, dst, dict(payload), wire_size, sent_at=self.now)

        if src == dst:
            # Local fast path: a small fixed dispatch cost, no traffic.
            self.schedule(1e-6, lambda: self._deliver(message))
            return

        receiver = self.node(dst)
        self.traffic.record(src, dst, wire_size)

        egress_start = max(self.now, sender._egress_free_at)
        egress_time = wire_size / sender.host.egress_bandwidth
        sender._egress_free_at = egress_start + egress_time

        arrival = sender._egress_free_at + self.link_latency(src, dst)
        ingress_start = max(arrival, receiver._ingress_free_at)
        ingress_time = wire_size / receiver.host.ingress_bandwidth
        receiver._ingress_free_at = ingress_start + ingress_time
        delivered_at = receiver._ingress_free_at

        self.schedule_at(delivered_at, lambda: self._deliver(message))

    def _deliver(self, message: Message) -> None:
        receiver = self.nodes.get(message.dst)
        if receiver is None or not receiver.alive:
            # The destination failed while the message was in flight; it is
            # silently lost, just as bytes written to a dead TCP peer are.
            return
        sender = self.nodes.get(message.src)
        if message.src != message.dst and (sender is None or not sender.alive):
            # Data from a failed sender is discarded: the receiving query
            # operator would treat it as tainted anyway (Section V-D), and the
            # broken connection prevents it from arriving in a real deployment.
            return
        # Handler execution waits for the receiver's CPU to be free, then the
        # handler itself charges its processing cost.
        unmarshal = (
            self.UNMARSHAL_SECONDS_PER_MESSAGE
            + message.size * self.UNMARSHAL_SECONDS_PER_BYTE
        )
        start = max(self.now, receiver._cpu_free_at)
        begin_delay = start - self.now
        if begin_delay > 1e-12:
            self.schedule(begin_delay, lambda: self._execute(receiver, message, unmarshal))
        else:
            self._execute(receiver, message, unmarshal)

    def _execute(self, receiver: SimNode, message: Message, unmarshal_cost: float) -> None:
        if not receiver.alive:
            return
        receiver.charge_cpu(unmarshal_cost)
        receiver._dispatch(message)

    # -- failures ---------------------------------------------------------------

    def fail_node(self, address: str, detection_delay: float | None = None) -> None:
        """Fail ``address`` immediately (crash-stop model).

        All messages in flight to or from the node are lost.  After
        ``detection_delay`` (default: the network's failure-detection delay,
        modelling the time for TCP connection drops / pings to be observed),
        every other live node's failure listeners are invoked.
        """
        node = self.node(address)
        if not node.alive:
            return
        node.alive = False
        delay = self.failure_detection_delay if detection_delay is None else detection_delay

        def notify() -> None:
            for other in self.nodes.values():
                if other.address != address and other.alive:
                    other._notify_failure(address)

        self.schedule(delay, notify)

    def fail_node_at(self, address: str, at_time: float, detection_delay: float | None = None) -> None:
        """Schedule a crash of ``address`` at absolute simulated time ``at_time``."""
        self.schedule_at(at_time, lambda: self.fail_node(address, detection_delay))

    def restart_node(self, address: str) -> None:
        """Bring a failed node back (it rejoins empty; used by membership tests)."""
        node = self.node(address)
        node.alive = True
        node._cpu_free_at = self.now
        node._egress_free_at = self.now
        node._ingress_free_at = self.now


def broadcast(
    network: Network,
    src: str,
    destinations: Iterable[str],
    msg_type: str,
    payload: Mapping[str, object],
    size: int,
) -> None:
    """Send the same message to every destination (including possibly ``src``)."""
    for dst in destinations:
        network.send(src, dst, msg_type, payload, size)
