"""A deterministic discrete-event network simulator.

The paper evaluates ORCHESTRA's storage and query layer on a 16-node Gigabit
cluster, on bandwidth/latency-shaped networks (NetEm + HTB), and on up to 100
Amazon EC2 instances.  This module replaces those physical test beds with a
discrete-event simulation so that the same distributed algorithms — the very
same message exchanges — can run on a single machine with a virtual clock.

Model
-----
* Every :class:`SimNode` models one participant machine.  A node owns three
  serial resources: a CPU, an egress link and an ingress link.  Handlers for
  incoming messages run on the CPU; message transmission occupies the sender's
  egress link, then traverses the link latency, then occupies the receiver's
  ingress link.  This simple M/D/1-per-resource model is what produces the
  paper's qualitative behaviours — e.g. the query initiator's ingress link
  becoming the bottleneck for the STBenchmark *Copy* query, or low per-node
  bandwidth dominating run time in the WAN experiments (Figure 17).
* Messages between a node and itself are delivered through a fast local path:
  no latency, no bandwidth charge, and no contribution to the traffic meters
  (the paper's co-location optimisation relies on local index/data accesses
  being free of network cost).
* A :class:`TrafficMeter` records bytes sent per node and in total; benchmark
  figures 8/9/11/12/15/16/19/20 read these counters.
* Node failures (:meth:`Network.fail_node`) stop delivery of all in-flight and
  future messages to/from the failed node and, after a configurable detection
  delay, notify every other live node through registered failure listeners —
  modelling the dropped-TCP-connection signal of Section V-A.
* Crash-*restart* is supported: :meth:`Network.restart_node` brings a failed
  node back under a new *incarnation*.  Scheduled failures and in-flight
  deliveries aimed at an older incarnation are discarded, modelling the fresh
  TCP connections a restarted process accepts (nothing from before the crash
  can arrive on them).
* Deterministic fault injection: when a :class:`repro.faults.FaultInjector`
  is installed (:attr:`Network.fault_injector`), remote messages travel over
  a reliable in-order channel per ordered node pair — sequence numbers,
  receiver-side reordering buffers and sender retransmission — while the
  injector drops, duplicates, delays and reorders the individual
  *transmissions* underneath.  This mirrors real deployments, where the
  paper's engine runs over persistent TCP connections: packet-level chaos
  surfaces to the application only as added latency and as connection churn,
  never as silent loss, duplication or reordering of application messages.
  Without an injector the code path is byte-for-byte the pre-fault one.

The simulation is fully deterministic: events at equal timestamps are ordered
by insertion sequence, and no wall-clock or OS randomness is consulted.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from ..common.errors import NodeFailedError, UnknownNodeError
from ..common.hashing import node_id_for

#: Signature of a message handler registered on a node:
#: ``handler(message) -> None``.  Handlers run in virtual time; CPU work must
#: be reported through :meth:`SimNode.charge_cpu`.
Handler = Callable[["Message"], None]

#: Signature of node-failure listeners: ``listener(failed_address) -> None``.
FailureListener = Callable[[str], None]

#: Sentinel stored in a channel's reordering buffer for a transmission the
#: transport gave up on: later messages must not stall behind it forever.
_LOST = object()


@dataclass(frozen=True)
class HostSpec:
    """Performance characteristics of one simulated machine.

    ``cpu_factor`` scales all CPU costs (1.0 = the paper's 2.4 GHz Xeon
    cluster node; the EC2 "large" instances are modelled slightly slower).
    Bandwidths are bytes/second of the node's own network interface; the LAN
    profile uses Gigabit, the WAN profile throttles this down exactly as the
    paper throttles per-node bandwidth with HTB.
    """

    cpu_factor: float = 1.0
    egress_bandwidth: float = 125_000_000.0  # 1 Gbit/s in bytes/s
    ingress_bandwidth: float = 125_000_000.0
    disk_read_bandwidth: float = 80_000_000.0  # bytes/s sequential read

    def scaled(self, cpu: float | None = None, bandwidth: float | None = None) -> "HostSpec":
        return HostSpec(
            cpu_factor=cpu if cpu is not None else self.cpu_factor,
            egress_bandwidth=bandwidth if bandwidth is not None else self.egress_bandwidth,
            ingress_bandwidth=bandwidth if bandwidth is not None else self.ingress_bandwidth,
            disk_read_bandwidth=self.disk_read_bandwidth,
        )


@dataclass(slots=True)
class Message:
    """A message in flight between two simulated nodes.

    Slotted: the simulator allocates one per send, and benchmarks churn
    through millions — slots cut both the allocation cost and the footprint.
    """

    msg_type: str
    src: str
    dst: str
    payload: Mapping[str, object]
    size: int
    sent_at: float = 0.0
    #: Protocol kind for the traffic breakdown: the inner RPC method name for
    #: rpc-framed messages, the raw message type otherwise.
    kind: str = ""
    #: Propagated :class:`~repro.obs.trace.TraceContext` — ``None`` unless a
    #: tracer is installed on the network.  Its wire cost is charged into
    #: ``size`` for remote sends only when tracing is on, so the default
    #: configuration stays byte-identical to untraced builds.
    trace: object | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.msg_type!r}, kind={self.kind!r}, "
            f"{self.src!r}->{self.dst!r}, {self.size}B, sent_at={self.sent_at:.6f})"
        )


class TrafficMeter:
    """Byte counters for network traffic, per sending node and in total.

    Only *remote* messages are counted; the local fast path bypasses the
    meter.  ``snapshot()`` captures the counters so a benchmark can compute
    the traffic attributable to a single query.  Besides the per-node
    counters, the meter keeps a per-*kind* breakdown (the RPC method name for
    rpc-framed messages, the raw message type otherwise) so benchmarks can
    attribute bytes to protocol stages — plan dissemination, leaf-scan tuple
    requests, exchange data, end-of-stream markers — without instrumenting
    every call site.
    """

    def __init__(self) -> None:
        self.total_bytes = 0
        self.total_messages = 0
        self.bytes_sent: dict[str, int] = {}
        self.bytes_received: dict[str, int] = {}
        self.bytes_by_kind: dict[str, int] = {}
        self.messages_by_kind: dict[str, int] = {}

    def record(self, src: str, dst: str, size: int, kind: str = "") -> None:
        self.total_bytes += size
        self.total_messages += 1
        self.bytes_sent[src] = self.bytes_sent.get(src, 0) + size
        self.bytes_received[dst] = self.bytes_received.get(dst, 0) + size
        if kind:
            self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + size
            self.messages_by_kind[kind] = self.messages_by_kind.get(kind, 0) + 1

    def snapshot(self) -> "TrafficSnapshot":
        return TrafficSnapshot(
            total_bytes=self.total_bytes,
            total_messages=self.total_messages,
            bytes_sent=dict(self.bytes_sent),
            bytes_received=dict(self.bytes_received),
            bytes_by_kind=dict(self.bytes_by_kind),
            messages_by_kind=dict(self.messages_by_kind),
        )

    def to_dict(self) -> dict:
        """Common stats-serialization protocol (see :mod:`repro.obs.metrics`)."""
        return self.snapshot().to_dict()

    def metric_series(self):
        """Registry samples with uniform naming: ``rpc.bytes{kind=...}`` etc."""
        samples = [
            ("rpc.bytes", {}, self.total_bytes),
            ("rpc.messages", {}, self.total_messages),
        ]
        for kind in sorted(self.bytes_by_kind):
            samples.append(("rpc.bytes", {"kind": kind}, self.bytes_by_kind[kind]))
        for kind in sorted(self.messages_by_kind):
            samples.append(
                ("rpc.messages", {"kind": kind}, self.messages_by_kind[kind])
            )
        for node in sorted(self.bytes_sent):
            samples.append(
                ("rpc.bytes", {"direction": "sent", "node": node}, self.bytes_sent[node])
            )
        for node in sorted(self.bytes_received):
            samples.append(
                (
                    "rpc.bytes",
                    {"direction": "received", "node": node},
                    self.bytes_received[node],
                )
            )
        return samples


def _nonzero_delta(later: dict[str, int], earlier: dict[str, int]) -> dict[str, int]:
    """Per-key difference with unchanged keys dropped: a key present in both
    snapshots with the same count produced a meaningless ``0`` entry before,
    which made warm-cache deltas (no traffic at all) read as a page of
    zeroes."""
    return {
        key: diff
        for key in sorted(set(later) | set(earlier))
        if (diff := later.get(key, 0) - earlier.get(key, 0))
    }


@dataclass(frozen=True)
class TrafficSnapshot:
    total_bytes: int
    total_messages: int
    bytes_sent: dict[str, int]
    bytes_received: dict[str, int]
    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    messages_by_kind: dict[str, int] = field(default_factory=dict)

    def delta(self, later: "TrafficSnapshot") -> "TrafficSnapshot":
        """Traffic that occurred between this snapshot and ``later``.

        Only nodes/kinds whose counters actually changed appear in the delta
        dicts — an idle node or a protocol stage that moved no bytes is
        absent, not a zero entry.
        """
        return TrafficSnapshot(
            total_bytes=later.total_bytes - self.total_bytes,
            total_messages=later.total_messages - self.total_messages,
            bytes_sent=_nonzero_delta(later.bytes_sent, self.bytes_sent),
            bytes_received=_nonzero_delta(later.bytes_received, self.bytes_received),
            bytes_by_kind=_nonzero_delta(later.bytes_by_kind, self.bytes_by_kind),
            messages_by_kind=_nonzero_delta(
                later.messages_by_kind, self.messages_by_kind
            ),
        )

    def to_dict(self) -> dict:
        """Common stats-serialization protocol (see :mod:`repro.obs.metrics`)."""
        return {
            "total_bytes": self.total_bytes,
            "total_messages": self.total_messages,
            "bytes_sent": dict(self.bytes_sent),
            "bytes_received": dict(self.bytes_received),
            "bytes_by_kind": dict(self.bytes_by_kind),
            "messages_by_kind": dict(self.messages_by_kind),
        }

    def per_node_bytes(self) -> dict[str, int]:
        """Bytes sent + received per node (the paper's per-node traffic metric)."""
        nodes = set(self.bytes_sent) | set(self.bytes_received)
        return {
            node: self.bytes_sent.get(node, 0) + self.bytes_received.get(node, 0)
            for node in nodes
        }

    def max_per_node_bytes(self) -> int:
        per_node = self.per_node_bytes()
        return max(per_node.values()) if per_node else 0

    def mean_per_node_bytes(self) -> float:
        per_node = self.per_node_bytes()
        if not per_node:
            return 0.0
        # Traffic is double counted when summing sent + received over all
        # nodes; per-node averages divide the *total* transferred bytes by the
        # participating node count, matching the paper's per-node figures.
        return self.total_bytes / max(1, len(per_node))


class SimNode:
    """Runtime state of one simulated machine."""

    def __init__(self, network: "Network", address: str, host: HostSpec) -> None:
        self.network = network
        self.address = address
        self.host = host
        self.node_id = node_id_for(address)
        self.alive = True
        #: Bumped on every restart.  Events captured against an older
        #: incarnation (scheduled crashes, in-flight transmissions) are stale
        #: and must not affect the restarted process.
        self.incarnation = 0
        self._handlers: dict[str, Handler] = {}
        self._failure_listeners: list[FailureListener] = []
        #: Arbitrary per-node services (storage engine, query fragments...)
        #: attached by the higher layers.
        self.services: dict[str, object] = {}
        # Serial-resource availability times.
        self._cpu_free_at = 0.0
        self._egress_free_at = 0.0
        self._ingress_free_at = 0.0
        # Accumulated busy time, used to report CPU utilisation in benches.
        self.cpu_busy_seconds = 0.0

    # -- registration --------------------------------------------------------

    def register_handler(self, msg_type: str, handler: Handler) -> None:
        """Register the handler invoked for messages of ``msg_type``."""
        self._handlers[msg_type] = handler

    def unregister_handler(self, msg_type: str) -> None:
        self._handlers.pop(msg_type, None)

    def add_failure_listener(self, listener: FailureListener) -> None:
        """Subscribe to peer-failure notifications (dropped-connection signal)."""
        self._failure_listeners.append(listener)

    def remove_failure_listener(self, listener: FailureListener) -> None:
        if listener in self._failure_listeners:
            self._failure_listeners.remove(listener)

    # -- actions available to handlers ---------------------------------------

    @property
    def now(self) -> float:
        return self.network.now

    def send(self, dst: str, msg_type: str, payload: Mapping[str, object], size: int) -> None:
        """Send a message; convenience wrapper over :meth:`Network.send`."""
        self.network.send(self.address, dst, msg_type, payload, size)

    def charge_cpu(self, seconds: float) -> None:
        """Account ``seconds`` of CPU work for the currently running handler.

        The charge is scaled by the host's CPU factor and pushes back the
        node's CPU availability, delaying subsequent handler executions on
        this node — which is how CPU-bound stages (e.g. local hash joins)
        show up in simulated run time.
        """
        if seconds <= 0:
            return
        scaled = seconds / self.host.cpu_factor
        self._cpu_free_at = max(self._cpu_free_at, self.network.now) + scaled
        self.cpu_busy_seconds += scaled

    @property
    def cpu_queue_delay(self) -> float:
        """Seconds until this node's CPU could start another handler.

        Charges delay *subsequent* handler starts, not the charging handler's
        own sends; a handler that wants its reply to queue behind the work it
        models (e.g. the resilience layer's representative-work probes) reads
        this and schedules the send that far in the future.
        """
        return max(0.0, self._cpu_free_at - self.network.now)

    def charge_disk_read(self, num_bytes: int) -> None:
        """Account a sequential disk read of ``num_bytes`` as CPU-side latency."""
        if num_bytes <= 0:
            return
        self.charge_cpu(num_bytes / self.host.disk_read_bandwidth * self.host.cpu_factor)

    # -- internal -------------------------------------------------------------

    def _dispatch(self, message: Message) -> None:
        if not self.alive:
            return
        handler = self._handlers.get(message.msg_type)
        if handler is None:
            raise UnknownNodeError(
                f"node {self.address!r} has no handler for message type "
                f"{message.msg_type!r}"
            )
        handler(message)

    def _notify_failure(self, failed_address: str) -> None:
        if not self.alive:
            return
        for listener in list(self._failure_listeners):
            listener(failed_address)


@dataclass(order=True, slots=True)
class ScheduledEvent:
    """A scheduled action; kept so callers can cancel it before it fires.

    Cancellation leaves the entry in the heap but marks it dead: the run
    loop discards dead events without advancing the clock, so e.g. a
    watchdog timer for an operation that already completed neither fires
    nor drags the virtual time out to its deadline.  Slotted: every message
    hop allocates at least one.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class _Channel:
    """Reliable-transport state for one ordered node pair (fault runs only).

    The sender side stamps each message with ``next_seq``; the receiver side
    delivers strictly in sequence order, buffering early arrivals and
    discarding duplicates — the exactly-once, FIFO contract the application
    protocols were built on (and that TCP provides in a real deployment).
    """

    __slots__ = ("next_seq", "expected", "buffer")

    def __init__(self) -> None:
        self.next_seq = 0
        self.expected = 0
        self.buffer: dict[int, object] = {}


class Network:
    """The event loop, clock and link model shared by all simulated nodes."""

    #: Fixed per-message overhead in bytes: a TCP/IPv4 header (20 + 20) on the
    #: persistent connections the engine keeps between every pair of nodes.
    MESSAGE_OVERHEAD_BYTES = 40
    #: CPU cost of unmarshalling one message, in seconds (per message, plus a
    #: per-byte component), calibrated against the paper's observation that
    #: result collection at the initiator has measurable unmarshalling cost.
    UNMARSHAL_SECONDS_PER_MESSAGE = 20e-6
    UNMARSHAL_SECONDS_PER_BYTE = 4e-9

    def __init__(
        self,
        latency: float = 0.0001,
        default_host: HostSpec | None = None,
        failure_detection_delay: float = 0.05,
    ) -> None:
        self.now = 0.0
        self.latency = latency
        self.default_host = default_host or HostSpec()
        self.failure_detection_delay = failure_detection_delay
        self.traffic = TrafficMeter()
        #: Events dispatched by :meth:`run` since construction.  The scale
        #: harness divides Python wall-clock by this to measure simulator
        #: overhead per event; deterministic, so tests can pin event *counts*
        #: instead of timing anything.
        self.events_processed = 0
        self.nodes: dict[str, SimNode] = {}
        #: Cache of the live-address list; dropped on membership/liveness
        #: changes (add, crash, restart).  ``live_nodes`` is called per gossip
        #: round and per failure broadcast, which at hundreds of nodes made
        #: the O(n) rebuild a measurable constant drag.
        self._live_cache: list[str] | None = None
        self._queue: list[ScheduledEvent] = []
        self._sequence = itertools.count()
        self._pairwise_latency: dict[tuple[str, str], float] = {}
        #: Installed by :class:`repro.faults.FaultInjector`; None means the
        #: fault-free fast path (identical to the pre-fault simulator).
        self.fault_injector = None
        #: Installed by :meth:`repro.cluster.Cluster.enable_tracing` (a
        #: :class:`repro.obs.trace.Tracer`); None — the default — means no
        #: tracing and **zero** change to wire bytes or message handling.
        self.tracer = None
        #: Reliable-channel state per ordered node pair, used only with an
        #: injector installed.
        self._channels: dict[tuple[str, str], _Channel] = {}
        #: Invoked with the address the moment a node crashes (no detection
        #: delay) — bookkeeping hooks for the cluster layer, not a stand-in
        #: for the in-band failure listeners other nodes rely on.
        self._crash_listeners: list[Callable[[str], None]] = []
        #: Invoked with the address when a node restarts.
        self._restart_listeners: list[Callable[[str], None]] = []

    # -- topology -------------------------------------------------------------

    def add_node(self, address: str, host: HostSpec | None = None) -> SimNode:
        if address in self.nodes:
            raise ValueError(f"node {address!r} already exists")
        node = SimNode(self, address, host or self.default_host)
        self.nodes[address] = node
        self._live_cache = None
        return node

    def node(self, address: str) -> SimNode:
        try:
            return self.nodes[address]
        except KeyError:
            raise UnknownNodeError(f"unknown node {address!r}") from None

    def live_nodes(self) -> list[str]:
        cached = self._live_cache
        if cached is None:
            cached = self._live_cache = [
                address for address, node in self.nodes.items() if node.alive
            ]
        return list(cached)

    def set_pairwise_latency(self, src: str, dst: str, latency: float) -> None:
        """Override link latency for a specific ordered node pair."""
        self._pairwise_latency[(src, dst)] = latency

    def link_latency(self, src: str, dst: str) -> float:
        return self._pairwise_latency.get((src, dst), self.latency)

    # -- event scheduling ------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> ScheduledEvent:
        """Run ``action`` after ``delay`` simulated seconds.

        Returns the scheduled event; calling its :meth:`~ScheduledEvent.cancel`
        before it fires discards it without advancing the clock.
        """
        if delay < 0:
            raise ValueError("cannot schedule events in the past")
        event = ScheduledEvent(self.now + delay, next(self._sequence), action)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, action: Callable[[], None]) -> ScheduledEvent:
        return self.schedule(max(0.0, time - self.now), action)

    def run(self, until: float | None = None) -> float:
        """Process events until the queue drains (or ``until`` is reached).

        Returns the simulation clock after processing.
        """
        while self._queue:
            if self._queue[0].cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and self._queue[0].time > until:
                self.now = until
                return self.now
            event = heapq.heappop(self._queue)
            self.now = max(self.now, event.time)
            self.events_processed += 1
            event.action()
        return self.now

    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    # -- messaging -------------------------------------------------------------

    def send(
        self,
        src: str,
        dst: str,
        msg_type: str,
        payload: Mapping[str, object],
        size: int,
    ) -> None:
        """Send a message from ``src`` to ``dst``.

        Local messages (``src == dst``) bypass the link model and the traffic
        meter.  Remote messages serialise on the sender's egress link, incur
        link latency, serialise on the receiver's ingress link and are then
        handed to the receiving node's handler (which runs when that node's
        CPU becomes free).  With a fault injector installed, remote messages
        instead travel over the reliable per-pair channel so that injected
        packet loss, duplication and reordering never surface to handlers.
        """
        sender = self.node(src)
        if not sender.alive:
            raise NodeFailedError(src, "attempted to send from a failed node")
        wire_size = size + self.MESSAGE_OVERHEAD_BYTES
        if self.tracer is not None and src != dst:
            # The propagated trace context is real header bytes; charge it.
            # Local deliveries never touch the wire, so they stay free.
            wire_size += self.tracer.context_wire_bytes
        kind = payload.get("method") or msg_type
        message = Message(msg_type, src, dst, dict(payload), wire_size,
                          sent_at=self.now, kind=str(kind))
        if self.tracer is not None:
            self.tracer.on_send(message, self.now, sender.incarnation)

        if src == dst:
            # Local fast path: a small fixed dispatch cost, no traffic.
            self.schedule(1e-6, lambda: self._deliver(message))
            return

        receiver = self.node(dst)
        if self.fault_injector is not None:
            channel = self._channel(src, dst)
            seq = channel.next_seq
            channel.next_seq += 1
            self._transmit(message, seq, 0, sender.incarnation, receiver.incarnation)
            return
        self._transfer(message, 0.0)

    def _transfer(self, message: Message, extra_delay: float) -> float:
        """Charge one transmission of ``message`` over the link model.

        Returns the delivery time; the caller schedules what happens then.
        """
        sender = self.node(message.src)
        receiver = self.node(message.dst)
        self.traffic.record(message.src, message.dst, message.size, message.kind)
        if self.tracer is not None:
            self.tracer.on_transmit(message)

        egress_start = max(self.now, sender._egress_free_at)
        egress_time = message.size / sender.host.egress_bandwidth
        sender._egress_free_at = egress_start + egress_time

        arrival = sender._egress_free_at + self.link_latency(message.src, message.dst) + extra_delay
        ingress_start = max(arrival, receiver._ingress_free_at)
        ingress_time = message.size / receiver.host.ingress_bandwidth
        receiver._ingress_free_at = ingress_start + ingress_time
        delivered_at = receiver._ingress_free_at
        if self.fault_injector is None:
            self.schedule_at(delivered_at, lambda: self._deliver(message))
        return delivered_at

    # -- reliable channel (fault-injection runs) --------------------------------

    def _channel(self, src: str, dst: str) -> _Channel:
        channel = self._channels.get((src, dst))
        if channel is None:
            channel = self._channels[(src, dst)] = _Channel()
        return channel

    def _transmit(
        self,
        message: Message,
        seq: int,
        attempt: int,
        src_inc: int,
        dst_inc: int,
        blocked_streak: int = 0,
    ) -> None:
        """One send attempt of channel message ``seq`` under the injector.

        Lost or partition-blocked attempts are retried after the injector's
        retransmission delay (exactly-once delivery is restored by the
        receiver-side sequencing).  Retries stop when either endpoint crashed
        or restarted — the connection the message travelled on is gone.
        ``attempt`` counts only attempts the link actually *lost*; waiting out
        a partition (``blocked_streak``) is unbounded, so a partition of any
        length stalls messages without ever abandoning them.
        """
        injector = self.fault_injector
        sender = self.nodes.get(message.src)
        receiver = self.nodes.get(message.dst)
        if injector is None or sender is None or receiver is None:
            return
        if not sender.alive or sender.incarnation != src_inc:
            return
        if not receiver.alive or receiver.incarnation != dst_inc:
            return
        retry = lambda: self._transmit(message, seq, attempt + 1, src_inc, dst_inc)  # noqa: E731
        if attempt > injector.max_retransmits:
            injector.stats.abandoned += 1
            self._channel_skip(message.src, message.dst, seq)
            return
        if attempt > 0:
            injector.stats.retransmits += 1
            if self.tracer is not None:
                # A retry is the *same* logical hop: annotate its span rather
                # than opening a second one.
                self.tracer.on_retransmit(message)
        if injector.blocked(message.src, message.dst):
            # The pair is partitioned: nothing leaves the NIC, the transport
            # just keeps retrying until the partition heals.
            injector.stats.blocked += 1
            self.schedule(
                injector.retransmit_delay(blocked_streak, message.src, message.dst),
                lambda: self._transmit(
                    message, seq, attempt, src_inc, dst_inc, blocked_streak + 1
                ),
            )
            return
        deliveries = injector.fate(message, attempt)
        if not deliveries:
            # Every copy of this attempt died on the link.  The bytes still
            # left the sender (egress + traffic are charged) but never reach
            # the receiver's NIC.
            self.traffic.record(message.src, message.dst, message.size, message.kind)
            if self.tracer is not None:
                # The lost copy's bytes were metered, so the span carries
                # them too — span byte totals stay reconcilable with the
                # traffic meter even under loss.
                self.tracer.on_transmit(message)
            egress_start = max(self.now, sender._egress_free_at)
            sender._egress_free_at = egress_start + message.size / sender.host.egress_bandwidth
            self.schedule(
                injector.retransmit_delay(attempt, message.src, message.dst), retry
            )
            return
        for extra_delay in deliveries:
            delivered_at = self._transfer(message, extra_delay)
            self.schedule_at(
                delivered_at,
                lambda: self._receive(message, seq, src_inc, dst_inc, attempt),
            )

    def _receive(
        self, message: Message, seq: int, src_inc: int, dst_inc: int, attempt: int
    ) -> None:
        """Receiver side of the reliable channel: dedup, order, dispatch."""
        receiver = self.nodes.get(message.dst)
        if receiver is None or not receiver.alive or receiver.incarnation != dst_inc:
            return
        sender = self.nodes.get(message.src)
        if sender is None or not sender.alive or sender.incarnation != src_inc:
            # Same taint rule as the fault-free path: data from a crashed
            # sender never reaches the application.
            return
        injector = self.fault_injector
        if injector is not None and injector.blocked(message.src, message.dst):
            # A partition started while the message was in flight: it is cut
            # on the wire, and the sender-side transport retries it.
            injector.stats.blocked += 1
            self.schedule(
                injector.retransmit_delay(attempt, message.src, message.dst),
                lambda: self._transmit(message, seq, attempt + 1, src_inc, dst_inc),
            )
            return
        channel = self._channel(message.src, message.dst)
        if seq < channel.expected or seq in channel.buffer:
            if injector is not None:
                injector.stats.deduplicated += 1
            if self.tracer is not None:
                self.tracer.on_duplicate(message)
            return
        if seq != channel.expected:
            channel.buffer[seq] = message
            return
        channel.expected += 1
        self._dispatch_to_app(message)
        self._flush_channel(channel)

    def _flush_channel(self, channel: _Channel) -> None:
        while channel.expected in channel.buffer:
            queued = channel.buffer.pop(channel.expected)
            channel.expected += 1
            if queued is not _LOST:
                self._dispatch_to_app(queued)

    def _channel_skip(self, src: str, dst: str, seq: int) -> None:
        """Mark transmission ``seq`` as permanently lost so later messages on
        the channel are not stalled behind the gap forever."""
        channel = self._channel(src, dst)
        if seq < channel.expected:
            return
        if seq == channel.expected:
            channel.expected += 1
            self._flush_channel(channel)
        else:
            channel.buffer[seq] = _LOST

    def _reset_channels(self, address: str) -> None:
        """Drop all channel state involving ``address`` (connection churn)."""
        self._channels = {
            pair: channel
            for pair, channel in self._channels.items()
            if address not in pair
        }

    # -- delivery ---------------------------------------------------------------

    def _deliver(self, message: Message) -> None:
        receiver = self.nodes.get(message.dst)
        if receiver is None or not receiver.alive:
            # The destination failed while the message was in flight; it is
            # silently lost, just as bytes written to a dead TCP peer are.
            return
        sender = self.nodes.get(message.src)
        if message.src != message.dst and (sender is None or not sender.alive):
            # Data from a failed sender is discarded: the receiving query
            # operator would treat it as tainted anyway (Section V-D), and the
            # broken connection prevents it from arriving in a real deployment.
            return
        self._dispatch_to_app(message)

    def _dispatch_to_app(self, message: Message) -> None:
        receiver = self.nodes[message.dst]
        # Handler execution waits for the receiver's CPU to be free, then the
        # handler itself charges its processing cost.
        unmarshal = (
            self.UNMARSHAL_SECONDS_PER_MESSAGE
            + message.size * self.UNMARSHAL_SECONDS_PER_BYTE
        )
        start = max(self.now, receiver._cpu_free_at)
        begin_delay = start - self.now
        if begin_delay > 1e-12:
            self.schedule(begin_delay, lambda: self._execute(receiver, message, unmarshal))
        else:
            self._execute(receiver, message, unmarshal)

    def _execute(self, receiver: SimNode, message: Message, unmarshal_cost: float) -> None:
        if not receiver.alive:
            return
        receiver.charge_cpu(unmarshal_cost)
        tracer = self.tracer
        if tracer is not None and message.trace is not None:
            # The handler runs *inside* the message's span: any send it makes
            # parents onto this hop, which is what stitches one operation's
            # causality into a single tree with no per-call-site plumbing.
            token = tracer.begin_delivery(message, self.now)
            try:
                receiver._dispatch(message)
            finally:
                tracer.end_delivery(token)
        else:
            receiver._dispatch(message)

    # -- failures ---------------------------------------------------------------

    def add_crash_listener(self, listener: Callable[[str], None]) -> None:
        """``listener(address)`` fires the instant a node crashes.

        Unlike the per-node failure listeners (which model the in-band
        dropped-connection signal and fire after the detection delay), crash
        listeners are out-of-band bookkeeping for the layer that *owns* the
        simulation — e.g. the cluster failing the crashed initiator's
        in-flight operation futures.
        """
        self._crash_listeners.append(listener)

    def add_restart_listener(self, listener: Callable[[str], None]) -> None:
        """``listener(address)`` fires when a node restarts."""
        self._restart_listeners.append(listener)

    def fail_node(self, address: str, detection_delay: float | None = None) -> None:
        """Fail ``address`` immediately (crash-stop model).

        All messages in flight to or from the node are lost.  After
        ``detection_delay`` (default: the network's failure-detection delay,
        modelling the time for TCP connection drops / pings to be observed),
        every other live node's failure listeners are invoked.
        """
        node = self.node(address)
        if not node.alive:
            return
        node.alive = False
        self._live_cache = None
        for listener in list(self._crash_listeners):
            listener(address)
        delay = self.failure_detection_delay if detection_delay is None else detection_delay

        def notify() -> None:
            for other in self.nodes.values():
                if other.address != address and other.alive:
                    other._notify_failure(address)

        self.schedule(delay, notify)

    def fail_node_at(
        self, address: str, at_time: float, detection_delay: float | None = None
    ) -> ScheduledEvent:
        """Schedule a crash of ``address`` at absolute simulated time ``at_time``.

        The crash is bound to the node's *current incarnation*: if the node
        crashes and restarts before ``at_time``, the stale scheduled failure
        must not kill the restarted process.  Returns the scheduled event so
        callers can also cancel it explicitly.
        """
        node = self.node(address)
        incarnation = node.incarnation

        def fire() -> None:
            if node.alive and node.incarnation == incarnation:
                self.fail_node(address, detection_delay)

        return self.schedule_at(at_time, fire)

    def restart_node(self, address: str) -> SimNode:
        """Bring a failed node back under a new incarnation.

        The node's handler registrations and attached services survive (they
        model the process image plus its durable local store); everything
        connection-scoped is reset: resource clocks, reliable-channel state,
        and — via the incarnation bump — any in-flight deliveries or
        scheduled crashes aimed at the previous incarnation.
        """
        node = self.node(address)
        if not node.alive:
            node.incarnation += 1
        node.alive = True
        self._live_cache = None
        node._cpu_free_at = self.now
        node._egress_free_at = self.now
        node._ingress_free_at = self.now
        self._reset_channels(address)
        for listener in list(self._restart_listeners):
            listener(address)
        return node


def broadcast(
    network: Network,
    src: str,
    destinations: Iterable[str],
    msg_type: str,
    payload: Mapping[str, object],
    size: int,
) -> None:
    """Send the same message to every destination (including possibly ``src``)."""
    for dst in destinations:
        network.send(src, dst, msg_type, payload, size)
