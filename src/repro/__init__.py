"""Reproduction of "Reliable Storage and Querying for Collaborative Data
Sharing Systems" (Taylor & Ives, ICDE 2010).

The package implements the distributed, replicated, versioned storage layer
and the fault-tolerant distributed query processor of the ORCHESTRA
collaborative data sharing system, running on a deterministic discrete-event
network simulator.  See DESIGN.md for the system inventory and EXPERIMENTS.md
for the reproduced evaluation.
"""

__version__ = "1.2.0"
