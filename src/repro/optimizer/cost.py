"""Cost model: worst-case completion-time estimates per plan stage.

Following the paper's description of the ORCHESTRA optimizer, the cost of a
subplan is the sum over its stages of the estimated completion time of the
*slowest* node or link used by that stage — a worst-case expected completion
time.  The model assumes every horizontally partitioned relation is spread
evenly over all nodes (which the balanced allocator guarantees), so the
per-node share of any stage is ``1/n`` of the total work, except for the final
result collection, which is bottlenecked by the initiator's ingress link.

Selectivity estimation uses the usual System-R style heuristics over the
catalog statistics (1/distinct for equality, 1/3 for range predicates,
containment for joins).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..query.expressions import (
    BooleanOp,
    Comparison,
    Expression,
    InList,
    Literal,
    split_conjuncts,
)
from .catalog import TableStatistics


@dataclass(frozen=True)
class MachineProfile:
    """Machine and network characteristics the optimizer plans against.

    The defaults mirror the LAN profile; benchmarks derive profiles from the
    cluster's :class:`~repro.net.profiles.NetworkProfile` so that plan choice
    reacts to bandwidth the same way the paper's optimizer does.
    """

    num_nodes: int = 8
    tuples_per_second_cpu: float = 2_000_000.0
    bytes_per_second_network: float = 125_000_000.0
    bytes_per_second_disk: float = 80_000_000.0
    latency_seconds: float = 0.0001

    @classmethod
    def for_cluster(cls, cluster) -> "MachineProfile":
        """Build a profile from a :class:`repro.cluster.Cluster`."""
        host = cluster.profile.host
        return cls(
            num_nodes=len(cluster.live_addresses()),
            tuples_per_second_cpu=2_000_000.0 * host.cpu_factor,
            bytes_per_second_network=min(host.egress_bandwidth, host.ingress_bandwidth),
            bytes_per_second_disk=host.disk_read_bandwidth,
            latency_seconds=cluster.profile.latency,
        )


@dataclass
class PlanEstimate:
    """Cost and cardinality estimate for a physical subplan."""

    cost: float
    rows: float
    row_size: float
    #: Attributes the output is hash-partitioned on (None = unknown/arbitrary).
    partitioning: tuple[str, ...] | None = None


class CostModel:
    """Stage-cost formulas shared by the Volcano search and the planner.

    ``residency`` (a :class:`~repro.cache.node.CacheResidency`, optional)
    makes the costing *cache-aware*: the model asks how many bytes of a
    relation are warm in the initiating node's version-keyed cache and
    discounts the scan's I/O share accordingly, so plans over warm relations
    are priced ahead of plans that must re-read cold data.

    This is the warm-working-set heuristic of buffer-pool-aware optimizers,
    and — like theirs — it is an *estimate*, not a guarantee of realized
    savings: local residency is used as a proxy for the relation's recent
    working set being warm cluster-wide, while the executing leaf scans read
    each participant's own store.  The residency bytes come from the node's
    cached tuple batches, which Algorithm-1 *retrievals* populate — query
    leaf scans do not feed the tier (repeat queries are served wholesale by
    the semantic result cache instead), so the discount speaks for relations
    this node recently retrieved.  Because every complete plan scans each
    base relation exactly once, the discount mostly shifts absolute cost
    estimates (and branch-and-bound thresholds) rather than join order.
    """

    #: Typical encoded:raw width ratio of the columnar encodings (dictionary/
    #: RLE/frame-of-reference with raw fallback) over the benchmark workloads
    #: — what the committed BENCH_pushdown.json data-byte reductions measure.
    #: The planner passes this when ``PlannerOptions.enable_encoding`` is on
    #: so the Volcano search prices scan output at the width that actually
    #: ships; direct constructions default to 1.0 (raw widths).
    DEFAULT_ENCODED_RATIO = 0.65

    def __init__(
        self,
        machine: MachineProfile,
        residency=None,
        encoded_width_ratio: float = 1.0,
    ) -> None:
        self.machine = machine
        self.residency = residency
        self.encoded_width_ratio = encoded_width_ratio

    def warm_fraction(self, relation: str | None, total_bytes: float) -> float:
        """Fraction of ``relation``'s footprint resident in the local cache."""
        if self.residency is None or relation is None or total_bytes <= 0:
            return 0.0
        cached = self.residency.cached_bytes(relation)
        return min(1.0, cached / total_bytes)

    # -- selectivity / cardinality -------------------------------------------------

    def selectivity(self, predicate: Expression | None, statistics: TableStatistics) -> float:
        if predicate is None:
            return 1.0
        result = 1.0
        for conjunct in split_conjuncts(predicate):
            result *= self._conjunct_selectivity(conjunct, statistics)
        return max(result, 1e-6)

    def _conjunct_selectivity(self, conjunct: Expression, statistics: TableStatistics) -> float:
        if isinstance(conjunct, Comparison):
            references = sorted(conjunct.references())
            if conjunct.operator == "=":
                if references:
                    return 1.0 / statistics.distinct_values(references[0])
                return 0.1
            if conjunct.operator == "!=":
                return 0.9
            return 1.0 / 3.0
        if isinstance(conjunct, InList):
            references = sorted(conjunct.references())
            if references:
                per_value = 1.0 / statistics.distinct_values(references[0])
                return min(1.0, per_value * len(conjunct.values))
            return 0.2
        if isinstance(conjunct, BooleanOp) and conjunct.operator == "or":
            return min(1.0, sum(
                self._conjunct_selectivity(op, statistics) for op in conjunct.operands
            ))
        if isinstance(conjunct, Literal):
            return 1.0 if conjunct.value else 0.0
        return 0.25

    def join_cardinality(
        self, left_rows: float, right_rows: float, left_distinct: float, right_distinct: float
    ) -> float:
        denominator = max(left_distinct, right_distinct, 1.0)
        return max(1.0, left_rows * right_rows / denominator)

    # -- stage costs --------------------------------------------------------------------

    @property
    def _nodes(self) -> int:
        return max(1, self.machine.num_nodes)

    def scan_cost(self, rows: float, row_size: float, relation: str | None = None) -> float:
        """Parallel scan: each node reads and filters its share of the data.

        When the relation is (partly) warm in the version-keyed cache, the
        warm share skips the storage read — cached page/tuple batches are
        served from memory — so only the cold fraction pays the I/O cost.
        """
        per_node_rows = rows / self._nodes
        cpu = per_node_rows / self.machine.tuples_per_second_cpu
        disk = per_node_rows * row_size / self.machine.bytes_per_second_disk
        disk *= 1.0 - self.warm_fraction(relation, rows * row_size)
        return cpu + disk + self.machine.latency_seconds

    def scan_output_cost(self, output_rows: float, output_row_size: float) -> float:
        """Materialising the scan's post-pushdown output stream.

        Priced by selectivity × projected row width: the bytes the leaf scan
        actually injects into the plan after the pushed predicate filtered
        and the pushed projection narrowed its rows.  Every complete plan
        scans each base relation exactly once, so this term shifts absolute
        costs rather than join order — the order-sensitive effect of pushdown
        flows through the estimate's ``rows``/``row_size``, which every
        rehash and ship stage is priced from.

        With the columnar encodings on, the copy term is priced at the
        *encoded* width (``encoded_width_ratio``): what leaves the scan — and
        what every downstream exchange ships — is the encoded batch, so the
        search sees the real wire cost of a scan's output stream.
        """
        per_node_rows = output_rows / self._nodes
        cpu = per_node_rows / self.machine.tuples_per_second_cpu
        copy = (
            per_node_rows * output_row_size * self.encoded_width_ratio
            / self.machine.bytes_per_second_disk
        )
        return cpu + copy

    def select_cost(self, rows: float) -> float:
        """Participant-side selection over intermediate rows (lifted plans)."""
        return rows / self._nodes / self.machine.tuples_per_second_cpu

    def rehash_cost(self, rows: float, row_size: float) -> float:
        """Repartitioning: nearly all rows cross the network once."""
        per_node_rows = rows / self._nodes
        crossing_fraction = (self._nodes - 1) / self._nodes
        network = per_node_rows * crossing_fraction * row_size / self.machine.bytes_per_second_network
        cpu = per_node_rows / self.machine.tuples_per_second_cpu
        return network + cpu + self.machine.latency_seconds

    def join_cost(self, left_rows: float, right_rows: float, output_rows: float) -> float:
        per_node = (left_rows + right_rows + output_rows) / self._nodes
        return per_node / self.machine.tuples_per_second_cpu

    def aggregate_cost(self, rows: float) -> float:
        return rows / self._nodes / self.machine.tuples_per_second_cpu

    def ship_cost(self, rows: float, row_size: float) -> float:
        """Result collection: bottlenecked by the initiator's ingress link."""
        network = rows * row_size / self.machine.bytes_per_second_network
        cpu = rows / self.machine.tuples_per_second_cpu
        return network + cpu + self.machine.latency_seconds
