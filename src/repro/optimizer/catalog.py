"""Catalog and table statistics used by the cost-based optimizer.

The paper's optimizer "relies on information (previously computed and stored)
about machine CPU and disk performance, as well as pairwise bandwidth" and
"estimates costs by assuming that each horizontally partitioned relation will
be evenly distributed by the storage layer across all nodes".  The catalog
holds the data-side half of that information: per-relation row counts, row
widths and per-column distinct-value estimates, either registered explicitly
or derived from an in-memory :class:`~repro.common.types.RelationData` (as the
workload generators do).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..common.errors import OptimizerError
from ..common.types import RelationData, Schema, estimate_values_size


@dataclass
class TableStatistics:
    """Summary statistics for one stored relation."""

    row_count: int
    avg_row_size: float
    distinct: dict[str, int] = field(default_factory=dict)

    def distinct_values(self, attribute: str) -> int:
        """Estimated number of distinct values of ``attribute`` (≥ 1)."""
        return max(1, self.distinct.get(attribute, max(1, self.row_count // 10)))

    @classmethod
    def from_relation(cls, data: RelationData, sample_limit: int = 5000) -> "TableStatistics":
        """Derive statistics from an in-memory relation (sampling large ones)."""
        rows = data.rows
        row_count = len(rows)
        sample = rows if row_count <= sample_limit else rows[:: max(1, row_count // sample_limit)]
        if sample:
            avg_row_size = sum(estimate_values_size(r) for r in sample) / len(sample)
        else:
            avg_row_size = 1.0
        distinct: dict[str, int] = {}
        for index, attribute in enumerate(data.schema.attributes):
            seen = {row[index] for row in sample}
            if row_count and len(sample) < row_count:
                # Scale the sampled distinct count up, capped by the row count.
                scaled = int(len(seen) * row_count / max(1, len(sample)))
                distinct[attribute] = min(row_count, max(len(seen), scaled))
            else:
                distinct[attribute] = len(seen)
        return cls(row_count=row_count, avg_row_size=avg_row_size, distinct=distinct)


class Catalog:
    """Schemas plus statistics for every relation known to the optimizer."""

    def __init__(self) -> None:
        self._schemas: dict[str, Schema] = {}
        self._statistics: dict[str, TableStatistics] = {}

    def register(self, schema: Schema, statistics: TableStatistics) -> None:
        self._schemas[schema.name] = schema
        self._statistics[schema.name] = statistics

    def register_relation(self, data: RelationData) -> None:
        self.register(data.schema, TableStatistics.from_relation(data))

    @classmethod
    def from_relations(cls, relations: Iterable[RelationData]) -> "Catalog":
        catalog = cls()
        for data in relations:
            catalog.register_relation(data)
        return catalog

    @classmethod
    def from_mapping(cls, relations: Mapping[str, RelationData]) -> "Catalog":
        return cls.from_relations(relations.values())

    def __contains__(self, relation: str) -> bool:
        return relation in self._schemas

    def relations(self) -> list[str]:
        return sorted(self._schemas)

    def schema(self, relation: str) -> Schema:
        try:
            return self._schemas[relation]
        except KeyError:
            raise OptimizerError(f"relation {relation!r} is not in the catalog") from None

    def statistics(self, relation: str) -> TableStatistics:
        try:
            return self._statistics[relation]
        except KeyError:
            raise OptimizerError(f"relation {relation!r} has no statistics") from None

    def schemas(self) -> dict[str, Schema]:
        return dict(self._schemas)
