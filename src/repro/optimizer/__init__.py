"""Cost-based query optimizer (Volcano-style top-down search)."""

from .catalog import Catalog, TableStatistics
from .cost import CostModel, MachineProfile, PlanEstimate
from .planner import CompiledQuery, PlannerOptions, compile_query
from .volcano import JoinEdge, RelationTerm, SearchStatistics, VolcanoJoinSearch

__all__ = [
    "Catalog",
    "CompiledQuery",
    "CostModel",
    "JoinEdge",
    "MachineProfile",
    "PlanEstimate",
    "PlannerOptions",
    "RelationTerm",
    "SearchStatistics",
    "TableStatistics",
    "VolcanoJoinSearch",
    "compile_query",
]
