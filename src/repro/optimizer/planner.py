"""Query compilation: logical single-block queries → distributed physical plans.

``compile_query`` performs the work of the ORCHESTRA optimizer described in
Section VI:

1. flatten the single-block logical plan into base relations, pushed-down
   selection predicates, equi-join edges, projection, aggregation and
   presentation (ORDER BY / LIMIT);
2. split each relation's predicate into a *sargable* part (evaluable from key
   attributes at the index nodes) and a *residual* part, and detect covering
   index scans;
3. choose the join order, join shape (bushy allowed) and rehash placement with
   the Volcano-style search of :mod:`repro.optimizer.volcano`;
4. choose the aggregation strategy: a purely local partial aggregation merged
   at the query initiator (TPC-H Q1/Q6 style) when the number of groups is
   small, or partial aggregation → rehash on the grouping key → final
   aggregation (the paper's Example 5.1 shape) when it is large;
5. attach the final projection and the Ship operator with its collector mode.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import OptimizerError, PlanError
from ..query.expressions import (
    AggregateSpec,
    Column,
    Comparison,
    Expression,
    and_,
    col,
    split_sargable,
)
from ..query.logical import (
    LogicalAggregate,
    LogicalJoin,
    LogicalPlan,
    LogicalProject,
    LogicalQuery,
    LogicalScan,
    LogicalSelect,
)
from ..query.pushdown import MAX_PRUNE_CANDIDATES, candidate_partition_hashes
from ..query.physical import (
    COLLECT_APPEND,
    COLLECT_MERGE_PARTIALS,
    COLLECT_REPLACE_GROUPS,
    PhysicalOperator,
    PhysicalPlan,
    PlanBuilder,
)
from .catalog import Catalog
from .cost import CostModel, MachineProfile
from .volcano import JoinEdge, RelationTerm, SearchStatistics, VolcanoJoinSearch


@dataclass
class PlannerOptions:
    """Tuning knobs for plan compilation."""

    #: Below this many estimated groups, aggregation is done locally and the
    #: partial results are merged at the query initiator; above it, the plan
    #: rehashes on the grouping key and aggregates in a distributed fashion.
    small_group_threshold: int = 4096
    #: Allow covering index scans when a relation's needed columns are all key
    #: attributes.
    enable_covering_scans: bool = True
    #: Push scan-local predicates and the referenced-column projection into
    #: the leaf scans (evaluated at the index/data nodes, before any bytes
    #: cross the simulated network).  Disabling lifts every scan-local
    #: predicate into a Select above the scan and makes scans emit the full
    #: schema — the classic evaluate-at-the-participant plan, kept as the A/B
    #: baseline for the wire-traffic figures.
    enable_pushdown: bool = True
    #: Prune index pages whose hash range provably cannot contain a matching
    #: tuple (requires ``enable_pushdown``; only predicates that pin the
    #: partition key to a finite candidate set prune anything).
    enable_page_pruning: bool = True
    #: Cap on enumerated partition-key combinations for page pruning.
    prune_candidate_limit: int = MAX_PRUNE_CANDIDATES
    #: Ship exchange batches (and price scan output) at encoded-column sizes
    #: — dictionary/RLE/frame-of-reference per column, raw fallback.
    #: Disabling restores the raw tagged-value batch sizes end-to-end, the
    #: A/B baseline mirroring ``enable_pushdown``.
    enable_encoding: bool = True


@dataclass
class CompiledQuery:
    """A physical plan plus the estimates the optimizer produced for it."""

    plan: PhysicalPlan
    estimated_cost: float
    estimated_rows: float
    search_statistics: SearchStatistics


@dataclass
class _FlattenedBlock:
    scans: dict[str, LogicalScan]
    predicates: list[Expression]
    project: list[tuple[str, Expression]] | None
    aggregate: LogicalAggregate | None


def _flatten(query: LogicalQuery) -> _FlattenedBlock:
    """Decompose a single-block logical plan into its components."""
    node: LogicalPlan = query.root
    project: list[tuple[str, Expression]] | None = None
    aggregate: LogicalAggregate | None = None

    if isinstance(node, LogicalProject):
        project = list(node.outputs)
        node = node.child
    if isinstance(node, LogicalAggregate):
        aggregate = node
        node = node.child
    if project is None and isinstance(node, LogicalProject):
        project = list(node.outputs)
        node = node.child

    scans: dict[str, LogicalScan] = {}
    predicates: list[Expression] = []

    def collect(plan: LogicalPlan) -> None:
        if isinstance(plan, LogicalScan):
            if plan.schema.name in scans:
                raise PlanError(
                    f"relation {plan.schema.name!r} appears twice; self-joins need aliases"
                )
            scans[plan.schema.name] = plan
            return
        if isinstance(plan, LogicalSelect):
            predicates.append(plan.predicate)
            collect(plan.child)
            return
        if isinstance(plan, LogicalJoin):
            for left_attr, right_attr in plan.condition:
                predicates.append(Comparison("=", col(left_attr), col(right_attr)))
            collect(plan.left)
            collect(plan.right)
            return
        if isinstance(plan, LogicalProject):
            raise PlanError("projections below joins are not supported in a single block")
        if isinstance(plan, LogicalAggregate):
            raise PlanError("nested aggregation is not supported in a single block")
        raise PlanError(f"unsupported logical operator {type(plan).__name__}")

    collect(node)
    return _FlattenedBlock(scans, predicates, project, aggregate)


def compile_query(
    query: LogicalQuery,
    catalog: Catalog,
    machine: MachineProfile | None = None,
    options: PlannerOptions | None = None,
    epoch: int | None = None,
    residency=None,
) -> CompiledQuery:
    """Compile a logical query into a distributed physical plan.

    ``residency`` (a :class:`~repro.cache.node.CacheResidency`) makes the
    cost model cache-aware: relations warm in the initiator's version-keyed
    cache are priced below cold ones, steering join-order and shape choices
    toward plans the caches can serve.

    Known tradeoff: the semantic result cache keys on the *physical* plan's
    fingerprint, so if residency flips a near-tie join order between a cold
    and a warm compile, the warm repeat misses the entry the cold run stored
    (a missed optimisation, never a wrong answer).  Leaf-scan discounts are
    additive constants shared by every complete plan, so in practice the
    chosen order is stable.
    """
    machine = machine or MachineProfile()
    options = options or PlannerOptions()
    cost_model = CostModel(
        machine,
        residency=residency,
        encoded_width_ratio=(
            CostModel.DEFAULT_ENCODED_RATIO if options.enable_encoding else 1.0
        ),
    )
    builder = PlanBuilder()
    block = _flatten(query)
    if not block.scans:
        raise OptimizerError("the query references no relations")

    from ..query.expressions import split_conjuncts

    conjuncts: list[Expression] = []
    for predicate in block.predicates:
        conjuncts.extend(split_conjuncts(predicate))

    attribute_owner: dict[str, str] = {}
    for name, scan in block.scans.items():
        for attribute in scan.schema.attributes:
            if attribute in attribute_owner:
                raise PlanError(
                    f"attribute {attribute!r} appears in both {attribute_owner[attribute]!r} "
                    f"and {name!r}; qualify attribute names to keep them unique"
                )
            attribute_owner[attribute] = name

    local_predicates: dict[str, list[Expression]] = {name: [] for name in block.scans}
    join_edges: list[JoinEdge] = []
    residual_predicates: list[Expression] = []
    for conjunct in conjuncts:
        owners = {attribute_owner[a] for a in conjunct.references() if a in attribute_owner}
        unknown = [a for a in conjunct.references() if a not in attribute_owner]
        if unknown:
            raise PlanError(f"predicate references unknown attributes {unknown}")
        if len(owners) == 1:
            local_predicates[owners.pop()].append(conjunct)
        elif (
            len(owners) == 2
            and isinstance(conjunct, Comparison)
            and conjunct.operator == "="
            and isinstance(conjunct.left, Column)
            and isinstance(conjunct.right, Column)
        ):
            left_rel = attribute_owner[conjunct.left.name]
            right_rel = attribute_owner[conjunct.right.name]
            join_edges.append(
                JoinEdge(left_rel, conjunct.left.name, right_rel, conjunct.right.name)
            )
        else:
            residual_predicates.append(conjunct)

    needed = _needed_columns(
        block, join_edges, residual_predicates, query,
        local_predicates if options.enable_pushdown else None,
    )

    terms: dict[str, RelationTerm] = {}
    for name, scan in block.scans.items():
        schema = scan.schema
        predicate = and_(*local_predicates[name]) if local_predicates[name] else None
        if options.enable_pushdown:
            # Scan-local predicates are evaluated where the data lives: the
            # sargable part at the index nodes (over tuple-ID key values),
            # the residual at the data nodes (over the full stored tuple) —
            # before any row crosses the simulated network.  The scan's
            # output is narrowed to the columns the rest of the plan
            # actually reads; attributes referenced only by the pushed
            # predicate never ship.
            sargable, residual = split_sargable(predicate, schema.key)
            lifted = None
            needed_columns = needed[name]
            covering = (
                options.enable_covering_scans
                and residual is None
                and set(needed_columns) <= set(schema.key)
            )
            prune_hashes = None
            if options.enable_page_pruning:
                prune_hashes = candidate_partition_hashes(
                    sargable, schema.partition_key, options.prune_candidate_limit
                )
        else:
            # A/B baseline: full-width scans, predicates evaluated in a
            # Select above the scan at the participant, no page pruning.
            sargable = residual = None
            lifted = predicate
            needed_columns = schema.attributes
            covering = False
            prune_hashes = None
        terms[name] = RelationTerm(
            name=name,
            schema=schema,
            needed_columns=needed_columns,
            sargable=sargable,
            residual=residual,
            covering=covering,
            epoch=scan.epoch if scan.epoch is not None else epoch,
            lifted=lifted,
            prune_hashes=prune_hashes,
        )

    search = VolcanoJoinSearch(terms, join_edges, catalog, cost_model, builder)
    join_plan, join_estimate = search.best_join_plan()
    plan_root: PhysicalOperator = join_plan
    total_cost = join_estimate.cost
    rows = join_estimate.rows

    if residual_predicates:
        plan_root = builder.select(plan_root, and_(*residual_predicates))
        rows = max(1.0, rows * 0.25)

    ship_order_by = tuple(query.order_by)
    ship_limit = query.limit

    if block.aggregate is not None:
        aggregate = block.aggregate
        group_by = tuple(aggregate.group_by)
        specs = tuple(aggregate.aggregates)
        groups = _estimate_groups(group_by, block, catalog, rows)
        partial = builder.aggregate(plan_root, group_by, specs, merge_partials=False)
        total_cost += cost_model.aggregate_cost(rows)
        if groups <= options.small_group_threshold:
            # Distributed partial aggregation, re-aggregated at the initiator.
            ship = builder.ship(
                partial,
                collector_mode=COLLECT_MERGE_PARTIALS,
                group_by=group_by,
                aggregates=specs,
                order_by=ship_order_by,
                limit=ship_limit,
            )
            total_cost += cost_model.ship_cost(groups * machine.num_nodes, 64.0)
        else:
            # Example 5.1 shape: rehash on the grouping key, aggregate, ship.
            rehashed = builder.rehash(partial, group_by)
            merge_specs = tuple(
                AggregateSpec(spec.name, spec.function, col(spec.name)) for spec in specs
            )
            final = builder.aggregate(rehashed, group_by, merge_specs, merge_partials=True)
            ship = builder.ship(
                final,
                collector_mode=COLLECT_REPLACE_GROUPS,
                group_by=group_by,
                aggregates=merge_specs,
                order_by=ship_order_by,
                limit=ship_limit,
            )
            total_cost += cost_model.rehash_cost(groups, 64.0)
            total_cost += cost_model.aggregate_cost(groups)
            total_cost += cost_model.ship_cost(groups, 64.0)
        rows = groups
        if block.project is not None:
            raise PlanError("projections above aggregates are not supported")
    else:
        if block.project is not None:
            plan_root = builder.project(plan_root, block.project)
        ship = builder.ship(
            plan_root,
            collector_mode=COLLECT_APPEND,
            order_by=ship_order_by,
            limit=ship_limit,
        )
        total_cost += cost_model.ship_cost(rows, join_estimate.row_size)

    plan = PhysicalPlan(
        root=ship, name=query.name, enable_encoding=options.enable_encoding
    )
    return CompiledQuery(
        plan=plan,
        estimated_cost=total_cost,
        estimated_rows=rows,
        search_statistics=search.statistics,
    )


def _needed_columns(
    block: _FlattenedBlock,
    join_edges: list[JoinEdge],
    residual_predicates: list[Expression],
    query: LogicalQuery,
    pushed_predicates: dict[str, list[Expression]] | None = None,
) -> dict[str, tuple[str, ...]]:
    """Columns of each relation that any part of the query references.

    ``pushed_predicates`` (relation → scan-local conjuncts) marks predicates
    that will be evaluated *inside* the leaf scan, at the node holding the
    data: attributes referenced only by those conjuncts are consumed before
    the scan emits a row, so they are excluded from the scan's output — the
    projection-pushdown half of the wire-traffic optimizer.  When ``None``
    (pushdown disabled), every predicate reference stays in the output,
    reproducing the evaluate-at-the-participant baseline.
    """
    referenced: set[str] = set()
    for edges in join_edges:
        referenced.add(edges.left_attribute)
        referenced.add(edges.right_attribute)
    for predicate in residual_predicates:
        referenced |= predicate.references()
    if pushed_predicates is None:
        for predicate in block.predicates:
            referenced |= predicate.references()
    if block.project is not None:
        for _name, expr in block.project:
            referenced |= expr.references()
    if block.aggregate is not None:
        referenced |= set(block.aggregate.group_by)
        for spec in block.aggregate.aggregates:
            referenced |= spec.argument.references()
    for attribute, _asc in query.order_by:
        referenced.add(attribute)

    wants_all = block.project is None and block.aggregate is None
    result: dict[str, tuple[str, ...]] = {}
    for name, scan in block.scans.items():
        if wants_all:
            result[name] = scan.schema.attributes
        else:
            result[name] = tuple(
                attribute for attribute in scan.schema.attributes if attribute in referenced
            ) or (scan.schema.attributes[0],)
    return result


def _estimate_groups(
    group_by: tuple[str, ...],
    block: _FlattenedBlock,
    catalog: Catalog,
    input_rows: float,
) -> float:
    if not group_by:
        return 1.0
    estimate = 1.0
    for attribute in group_by:
        for name in block.scans:
            schema = block.scans[name].schema
            if attribute in schema.attributes and name in catalog.relations():
                estimate *= catalog.statistics(name).distinct_values(attribute)
                break
        else:
            estimate *= 100.0
    return min(estimate, max(1.0, input_rows))
