"""Volcano-style join-order search (top-down, memoized, branch-and-bound).

The paper's optimizer "adopts the Volcano transformational model, using
top-down enumeration of plans with memoization, and employing branch-and-bound
pruning to discard alternative query plans when their cost exceeds the cost of
a known query plan.  Our optimizer considers bushy as well as linear query
plans."  This module reproduces that search for the join-order / exchange-
placement part of the plan:

* plans for every subset of the joined relations are enumerated top-down and
  memoized per subset;
* both linear and bushy shapes are produced, because each subset may be split
  into *any* pair of connected sub-subsets;
* within a subset, alternatives whose accumulated cost already exceeds the
  best known plan for that subset are pruned (branch and bound);
* a rehash exchange is inserted on any join input whose current partitioning
  does not match its join keys, so co-located joins (e.g. TPC-H orders ⋈
  lineitem on ``orderkey``) avoid repartitioning entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..common.errors import OptimizerError
from ..query.expressions import Expression
from ..query.physical import PhysicalOperator, PlanBuilder
from .catalog import Catalog
from .cost import CostModel, PlanEstimate


@dataclass
class RelationTerm:
    """One base relation of the query block, with its pushed-down predicates."""

    name: str
    schema: object
    needed_columns: tuple[str, ...]
    sargable: Expression | None = None
    residual: Expression | None = None
    covering: bool = False
    epoch: int | None = None
    #: Scan-local predicate *not* pushed into the scan (pushdown disabled):
    #: the leaf becomes scan → Select, evaluated at the participant after the
    #: full-width rows were produced — the A/B traffic baseline.
    lifted: Expression | None = None
    #: Page-pruning candidates for the scan (see PhysScan.prune_hashes).
    prune_hashes: tuple[int, ...] | None = None


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join conjunct between two relations."""

    left_relation: str
    left_attribute: str
    right_relation: str
    right_attribute: str

    def connects(self, group_a: frozenset[str], group_b: frozenset[str]) -> bool:
        return (
            (self.left_relation in group_a and self.right_relation in group_b)
            or (self.left_relation in group_b and self.right_relation in group_a)
        )

    def oriented(self, left_group: frozenset[str]) -> tuple[str, str]:
        """(left attr, right attr) with "left" meaning ``left_group``."""
        if self.left_relation in left_group:
            return self.left_attribute, self.right_attribute
        return self.right_attribute, self.left_attribute


@dataclass
class _MemoEntry:
    plan: PhysicalOperator
    estimate: PlanEstimate


@dataclass
class SearchStatistics:
    """Counters describing one optimizer run (reported by benchmarks/tests)."""

    subsets_explored: int = 0
    alternatives_considered: int = 0
    alternatives_pruned: int = 0


class VolcanoJoinSearch:
    """Join-order search over a set of relation terms and join edges."""

    def __init__(
        self,
        terms: dict[str, RelationTerm],
        edges: list[JoinEdge],
        catalog: Catalog,
        cost_model: CostModel,
        builder: PlanBuilder,
    ) -> None:
        if not terms:
            raise OptimizerError("cannot optimize a query with no relations")
        self.terms = terms
        self.edges = edges
        self.catalog = catalog
        self.cost = cost_model
        self.builder = builder
        self._memo: dict[frozenset[str], _MemoEntry] = {}
        self.statistics = SearchStatistics()

    # -- public -----------------------------------------------------------------------

    def best_join_plan(self) -> tuple[PhysicalOperator, PlanEstimate]:
        """The cheapest plan joining all relations of the query block."""
        entry = self._best(frozenset(self.terms))
        return entry.plan, entry.estimate

    # -- leaves -----------------------------------------------------------------------

    def _leaf(self, name: str) -> _MemoEntry:
        term = self.terms[name]
        statistics = self.catalog.statistics(name)
        predicate_parts = [
            p for p in (term.sargable, term.residual, term.lifted) if p is not None
        ]
        from ..query.expressions import and_

        predicate = and_(*predicate_parts) if predicate_parts else None
        selectivity = self.cost.selectivity(predicate, statistics)
        rows = max(1.0, statistics.row_count * selectivity)
        width_fraction = len(term.needed_columns) / max(1, len(term.schema.attributes))
        row_size = max(8.0, statistics.avg_row_size * width_fraction)
        partitioning = (
            tuple(term.schema.partition_key)
            if set(term.schema.partition_key) <= set(term.needed_columns)
            else None
        )
        plan: PhysicalOperator = self.builder.scan(
            term.schema,
            columns=term.needed_columns,
            epoch=term.epoch,
            sargable=term.sargable,
            residual=term.residual,
            covering=term.covering,
            prune_hashes=term.prune_hashes,
        )
        # The scan is priced in two parts: reading/filtering the stored data,
        # plus materialising its *post-pushdown* output — selectivity ×
        # projected row width.  Narrowed, filtered scans therefore enter the
        # search as cheaper inputs, and the rows/row_size they expose drive
        # every downstream rehash/ship decision off the same reduced bytes.
        cost = self.cost.scan_cost(
            statistics.row_count, statistics.avg_row_size, relation=name
        ) + self.cost.scan_output_cost(rows, row_size)
        if term.lifted is not None:
            # Pushdown disabled: the scan emits full-width rows and the
            # predicate runs in a Select at the participant.
            plan = self.builder.select(plan, term.lifted)
            cost += self.cost.select_cost(statistics.row_count)
        estimate = PlanEstimate(
            cost=cost,
            rows=rows,
            row_size=row_size,
            partitioning=partitioning,
        )
        return _MemoEntry(plan, estimate)

    # -- search -----------------------------------------------------------------------

    def _best(self, subset: frozenset[str]) -> _MemoEntry:
        cached = self._memo.get(subset)
        if cached is not None:
            return cached
        self.statistics.subsets_explored += 1
        if len(subset) == 1:
            (name,) = subset
            entry = self._leaf(name)
            self._memo[subset] = entry
            return entry

        best: _MemoEntry | None = None
        splits = list(self._splits(subset, connected_only=True))
        if not splits:
            splits = list(self._splits(subset, connected_only=False))
        for left_set, right_set in splits:
            left_entry = self._best(left_set)
            right_entry = self._best(right_set)
            self.statistics.alternatives_considered += 1
            # Branch and bound: children alone already cost more than the best
            # complete alternative for this subset.
            base_cost = left_entry.estimate.cost + right_entry.estimate.cost
            if best is not None and base_cost >= best.estimate.cost:
                self.statistics.alternatives_pruned += 1
                continue
            candidate = self._build_join(subset, left_set, right_set, left_entry, right_entry)
            if candidate is None:
                continue
            if best is None or candidate.estimate.cost < best.estimate.cost:
                best = candidate
        if best is None:
            raise OptimizerError(f"no join plan found for relations {sorted(subset)}")
        self._memo[subset] = best
        return best

    def _splits(self, subset: frozenset[str], connected_only: bool):
        members = sorted(subset)
        anchor = members[0]
        rest = members[1:]
        for size in range(0, len(rest)):
            for combination in combinations(rest, size):
                left = frozenset((anchor,) + combination)
                right = subset - left
                if not right:
                    continue
                if connected_only and not any(e.connects(left, right) for e in self.edges):
                    continue
                yield left, right

    def _build_join(
        self,
        subset: frozenset[str],
        left_set: frozenset[str],
        right_set: frozenset[str],
        left_entry: _MemoEntry,
        right_entry: _MemoEntry,
    ) -> _MemoEntry | None:
        conditions = [edge for edge in self.edges if edge.connects(left_set, right_set)]
        left_keys: list[str] = []
        right_keys: list[str] = []
        for edge in conditions:
            left_attr, right_attr = edge.oriented(left_set)
            left_keys.append(left_attr)
            right_keys.append(right_attr)
        if not conditions:
            # Cross join: key lists are empty; every row pairs with every row.
            left_keys, right_keys = [], []

        left_plan, left_estimate = left_entry.plan, left_entry.estimate
        right_plan, right_estimate = right_entry.plan, right_entry.estimate
        extra_cost = 0.0

        if not left_keys:
            # Cross join: there is no key to partition on, so both inputs are
            # re-hashed on the empty key, which routes every row to a single
            # node.  Correct but serial — the cost below reflects that, which
            # keeps the search away from cross joins whenever a connected
            # (equi-join) alternative exists.
            left_plan = self.builder.rehash(left_plan, ())
            right_plan = self.builder.rehash(right_plan, ())
            machine = self.cost.machine
            extra_cost += (
                (left_estimate.rows * left_estimate.row_size
                 + right_estimate.rows * right_estimate.row_size)
                / machine.bytes_per_second_network
                + (left_estimate.rows + right_estimate.rows) / machine.tuples_per_second_cpu
            )
        if left_keys and left_estimate.partitioning != tuple(left_keys):
            left_plan = self.builder.rehash(left_plan, left_keys)
            extra_cost += self.cost.rehash_cost(left_estimate.rows, left_estimate.row_size)
        if right_keys and right_estimate.partitioning != tuple(right_keys):
            right_plan = self.builder.rehash(right_plan, right_keys)
            extra_cost += self.cost.rehash_cost(right_estimate.rows, right_estimate.row_size)

        if left_keys:
            left_distinct = self._distinct_estimate(left_set, left_keys[0], left_estimate.rows)
            right_distinct = self._distinct_estimate(right_set, right_keys[0], right_estimate.rows)
            output_rows = self.cost.join_cardinality(
                left_estimate.rows, right_estimate.rows, left_distinct, right_distinct
            )
        else:
            output_rows = left_estimate.rows * right_estimate.rows
        join_plan = self.builder.hash_join(left_plan, right_plan, left_keys, right_keys)
        cost = (
            left_estimate.cost
            + right_estimate.cost
            + extra_cost
            + self.cost.join_cost(left_estimate.rows, right_estimate.rows, output_rows)
        )
        estimate = PlanEstimate(
            cost=cost,
            rows=output_rows,
            row_size=left_estimate.row_size + right_estimate.row_size,
            partitioning=tuple(left_keys) if left_keys else None,
        )
        return _MemoEntry(join_plan, estimate)

    def _distinct_estimate(self, subset: frozenset[str], attribute: str, rows: float) -> float:
        for name in subset:
            term = self.terms[name]
            if attribute in term.schema.attributes:
                distinct = self.catalog.statistics(name).distinct_values(attribute)
                return float(min(distinct, max(1.0, rows)))
        return max(1.0, rows / 10.0)
