"""Cluster wiring: build a simulated CDSS deployment in one call.

A :class:`Cluster` creates the simulated network from a
:class:`~repro.net.profiles.NetworkProfile`, adds the requested number of
participant nodes and attaches to each one the full per-node stack used by the
paper's system: RPC endpoint, membership view, epoch gossip, storage service
(coordinator / index / data / inverse roles) and — when the query engine is
installed via :meth:`enable_query_processing` — the distributed query
executor.

Operations are submitted through the concurrent runtime layer
(:mod:`repro.runtime`): :meth:`Cluster.session` returns a per-initiator
:class:`~repro.runtime.session.Session` whose ``submit_publish`` /
``submit_retrieve`` / ``submit_query`` methods return futures resolved by
the event loop, so any number of operations can be in flight concurrently
under the admission-controlled scheduler.  The *blocking* convenience
wrappers (``publish``, ``retrieve``, ``query``) that examples, tests and
benchmarks use are thin shims over that layer: submit one operation, drive
the discrete-event loop until it drains, return the future's result —
issuing exactly the message sequence the single-operation path always did.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from .cache import CacheConfig, CacheStats, NodeCache, SemanticResultCache
from .common.errors import ReproError
from .common.types import RelationData, Value
from .net.profiles import LAN_GIGABIT, NetworkProfile
from .net.simnet import Network, SimNode, TrafficSnapshot
from .net.transport import rpc_endpoint
from .overlay.allocation import RangeAllocator
from .overlay.gossip import EpochGossip
from .overlay.membership import MembershipView
from .integrity import (
    IntegrityConfig,
    IntegrityScrubber,
    IntegrityStats,
    NodeIntegrity,
    ScrubReport,
)
from .overlay.replication import BackgroundReplicator, ReplicationReport
from .overlay.routing import RoutingSnapshot
from .resilience.config import ResilienceConfig
from .resilience.service import NodeResilience
from .resilience.stats import ResilienceStats
from .runtime.scheduler import SchedulerConfig
from .runtime.session import Runtime, Session
from .storage.client import RetrieveResult, StorageClient, UpdateBatch, register_retrieve_handlers
from .storage.service import StorageService, storage_of


@contextmanager
def _repair_attribution(integrity, source: str):
    """Attribute quarantine back-fills inside the block to ``source``.

    The guard counts a repair when a quarantined entry is re-stored; which
    path performed the write (failover / replication / scrub) is ambient, so
    the maintenance paths flip it around their copy calls.
    """
    if integrity is None:
        yield
        return
    previous = integrity.repair_source
    integrity.repair_source = source
    try:
        yield
    finally:
        integrity.repair_source = previous


@dataclass
class ClusterNode:
    """All per-node components of one simulated participant."""

    node: SimNode
    membership: MembershipView
    gossip: EpochGossip
    storage: StorageService
    storage_client: StorageClient
    #: Version-keyed page/tuple/coordinator cache (None when caching is off).
    cache: NodeCache | None = None
    #: Initiator-side semantic result cache (None when caching is off).
    result_cache: SemanticResultCache | None = None
    #: Gray-failure resilience layer (None when resilience is off).
    resilience: NodeResilience | None = None
    #: End-to-end data integrity guard (None when integrity is off).
    integrity: NodeIntegrity | None = None

    @property
    def address(self) -> str:
        return self.node.address


class Cluster:
    """A simulated deployment of the storage and query subsystem."""

    def __init__(
        self,
        num_nodes: int,
        profile: NetworkProfile = LAN_GIGABIT,
        replication_factor: int = 3,
        allocator: RangeAllocator | None = None,
        page_capacity: int = 2048,
        address_prefix: str = "node",
        cache_config: CacheConfig | None = None,
        scheduler_config: SchedulerConfig | None = None,
        resilience_config: ResilienceConfig | None = None,
        integrity_config: IntegrityConfig | None = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        self.profile = profile
        self.replication_factor = min(replication_factor, num_nodes)
        self.page_capacity = page_capacity
        #: Caching is opt-in: without a config the cluster behaves exactly
        #: like the cache-less system (the regime the paper's figures report).
        self.cache_config = cache_config
        #: Admission-control knobs of the runtime scheduler (None = defaults).
        self.scheduler_config = scheduler_config
        #: Gray-failure resilience (adaptive timeouts, hedging, breakers) is
        #: opt-in for the same reason as caching: with it off, every message
        #: sequence is byte-identical to the pre-resilience system.
        self.resilience_config = resilience_config
        #: End-to-end data integrity (checksummed storage, verified reads,
        #: read-repair, scrubbing) is opt-in too: with it off nothing is
        #: checksummed and the golden wire vectors stay byte-identical.
        self.integrity_config = integrity_config
        #: Cluster-level scrub accounting (rounds, digests, bytes); merged
        #: with the per-node detection/repair counters by
        #: :meth:`integrity_statistics`.
        self._scrub_stats = IntegrityStats()
        self.network: Network = profile.create_network()
        self.addresses = [f"{address_prefix}-{i:03d}" for i in range(num_nodes)]
        self.nodes: dict[str, ClusterNode] = {}
        self.current_epoch = 0
        #: Highest epoch whose publish has *completed* (written durably and
        #: announced).  ``current_epoch`` is bumped when an epoch is assigned
        #: at submission; with concurrent publishes in flight the two differ,
        #: and operations default to the durable one — "the data available at
        #: the epoch in which the operation starts".
        self.durable_epoch = 0
        self._runtime: Runtime | None = None
        self._query_services: dict[str, object] = {}
        #: Nodes currently down (crashed and not yet restarted); maintained by
        #: the network's crash hook at the instant of the crash, so cluster
        #: bookkeeping never trails the simulator's own liveness.
        self.failed_addresses: set[str] = set()
        #: Per-relation tail of the publish chain: concurrent publishes to the
        #: same relation are serialised so each version builds on its
        #: committed predecessor (see :meth:`Session.submit_publish`).
        self._publish_tails: dict[str, object] = {}
        #: The publish currently *executing* per relation (a chained entry
        #: whose predecessor died before starting re-chains onto this).
        self._publishing: dict[str, object] = {}
        #: Highest epoch acknowledged per relation — the floor the next
        #: publish of that relation builds on even when every reachable
        #: catalog replica is stale (e.g. just after a rejoin).
        self._acked_epochs: dict[str, int] = {}
        #: Shared gossip peer list: one list object handed to every node's
        #: gossip component and kept until liveness changes.  The gossip layer
        #: caches its filtered+sorted view keyed by the list's identity, so
        #: steady-state rounds cost O(FANOUT) instead of rebuilding an O(n)
        #: list per message.  Crash and restart hooks drop it.
        self._gossip_peers: list[str] | None = None
        # The optimizer's catalog is maintained as relations are published.
        from .optimizer.catalog import Catalog

        self.catalog = Catalog()
        # The metrics registry exists from construction (it is a handful of
        # dicts) and pulls the hot-path stats objects through collectors at
        # snapshot time, so the message path pays nothing for it.
        from .obs.metrics import MetricsRegistry

        self.metrics = MetricsRegistry()
        self.metrics.register_collector(
            lambda: self.network.traffic.metric_series()
        )
        self.metrics.register_collector(self._scheduler_series)
        self.metrics.register_collector(self._cache_series)
        self.metrics.register_collector(self._fault_series)
        self.metrics.register_collector(self._encoding_series)
        self.metrics.register_collector(self._resilience_series)
        self.metrics.register_collector(self._integrity_series)
        for address in self.addresses:
            sim_node = self.network.add_node(address, profile.host)
            rpc_endpoint(sim_node)
            resilience = None
            if resilience_config is not None:
                resilience = NodeResilience(
                    sim_node, resilience_config, peers=self.live_addresses
                )
            membership = MembershipView(
                sim_node, self.addresses, self.replication_factor, allocator=allocator
            )
            gossip = EpochGossip(sim_node, peers=self._gossip_peer_list)
            node_cache = result_cache = None
            if cache_config is not None:
                node_cache = cache_config.build_node_cache(address)
                result_cache = cache_config.build_result_cache(address)
                # Gossip is the conservative staleness guard: learning of a
                # newer epoch drops every cached resolution/result that the
                # new publish could affect (version-keyed entries survive).
                gossip.add_listener(node_cache.note_epoch)
                if result_cache is not None:
                    gossip.add_listener(result_cache.note_epoch)
            integrity = None
            if integrity_config is not None:
                integrity = NodeIntegrity(integrity_config)
                if node_cache is not None:
                    node_cache.attach_integrity(integrity, node=sim_node)
            storage = StorageService(sim_node, cache=node_cache, integrity=integrity)
            register_retrieve_handlers(storage, self.replication_factor)
            client = StorageClient(
                sim_node, membership, self.replication_factor, page_capacity,
                cache=node_cache,
            )
            self.nodes[address] = ClusterNode(
                sim_node, membership, gossip, storage, client,
                cache=node_cache, result_cache=result_cache,
                resilience=resilience, integrity=integrity,
            )
        self.network.add_crash_listener(self._on_node_crash)
        self.network.add_restart_listener(self._on_node_restart)

    # ------------------------------------------------------------------ access

    def __len__(self) -> int:
        return len(self.addresses)

    def node(self, address: str) -> ClusterNode:
        return self.nodes[address]

    def live_addresses(self) -> list[str]:
        return self.network.live_nodes()

    def _gossip_peer_list(self) -> list[str]:
        """The gossip peer list, rebuilt only when liveness changed.

        Returns the *same* list object between membership events so each
        node's gossip component can reuse its sorted view (see
        :class:`~repro.overlay.gossip.EpochGossip`).
        """
        peers = self._gossip_peers
        if peers is None:
            peers = self._gossip_peers = list(self.network.live_nodes())
        return peers

    def first_live_address(self) -> str:
        live = self.live_addresses()
        if not live:
            raise ReproError("all cluster nodes have failed")
        return live[0]

    def storage(self, address: str) -> StorageService:
        return storage_of(self.network.node(address))

    def snapshot(self, from_address: str | None = None) -> RoutingSnapshot:
        address = from_address or self.first_live_address()
        return self.nodes[address].membership.snapshot()

    # -------------------------------------------------------------------- clock

    def run(self, until: float | None = None) -> float:
        """Drive the event loop; returns the simulated time."""
        return self.network.run(until)

    @property
    def now(self) -> float:
        return self.network.now

    def traffic_snapshot(self) -> TrafficSnapshot:
        return self.network.traffic.snapshot()

    # ------------------------------------------------------------- observability

    def enable_tracing(self, tracer=None):
        """Install a tracer on the network (idempotent); returns it.

        Tracing is **off by default**: enabling it adds the propagated trace
        context's bytes to every remote message, so traced runs are not
        byte-identical to untraced ones — which is exactly why the golden
        wire vectors and the committed traffic numbers are recorded with it
        off.
        """
        if self.network.tracer is None:
            if tracer is None:
                from .obs.trace import Tracer

                tracer = Tracer()
            self.network.tracer = tracer
        return self.network.tracer

    def disable_tracing(self) -> None:
        """Remove the tracer; captured spans stay readable on the old one."""
        self.network.tracer = None

    @property
    def tracer(self):
        return self.network.tracer

    def observability(self) -> dict:
        """One uniformly-named snapshot of everything the cluster measures.

        ``metrics`` is the flat ``{"name{tags}": value}`` view over the
        traffic meter, the scheduler, the cache tiers and the fault injector
        (``rpc.bytes{kind=...}``, ``scheduler.admitted{initiator=...}``,
        ``cache.hits{tier=...}``, ...); ``tracing`` summarises the installed
        tracer, if any.
        """
        tracer = self.network.tracer
        return {
            "metrics": self.metrics.snapshot(),
            "tracing": {
                "enabled": tracer is not None,
                "spans": len(tracer.spans) if tracer is not None else 0,
                "traces": len(tracer.query_traces) if tracer is not None else 0,
            },
        }

    def _scheduler_series(self):
        if self._runtime is None:
            return []
        return self._runtime.scheduler.stats.metric_series()

    def _cache_series(self):
        if self.cache_config is None:
            return []
        samples = []
        for tier, stats in self.cache_statistics().items():
            samples.extend(stats.metric_series(tier))
        # Current occupancy per tier (gauges): the bytes actually held under
        # the budgets right now, cluster-wide.  With encoded tuple batches in
        # the node tier these are *encoded* bytes — the same charged sizes
        # the eviction budget enforces.
        for tier, occupied in self.cache_bytes().items():
            samples.append(("cache.bytes", {"tier": tier}, occupied))
        return samples

    def _encoding_series(self):
        from .common.serialization import ENCODING_STATS

        samples = [
            ("page.encoded_bytes", {"codec": codec}, count)
            for codec, count in sorted(ENCODING_STATS.encoded_bytes.items())
        ]
        samples.append(("page.encoded_batches", {}, ENCODING_STATS.batches_encoded))
        samples.append(("page.batches_skipped", {}, ENCODING_STATS.batches_skipped))
        return samples

    def _fault_series(self):
        injector = self.network.fault_injector
        if injector is None:
            return []
        return injector.stats.metric_series()

    def _resilience_series(self):
        """Cluster-wide resilience counters plus per-pair breaker gauges.

        The counters are the exact sum of the per-node
        :class:`~repro.resilience.stats.ResilienceStats` objects (the
        reconciliation tests hold the registry to that); breaker gauges are
        emitted per observing node so two nodes' views of the same sick peer
        stay distinguishable.
        """
        if self.resilience_config is None:
            return []
        from .resilience.breaker import BREAKER_STATES

        samples = self.resilience_statistics().metric_series()
        for address in self.addresses:
            resilience = self.nodes[address].resilience
            if resilience is None:
                continue
            for peer, state in resilience.breaker_states().items():
                samples.append(
                    (
                        "breaker.state",
                        {"node": address, "peer": peer},
                        BREAKER_STATES[state],
                    )
                )
        return samples

    def _integrity_series(self):
        """Cluster-wide integrity counters for the metrics registry.

        The exact sum of the per-node :class:`~repro.integrity.IntegrityStats`
        plus the cluster-level scrub accounting — the reconciliation tests
        hold the registry view to that sum.
        """
        if self.integrity_config is None:
            return []
        return self.integrity_statistics().metric_series()

    def integrity_statistics(self) -> IntegrityStats:
        """Cluster-wide integrity counters, aggregated over all nodes."""
        total = IntegrityStats()
        for cluster_node in self.nodes.values():
            if cluster_node.integrity is not None:
                total.merge(cluster_node.integrity.stats)
        total.merge(self._scrub_stats)
        return total

    @property
    def integrity_enabled(self) -> bool:
        return self.integrity_config is not None

    def quarantined_entries(self) -> dict[str, set]:
        """Per-node quarantine sets (address -> {(tree, key)}), for invariants."""
        return {
            address: set(cluster_node.integrity.quarantined)
            for address, cluster_node in self.nodes.items()
            if cluster_node.integrity is not None and cluster_node.integrity.quarantined
        }

    def resilience_statistics(self) -> ResilienceStats:
        """Cluster-wide resilience counters, aggregated over all nodes."""
        total = ResilienceStats()
        for cluster_node in self.nodes.values():
            if cluster_node.resilience is not None:
                total.merge(cluster_node.resilience.stats)
        return total

    @property
    def resilience_enabled(self) -> bool:
        return self.resilience_config is not None

    def start_resilience_heartbeats(self, duration: float) -> int:
        """Schedule heartbeat probe trains on every live node for ``duration``.

        Heartbeats are windowed (not free-running) so ``run()`` still drains;
        workload drivers start a train covering their operation window.
        Returns the total number of probe rounds scheduled.
        """
        rounds = 0
        for cluster_node in self.nodes.values():
            if cluster_node.resilience is not None and cluster_node.node.alive:
                rounds += cluster_node.resilience.start_heartbeats(duration)
        return rounds

    # ------------------------------------------------------------------ runtime

    @property
    def runtime(self) -> Runtime:
        """The cluster's concurrent runtime (created lazily, one per cluster)."""
        if self._runtime is None:
            self._runtime = Runtime(self, self.scheduler_config)
        return self._runtime

    def session(self, address: str | None = None) -> Session:
        """An asynchronous session initiating from ``address``.

        Sessions submit operations without driving the event loop; call
        :meth:`run` (or ``cluster.runtime.drain()``) to make progress and
        resolve the returned futures.
        """
        return self.runtime.session(address)

    def note_publish(self, relation: str, epoch: int) -> None:
        """Tell every node's caches that ``relation`` changed at ``epoch``.

        Exact invalidation: gossip only carries the epoch number, so this is
        how caches learn *which* relation changed.  It also covers publishes
        at an epoch the gossip already knew (announce() would not re-fire).
        """
        for cluster_node in self.nodes.values():
            if cluster_node.cache is not None:
                cluster_node.cache.note_publish(relation, epoch)
            if cluster_node.result_cache is not None:
                cluster_node.result_cache.note_publish(relation, epoch)

    # ------------------------------------------------------------------ publish

    def next_epoch(self) -> int:
        self.current_epoch += 1
        return self.current_epoch

    def publish(
        self,
        data: UpdateBatch | RelationData,
        epoch: int | None = None,
        from_address: str | None = None,
    ) -> int:
        """Publish a batch (blocking shim over a session) and gossip the epoch.

        Returns the epoch the batch was published at.
        """
        future = self.session(from_address).submit_publish(data, epoch=epoch)
        self.network.run()
        return future.result()

    def publish_relations(
        self, relations: Iterable[RelationData], epoch: int | None = None
    ) -> int:
        """Publish several relations under a single epoch; returns the epoch."""
        epoch = epoch if epoch is not None else self.next_epoch()
        for relation in relations:
            self.publish(relation, epoch=epoch)
        return epoch

    # ------------------------------------------------------------------ retrieve

    def retrieve(
        self,
        relation: str,
        epoch: int | None = None,
        key_predicate: Callable[[tuple[Value, ...]], bool] | None = None,
        from_address: str | None = None,
        predicate=None,
        columns: Sequence[str] | None = None,
    ) -> RetrieveResult:
        """Retrieve a relation version (blocking shim around Algorithm 1).

        ``predicate`` (an expression over the relation's attributes) and
        ``columns`` (a projection) are pushed to the data nodes: tuples are
        filtered and narrowed where they are stored, before crossing the
        simulated network.  Projected tuples carry values in ``columns``
        order.
        """
        future = self.session(from_address).submit_retrieve(
            relation, epoch=epoch, key_predicate=key_predicate,
            predicate=predicate, columns=columns,
        )
        self.network.run()
        return future.result()

    # ------------------------------------------------------------------ failures

    def fail_node(self, address: str, at_time: float | None = None) -> None:
        """Crash a node immediately or at an absolute simulated time.

        A scheduled crash is bound to the node's current incarnation: if the
        node crashes and restarts before ``at_time``, the stale schedule does
        not kill the restarted process.  :attr:`failed_addresses`,
        ``Network.live_nodes`` and — once the detection delay elapsed — every
        live node's membership view agree on the outcome.
        """
        if at_time is None:
            self.network.fail_node(address)
        else:
            self.network.fail_node_at(address, at_time)

    def _on_node_crash(self, address: str) -> None:
        """Crash-instant bookkeeping (fires from the network, no detection lag)."""
        self.failed_addresses.add(address)
        self._gossip_peers = None
        if self._runtime is not None:
            self._runtime.scheduler.fail_initiator_ops(
                address,
                ReproError(f"initiator {address!r} crashed with the operation in flight"),
            )

    def _on_node_restart(self, address: str) -> None:
        """Restart-instant bookkeeping: the live set changed, drop caches."""
        self._gossip_peers = None

    def restart_node(self, address: str, rejoin: bool = True) -> None:
        """Crash-*restart*: bring a failed node back and re-enter membership.

        The restarted process keeps its durable local store (the B+-tree
        databases of the storage service — BerkeleyDB's role in the paper's
        prototype) and replays from it; everything that lived in volatile
        memory is gone: outstanding RPC calls, in-flight query state, and the
        node's caches.  With ``rejoin`` (the default) the node announces
        itself to its configured seed peers — every live node adds it back to
        its membership view, and the first reply rebuilds the rejoiner's own
        routing table — and pulls the current epoch through the gossip layer.
        Drive the event loop (:meth:`run`) to let the rejoin complete, and run
        :meth:`run_background_replication` to restore the replication factor
        for the ranges the node inherits back.
        """
        cluster_node = self.nodes[address]
        self.network.restart_node(address)
        self.failed_addresses.discard(address)
        self._gossip_peers = None
        rpc_endpoint(cluster_node.node).reset_volatile()
        cluster_node.storage_client.reset_volatile()
        if cluster_node.resilience is not None:
            cluster_node.resilience.reset_volatile()
        if cluster_node.cache is not None:
            cluster_node.cache.clear()
        if cluster_node.result_cache is not None:
            cluster_node.result_cache.clear()
        query_service = self._query_services.get(address)
        if query_service is not None:
            query_service.reset_volatile()
        if rejoin:
            peers = [peer for peer in self.addresses if peer != address]
            cluster_node.membership.rejoin(peers)
            cluster_node.gossip.pull(peers)

    # ------------------------------------------------------- background repair

    def run_background_replication(self) -> ReplicationReport:
        """One anti-entropy round repairing under-replicated tuples.

        Runs directly against the nodes' local stores (this is maintenance
        traffic, not part of any measured query), using the Bloom-filter
        exchange of the PAST-style replicator.
        """
        snapshot = self.snapshot()

        def list_items(address: str, key_range) -> dict[object, int]:
            service = self.storage(address)
            return {
                (tup.relation, tup.tuple_id.key_values, tup.tuple_id.epoch): tup.estimated_size()
                for tup in service.all_local_tuples()
                if key_range.contains(tup.hash_key)
            }

        def copy_item(src: str, dst: str, key) -> int:
            relation, key_values, epoch = key
            source = self.storage(src)
            for tup in source.all_local_tuples(relation):
                if tup.tuple_id.key_values == key_values and tup.tuple_id.epoch == epoch:
                    store_key = (tup.relation, tup.hash_key, tup.tuple_id)
                    if source.integrity is not None and not source.integrity.verify(
                        source.store, "tuples", store_key, tup, "replication",
                        node=source.node,
                    ):
                        # The source copy itself is rotten: don't propagate it.
                        # It is quarantined now; the scrubber (or a later
                        # round from a clean holder) back-fills both sides.
                        return 0
                    destination = self.storage(dst)
                    with _repair_attribution(destination.integrity, "replication"):
                        destination.store_tuple(tup)
                    return tup.estimated_size()
            return 0

        replicator = BackgroundReplicator(self.replication_factor, list_items, copy_item)
        return replicator.run_round(snapshot)

    def run_scrub(self) -> ScrubReport:
        """One digest-exchange scrub round over tuples, pages and coordinators.

        Detects *divergent* — not just absent — copies by comparing freshly
        recomputed checksums across each range's replica group, quarantines
        corrupt or minority copies and back-fills them from the resolution
        winner (highest epoch, then checksum quorum).  Requires the cluster
        to run with an :class:`~repro.integrity.IntegrityConfig`.

        Like background replication this is maintenance work running directly
        against the local stores; its byte cost is *accounted* (digest and
        repair bytes in the report and in ``scrub.bytes``) rather than pushed
        through the simulated network.
        """
        if self.integrity_config is None:
            raise ReproError("run_scrub() requires integrity_config")
        snapshot = self.snapshot()
        total = ScrubReport(rounds=1)
        for tree in StorageService.SCRUB_TREES:

            def list_digests(address: str, key_range, tree=tree):
                return self.storage(address).scrub_digests(tree, key_range)

            def copy_item(src: str, dst: str, key, tree=tree) -> int:
                value = self.storage(src).scrub_fetch(tree, key)
                if value is None:
                    return 0
                destination = self.storage(dst)
                with _repair_attribution(destination.integrity, "scrub"):
                    return destination.scrub_store(tree, key, value)

            def quarantine(address: str, key, tree=tree) -> None:
                self.storage(address).scrub_quarantine(tree, key)

            scrubber = IntegrityScrubber(
                self.replication_factor, list_digests, copy_item, quarantine,
                digest_entry_bytes=self.integrity_config.digest_entry_bytes,
            )
            report = scrubber.run_round(snapshot)
            total.digest_entries += report.digest_entries
            total.digest_bytes += report.digest_bytes
            total.corrupt_copies += report.corrupt_copies
            total.divergent_keys += report.divergent_keys
            total.unrepairable += report.unrepairable
            total.items_copied += report.items_copied
            total.bytes_copied += report.bytes_copied
            total.repairs.extend(report.repairs)
        self._scrub_stats.scrub_rounds += 1
        self._scrub_stats.scrub_digests += total.digest_entries
        self._scrub_stats.scrub_bytes += total.total_bytes
        self._scrub_stats.unrepairable += total.unrepairable
        return total

    # ------------------------------------------------------------------ queries

    def query(
        self,
        query,
        epoch: int | None = None,
        options=None,
        from_address: str | None = None,
        planner_options=None,
    ):
        """Compile and execute a query (blocking shim over a session).

        ``query`` may be a :class:`~repro.query.logical.LogicalQuery` (compiled
        with the cost-based optimizer against this cluster's catalog), an
        already-compiled :class:`~repro.query.physical.PhysicalPlan`, or a SQL
        string (parsed by the single-block SQL frontend).
        """
        future = self.session(from_address).submit_query(
            query, epoch=epoch, options=options, planner_options=planner_options
        )
        self.network.run()
        return future.result()

    # ------------------------------------------------------------ query wiring

    def enable_query_processing(self) -> None:
        """Attach the distributed query executor to every node.

        Implemented lazily (imported here) so the storage layer has no import
        dependency on the query engine.
        """
        from .query.service import QueryService

        for cluster_node in self.nodes.values():
            if cluster_node.address not in self._query_services:
                self._query_services[cluster_node.address] = QueryService(
                    cluster_node.node,
                    cluster_node.membership,
                    cluster_node.storage,
                    replication_factor=self.replication_factor,
                    result_cache=cluster_node.result_cache,
                )

    def query_service(self, address: str):
        if address not in self._query_services:
            self.enable_query_processing()
        return self._query_services[address]

    # ------------------------------------------------------------ cache metrics

    @property
    def cache_enabled(self) -> bool:
        return self.cache_config is not None

    def cache_statistics(self) -> dict[str, CacheStats]:
        """Cluster-wide cache counters, aggregated over all nodes.

        Returns ``{"node": ..., "result": ...}`` — the node-cache tiers
        (coordinator records, pages, tuple batches, resolutions) and the
        semantic result caches.  Empty stats when caching is disabled.
        """
        node_total = CacheStats()
        result_total = CacheStats()
        for cluster_node in self.nodes.values():
            if cluster_node.cache is not None:
                node_total.merge(cluster_node.cache.stats)
            if cluster_node.result_cache is not None:
                result_total.merge(cluster_node.result_cache.stats)
        return {"node": node_total, "result": result_total}

    def cache_bytes(self) -> dict[str, int]:
        """Bytes currently held per cache tier, cluster-wide.

        Tuple-batch entries are charged at their encoded payload size, so the
        node tier reports encoded occupancy — the quantity the eviction
        budget actually enforces.
        """
        node_bytes = result_bytes = 0
        for cluster_node in self.nodes.values():
            if cluster_node.cache is not None:
                node_bytes += cluster_node.cache.bytes_used
            if cluster_node.result_cache is not None:
                result_bytes += cluster_node.result_cache.store.bytes_used
        return {"node": node_bytes, "result": result_bytes}


def build_cluster(
    num_nodes: int,
    profile: NetworkProfile = LAN_GIGABIT,
    relations: Sequence[RelationData] = (),
    replication_factor: int = 3,
    page_capacity: int = 2048,
    cache_config: CacheConfig | None = None,
) -> Cluster:
    """Create a cluster and publish ``relations`` as epoch 1 in one call."""
    cluster = Cluster(
        num_nodes,
        profile=profile,
        replication_factor=replication_factor,
        page_capacity=page_capacity,
        cache_config=cache_config,
    )
    if relations:
        cluster.publish_relations(relations)
    return cluster
