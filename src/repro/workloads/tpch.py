"""A scaled-down TPC-H workload generator and the queries used in the paper.

Section VI-A uses the standard TPC-H benchmark "to add diversity and scale":
the 8 TPC-H tables are generated at several scale factors, partitioned on
their (first) key attribute — with the tiny Nation and Region tables
replicated everywhere — and queries 1, 3, 5, 6 and 10 (the single-block
queries the optimizer handles) are measured to completion.

``dbgen`` is not available offline, so this module generates synthetic data
with the same schema, key relationships, cardinality ratios and value
distributions that the queries depend on (order/lineitem fan-out, date ranges,
region→nation→customer/supplier hierarchy, numeric measures).  Row counts are
``base cardinality × scale factor × scaling``; ``scaling`` defaults to 1/2000
of real TPC-H so that simulated runs at scale factors 0.25–10 stay laptop
sized while preserving the *ratios* between scale factors that the paper's
figures vary.

Dates are encoded as integers ``YYYYMMDD`` so date predicates remain simple
comparisons.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..common.types import RelationData, Schema
from ..query.expressions import AggregateSpec, Avg, Count, Sum, and_, col, lit
from ..query.logical import (
    LogicalAggregate,
    LogicalJoin,
    LogicalQuery,
    LogicalScan,
    LogicalSelect,
)

#: Queries from the paper's evaluation (single-SQL-block subset of TPC-H).
QUERIES = ("Q1", "Q3", "Q5", "Q6", "Q10")

#: Fraction of the official TPC-H cardinalities generated per unit scale
#: factor.  The paper runs SF 0.25–10 on real hardware; the simulator runs the
#: same scale factors at 1/2000 of the row counts.
DEFAULT_SCALING = 1.0 / 2000.0

#: Official rows-per-scale-factor cardinalities of the TPC-H tables.
BASE_CARDINALITIES = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1), ("EGYPT", 4),
    ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3), ("INDIA", 2), ("INDONESIA", 2),
    ("IRAN", 4), ("IRAQ", 4), ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0),
    ("MOROCCO", 0), ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
]
RETURN_FLAGS = ["R", "A", "N"]
LINE_STATUSES = ["O", "F"]
ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
SHIP_MODES = ["AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"]


# ---------------------------------------------------------------------------
# Schemas (attribute names carry the usual TPC-H prefixes, which keeps them
# globally unique as the single-block planner requires).
# ---------------------------------------------------------------------------

REGION = Schema("region", ["r_regionkey", "r_name", "r_comment"], key=["r_regionkey"])
NATION = Schema(
    "nation", ["n_nationkey", "n_name", "n_regionkey", "n_comment"], key=["n_nationkey"]
)
SUPPLIER = Schema(
    "supplier",
    ["s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone", "s_acctbal", "s_comment"],
    key=["s_suppkey"],
)
CUSTOMER = Schema(
    "customer",
    ["c_custkey", "c_name", "c_address", "c_nationkey", "c_phone", "c_acctbal",
     "c_mktsegment", "c_comment"],
    key=["c_custkey"],
)
PART = Schema(
    "part",
    ["p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size", "p_container",
     "p_retailprice", "p_comment"],
    key=["p_partkey"],
)
PARTSUPP = Schema(
    "partsupp",
    ["ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost", "ps_comment"],
    key=["ps_partkey", "ps_suppkey"],
    partition_key=["ps_partkey"],
)
ORDERS = Schema(
    "orders",
    ["o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice", "o_orderdate",
     "o_orderpriority", "o_clerk", "o_shippriority", "o_comment"],
    key=["o_orderkey"],
)
LINEITEM = Schema(
    "lineitem",
    ["l_orderkey", "l_linenumber", "l_partkey", "l_suppkey", "l_quantity",
     "l_extendedprice", "l_discount", "l_tax", "l_returnflag", "l_linestatus",
     "l_shipdate", "l_commitdate", "l_receiptdate", "l_shipmode", "l_comment"],
    key=["l_orderkey", "l_linenumber"],
    partition_key=["l_orderkey"],
)

SCHEMAS = {
    schema.name: schema
    for schema in (REGION, NATION, SUPPLIER, CUSTOMER, PART, PARTSUPP, ORDERS, LINEITEM)
}

#: Tables small enough that the paper replicates them at every node.
REPLICATED_TABLES = ("region", "nation")


@dataclass
class TpchInstance:
    """A generated TPC-H database at one scale factor."""

    scale_factor: float
    scaling: float
    relations: dict[str, RelationData] = field(default_factory=dict)

    def relation_list(self) -> list[RelationData]:
        return list(self.relations.values())

    def total_tuples(self) -> int:
        return sum(len(data) for data in self.relations.values())

    def row_count(self, table: str) -> int:
        return len(self.relations[table])


def _rows_for(table: str, scale_factor: float, scaling: float) -> int:
    base = BASE_CARDINALITIES[table]
    if table in ("region", "nation"):
        return base  # fixed-size tables, never scaled
    return max(5, int(base * scale_factor * scaling))


def _date(rng: random.Random, start_year: int = 1992, end_year: int = 1998) -> int:
    year = rng.randint(start_year, end_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return year * 10_000 + month * 100 + day


def generate(scale_factor: float, seed: int = 0, scaling: float = DEFAULT_SCALING) -> TpchInstance:
    """Generate all eight TPC-H tables at ``scale_factor``."""
    rng = random.Random(seed)
    instance = TpchInstance(scale_factor=scale_factor, scaling=scaling)

    region = RelationData(REGION)
    for key, name in enumerate(REGIONS):
        region.add(key, name, f"region comment {key}")
    instance.relations["region"] = region

    nation = RelationData(NATION)
    for key, (name, regionkey) in enumerate(NATIONS):
        nation.add(key, name, regionkey, f"nation comment {key}")
    instance.relations["nation"] = nation

    num_suppliers = _rows_for("supplier", scale_factor, scaling)
    supplier = RelationData(SUPPLIER)
    for key in range(num_suppliers):
        supplier.add(
            key,
            f"Supplier#{key:09d}",
            f"address-{rng.randint(0, 10_000)}",
            rng.randrange(len(NATIONS)),
            f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
            round(rng.uniform(-999.99, 9999.99), 2),
            "supplier comment",
        )
    instance.relations["supplier"] = supplier

    num_customers = _rows_for("customer", scale_factor, scaling)
    customer = RelationData(CUSTOMER)
    for key in range(num_customers):
        customer.add(
            key,
            f"Customer#{key:09d}",
            f"address-{rng.randint(0, 10_000)}",
            rng.randrange(len(NATIONS)),
            f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
            round(rng.uniform(-999.99, 9999.99), 2),
            rng.choice(SEGMENTS),
            "customer comment",
        )
    instance.relations["customer"] = customer

    num_parts = _rows_for("part", scale_factor, scaling)
    part = RelationData(PART)
    for key in range(num_parts):
        part.add(
            key,
            f"part name {key}",
            f"Manufacturer#{key % 5 + 1}",
            f"Brand#{key % 25 + 1}",
            rng.choice(["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]),
            rng.randint(1, 50),
            rng.choice(["SM CASE", "LG BOX", "MED BAG", "JUMBO PKG", "WRAP CAN"]),
            round(900 + (key % 1000) * 0.1, 2),
            "part comment",
        )
    instance.relations["part"] = part

    num_partsupp = _rows_for("partsupp", scale_factor, scaling)
    partsupp = RelationData(PARTSUPP)
    for index in range(num_partsupp):
        partsupp.add(
            index % max(1, num_parts),
            (index * 7) % max(1, num_suppliers),
            rng.randint(1, 9999),
            round(rng.uniform(1.0, 1000.0), 2),
            "partsupp comment",
        )
    instance.relations["partsupp"] = partsupp

    num_orders = _rows_for("orders", scale_factor, scaling)
    orders = RelationData(ORDERS)
    order_dates: list[int] = []
    for key in range(num_orders):
        orderdate = _date(rng, 1992, 1998)
        order_dates.append(orderdate)
        orders.add(
            key,
            rng.randrange(max(1, num_customers)),
            rng.choice(["O", "F", "P"]),
            round(rng.uniform(800.0, 500_000.0), 2),
            orderdate,
            rng.choice(ORDER_PRIORITIES),
            f"Clerk#{rng.randint(1, 1000):09d}",
            0,
            "order comment",
        )
    instance.relations["orders"] = orders

    num_lineitems = _rows_for("lineitem", scale_factor, scaling)
    lineitem = RelationData(LINEITEM)
    lines_per_order = max(1, num_lineitems // max(1, num_orders))
    line_count = 0
    for orderkey in range(num_orders):
        for linenumber in range(1, lines_per_order + rng.randint(0, 3)):
            if line_count >= num_lineitems:
                break
            shipdate = min(19981201, order_dates[orderkey] + rng.randint(1, 120))
            quantity = rng.randint(1, 50)
            extendedprice = round(quantity * rng.uniform(900.0, 2000.0), 2)
            lineitem.add(
                orderkey,
                linenumber,
                rng.randrange(max(1, num_parts)),
                rng.randrange(max(1, num_suppliers)),
                quantity,
                extendedprice,
                round(rng.uniform(0.0, 0.1), 2),
                round(rng.uniform(0.0, 0.08), 2),
                rng.choice(RETURN_FLAGS),
                rng.choice(LINE_STATUSES),
                shipdate,
                shipdate + rng.randint(0, 30),
                shipdate + rng.randint(0, 30),
                rng.choice(SHIP_MODES),
                "lineitem comment",
            )
            line_count += 1
        if line_count >= num_lineitems:
            break
    instance.relations["lineitem"] = lineitem
    return instance


# ---------------------------------------------------------------------------
# The paper's queries.  Each builder returns a LogicalQuery; the optimizer
# turns it into a distributed physical plan.
# ---------------------------------------------------------------------------


def query_1() -> LogicalQuery:
    """Q1: pricing summary report — aggregation over lineitem, re-aggregated
    at the coordinator (small group count: returnflag × linestatus)."""
    scan = LogicalScan(LINEITEM)
    filtered = LogicalSelect(scan, col("l_shipdate").le(19980902))
    aggregate = LogicalAggregate(
        filtered,
        group_by=["l_returnflag", "l_linestatus"],
        aggregates=[
            AggregateSpec("sum_qty", Sum(), col("l_quantity")),
            AggregateSpec("sum_base_price", Sum(), col("l_extendedprice")),
            AggregateSpec(
                "sum_disc_price", Sum(),
                col("l_extendedprice") * (lit(1) - col("l_discount")),
            ),
            AggregateSpec(
                "sum_charge", Sum(),
                col("l_extendedprice") * (lit(1) - col("l_discount")) * (lit(1) + col("l_tax")),
            ),
            AggregateSpec("avg_qty", Avg(), col("l_quantity")),
            AggregateSpec("avg_price", Avg(), col("l_extendedprice")),
            AggregateSpec("avg_disc", Avg(), col("l_discount")),
            AggregateSpec("count_order", Count(), col("l_orderkey")),
        ],
    )
    return LogicalQuery(aggregate, order_by=[("l_returnflag", True), ("l_linestatus", True)], name="Q1")


def query_3(segment: str = "BUILDING", date: int = 19950315) -> LogicalQuery:
    """Q3: shipping priority — customer ⋈ orders ⋈ lineitem, grouped by order."""
    customer = LogicalSelect(LogicalScan(CUSTOMER), col("c_mktsegment").eq(segment))
    orders = LogicalSelect(LogicalScan(ORDERS), col("o_orderdate").lt(date))
    lineitem = LogicalSelect(LogicalScan(LINEITEM), col("l_shipdate").gt(date))
    join_co = LogicalJoin(customer, orders, [("c_custkey", "o_custkey")])
    join_all = LogicalJoin(join_co, lineitem, [("o_orderkey", "l_orderkey")])
    aggregate = LogicalAggregate(
        join_all,
        group_by=["l_orderkey", "o_orderdate", "o_shippriority"],
        aggregates=[
            AggregateSpec(
                "revenue", Sum(), col("l_extendedprice") * (lit(1) - col("l_discount"))
            )
        ],
    )
    return LogicalQuery(aggregate, order_by=[("revenue", False)], limit=10, name="Q3")


def query_5(region: str = "ASIA", date_low: int = 19940101, date_high: int = 19950101) -> LogicalQuery:
    """Q5: local supplier volume — six-way join grouped by nation name."""
    customer = LogicalScan(CUSTOMER)
    orders = LogicalSelect(
        LogicalScan(ORDERS),
        and_(col("o_orderdate").ge(date_low), col("o_orderdate").lt(date_high)),
    )
    lineitem = LogicalScan(LINEITEM)
    supplier = LogicalScan(SUPPLIER)
    nation = LogicalScan(NATION)
    region_scan = LogicalSelect(LogicalScan(REGION), col("r_name").eq(region))
    join = LogicalJoin(customer, orders, [("c_custkey", "o_custkey")])
    join = LogicalJoin(join, lineitem, [("o_orderkey", "l_orderkey")])
    join = LogicalJoin(join, supplier, [("l_suppkey", "s_suppkey")])
    join = LogicalJoin(join, nation, [("s_nationkey", "n_nationkey")])
    join = LogicalJoin(join, region_scan, [("n_regionkey", "r_regionkey")])
    filtered = LogicalSelect(join, col("c_nationkey").eq(col("s_nationkey")))
    aggregate = LogicalAggregate(
        filtered,
        group_by=["n_name"],
        aggregates=[
            AggregateSpec(
                "revenue", Sum(), col("l_extendedprice") * (lit(1) - col("l_discount"))
            )
        ],
    )
    return LogicalQuery(aggregate, order_by=[("revenue", False)], name="Q5")


def query_6(date_low: int = 19940101, date_high: int = 19950101) -> LogicalQuery:
    """Q6: forecasting revenue change — scalar aggregation at the coordinator."""
    scan = LogicalScan(LINEITEM)
    predicate = and_(
        col("l_shipdate").ge(date_low),
        col("l_shipdate").lt(date_high),
        col("l_discount").ge(0.02),
        col("l_discount").le(0.08),
        col("l_quantity").lt(24),
    )
    aggregate = LogicalAggregate(
        LogicalSelect(scan, predicate),
        group_by=[],
        aggregates=[AggregateSpec("revenue", Sum(), col("l_extendedprice") * col("l_discount"))],
    )
    return LogicalQuery(aggregate, name="Q6")


def query_10(date_low: int = 19931001, date_high: int = 19940101) -> LogicalQuery:
    """Q10: returned item reporting — four-way join followed by aggregation."""
    customer = LogicalScan(CUSTOMER)
    orders = LogicalSelect(
        LogicalScan(ORDERS),
        and_(col("o_orderdate").ge(date_low), col("o_orderdate").lt(date_high)),
    )
    lineitem = LogicalSelect(LogicalScan(LINEITEM), col("l_returnflag").eq("R"))
    nation = LogicalScan(NATION)
    join = LogicalJoin(customer, orders, [("c_custkey", "o_custkey")])
    join = LogicalJoin(join, lineitem, [("o_orderkey", "l_orderkey")])
    join = LogicalJoin(join, nation, [("c_nationkey", "n_nationkey")])
    aggregate = LogicalAggregate(
        join,
        group_by=["c_custkey", "c_name", "c_acctbal", "c_phone", "n_name"],
        aggregates=[
            AggregateSpec(
                "revenue", Sum(), col("l_extendedprice") * (lit(1) - col("l_discount"))
            )
        ],
    )
    return LogicalQuery(aggregate, order_by=[("revenue", False)], limit=20, name="Q10")


QUERY_BUILDERS = {
    "Q1": query_1,
    "Q3": query_3,
    "Q5": query_5,
    "Q6": query_6,
    "Q10": query_10,
}


def query(name: str) -> LogicalQuery:
    """Build one of the paper's TPC-H queries by name (``Q1``, ``Q3``, ...)."""
    try:
        return QUERY_BUILDERS[name.upper()]()
    except KeyError:
        raise ValueError(f"unknown TPC-H query {name!r}; choose from {QUERIES}") from None
