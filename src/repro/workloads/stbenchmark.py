"""STBenchmark-style schema-mapping workload (Section VI-A).

The paper evaluates data-exchange-style queries using STBenchmark [19]: wide
relations whose attributes are 25-character variable-length strings, generated
by the ToXGene-based instance generator, and a representative subset of five
mapping scenarios:

* **Copy** — retrieve an entire 7-attribute relation;
* **Select** — retrieve the tuples of a 6-attribute relation satisfying a
  simple integer inequality predicate;
* **Join** — combine a 7-, a 5- and a 9-attribute relation by joining them on
  two attributes;
* **Concatenate** — retrieve a 6-attribute relation, concatenate three of its
  attributes and return the result with the remaining three;
* **Correspondence** — retrieve a 7-attribute relation and use a value
  correspondence table to attach an integer-valued ID based on two of the
  input attributes (the paper replaces STBenchmark's Skolem function with such
  a table, as would be done in practice).

The original generator is not redistributable, so this module produces
synthetic instances with the same *shape*: arities, 25-character strings, join
fan-outs and key structure.  Every scenario returns both the relations to
publish and the :class:`~repro.query.logical.LogicalQuery` that implements the
mapping, so benchmarks can run them through the distributed engine unchanged.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field

from ..common.types import RelationData, Schema
from ..query.expressions import col, concat
from ..query.logical import (
    LogicalJoin,
    LogicalProject,
    LogicalQuery,
    LogicalScan,
    LogicalSelect,
)

#: The scenarios reproduced from the paper, in presentation order.
SCENARIOS = ("copy", "select", "join", "concatenate", "correspondence")

#: Length of the variable-length string attributes ("25-character variable
#: length strings" in the paper's description of the STBenchmark tables).
STRING_LENGTH = 25

_ALPHABET = string.ascii_lowercase + string.digits


@dataclass
class ScenarioInstance:
    """A generated scenario: its relations plus the mapping query."""

    name: str
    relations: dict[str, RelationData]
    query: LogicalQuery
    parameters: dict[str, object] = field(default_factory=dict)

    def relation_list(self) -> list[RelationData]:
        return list(self.relations.values())

    def total_tuples(self) -> int:
        return sum(len(data) for data in self.relations.values())


class _StringSource:
    """Deterministic generator of STBenchmark-style string values."""

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def string(self, length: int = STRING_LENGTH) -> str:
        # Variable length around the nominal size, like ToXGene's output.
        actual = max(3, length - self._rng.randint(0, 6))
        return "".join(self._rng.choice(_ALPHABET) for _ in range(actual))

    def integer(self, bound: int) -> int:
        return self._rng.randint(0, bound)

    def choice(self, values):
        return self._rng.choice(values)


def _wide_schema(name: str, prefix: str, arity: int, integer_attrs: tuple[int, ...] = ()) -> Schema:
    attributes = [f"{prefix}_a{i}" for i in range(arity)]
    return Schema(name, attributes, key=[attributes[0]])


def _fill(data: RelationData, source: _StringSource, rows: int,
          integer_columns: dict[int, int] | None = None) -> None:
    integer_columns = integer_columns or {}
    arity = data.schema.arity
    for index in range(rows):
        values = []
        for column in range(arity):
            if column == 0:
                values.append(f"{data.schema.name.lower()}-{index:09d}")
            elif column in integer_columns:
                values.append(source.integer(integer_columns[column]))
            else:
                values.append(source.string())
        data.add(*values)


def generate(scenario: str, tuples_per_relation: int, seed: int = 0) -> ScenarioInstance:
    """Generate one STBenchmark scenario instance.

    ``tuples_per_relation`` plays the role of the paper's 100 K – 1.6 M
    tuples/relation knob (Figures 7–9 and 13, 15); benchmarks typically run a
    scaled-down value and report the scale alongside the results.
    """
    scenario = scenario.lower()
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown STBenchmark scenario {scenario!r}; choose from {SCENARIOS}")
    source = _StringSource(seed + hash(scenario) % 1000)
    builder = {
        "copy": _generate_copy,
        "select": _generate_select,
        "join": _generate_join,
        "concatenate": _generate_concatenate,
        "correspondence": _generate_correspondence,
    }[scenario]
    return builder(tuples_per_relation, source)


def generate_all(tuples_per_relation: int, seed: int = 0) -> dict[str, ScenarioInstance]:
    """All five scenarios with a shared size parameter."""
    return {name: generate(name, tuples_per_relation, seed) for name in SCENARIOS}


# ---------------------------------------------------------------------------
# Individual scenarios
# ---------------------------------------------------------------------------


def _generate_copy(rows: int, source: _StringSource) -> ScenarioInstance:
    schema = _wide_schema("CopySource", "cp", 7)
    data = RelationData(schema)
    _fill(data, source, rows)
    query = LogicalQuery(LogicalScan(schema), name="stb_copy")
    return ScenarioInstance("copy", {schema.name: data}, query, {"rows": rows})


def _generate_select(rows: int, source: _StringSource) -> ScenarioInstance:
    schema = Schema(
        "SelectSource",
        ["se_a0", "se_a1", "se_a2", "se_value", "se_a4", "se_a5"],
        key=["se_a0"],
    )
    data = RelationData(schema)
    _fill(data, source, rows, integer_columns={3: 1000})
    # The paper's Select scenario keeps tuples satisfying a simple integer
    # inequality; a threshold of 500 selects roughly half the input.
    query = LogicalQuery(
        LogicalSelect(LogicalScan(schema), col("se_value").lt(500)),
        name="stb_select",
    )
    return ScenarioInstance("select", {schema.name: data}, query, {"rows": rows, "threshold": 500})


def _generate_join(rows: int, source: _StringSource) -> ScenarioInstance:
    left = _wide_schema("JoinLeft", "jl", 7)
    middle = _wide_schema("JoinMiddle", "jm", 5)
    right = _wide_schema("JoinRight", "jr", 9)
    left_data = RelationData(left)
    middle_data = RelationData(middle)
    right_data = RelationData(right)
    _fill(left_data, source, rows)
    _fill(middle_data, source, rows)
    _fill(right_data, source, rows)
    # Rewrite the join columns so the three relations actually join: the
    # middle relation references left keys, the right references middle keys.
    left_keys = [row[0] for row in left_data.rows]
    middle_keys = [row[0] for row in middle_data.rows]
    middle_data.rows = [
        (row[0], left_keys[index % len(left_keys)], row[2], row[3], row[4])
        for index, row in enumerate(middle_data.rows)
    ]
    right_data.rows = [
        (row[0], middle_keys[index % len(middle_keys)], *row[2:])
        for index, row in enumerate(right_data.rows)
    ]
    join_lm = LogicalJoin(LogicalScan(left), LogicalScan(middle), [("jl_a0", "jm_a1")])
    join_all = LogicalJoin(join_lm, LogicalScan(right), [("jm_a0", "jr_a1")])
    query = LogicalQuery(join_all, name="stb_join")
    return ScenarioInstance(
        "join",
        {left.name: left_data, middle.name: middle_data, right.name: right_data},
        query,
        {"rows": rows},
    )


def _generate_concatenate(rows: int, source: _StringSource) -> ScenarioInstance:
    schema = _wide_schema("ConcatSource", "cc", 6)
    data = RelationData(schema)
    _fill(data, source, rows)
    query = LogicalQuery(
        LogicalProject(
            LogicalScan(schema),
            [
                ("cc_combined", concat(col("cc_a1"), col("cc_a2"), col("cc_a3"))),
                ("cc_a0", col("cc_a0")),
                ("cc_a4", col("cc_a4")),
                ("cc_a5", col("cc_a5")),
            ],
        ),
        name="stb_concatenate",
    )
    return ScenarioInstance("concatenate", {schema.name: data}, query, {"rows": rows})


def _generate_correspondence(rows: int, source: _StringSource) -> ScenarioInstance:
    schema = _wide_schema("CorrSource", "co", 7)
    data = RelationData(schema)
    _fill(data, source, rows)
    # The value-correspondence table maps the pair (a1, a2) to an integer ID,
    # standing in for STBenchmark's Skolem function.
    corr_schema = Schema(
        "Correspondence",
        ["corr_a1", "corr_a2", "corr_id"],
        key=["corr_a1", "corr_a2"],
        partition_key=["corr_a1"],
    )
    corr = RelationData(corr_schema)
    seen = set()
    next_id = 1
    for row in data.rows:
        pair = (row[1], row[2])
        if pair not in seen:
            seen.add(pair)
            corr.add(row[1], row[2], next_id)
            next_id += 1
    join = LogicalJoin(
        LogicalScan(schema),
        LogicalScan(corr_schema),
        [("co_a1", "corr_a1"), ("co_a2", "corr_a2")],
    )
    query = LogicalQuery(
        LogicalProject(
            join,
            [
                ("co_a0", col("co_a0")),
                ("corr_id", col("corr_id")),
                ("co_a3", col("co_a3")),
                ("co_a4", col("co_a4")),
                ("co_a5", col("co_a5")),
                ("co_a6", col("co_a6")),
            ],
        ),
        name="stb_correspondence",
    )
    return ScenarioInstance(
        "correspondence",
        {schema.name: data, corr_schema.name: corr},
        query,
        {"rows": rows, "correspondence_entries": len(corr)},
    )
