"""Workload generators: STBenchmark mapping scenarios and scaled-down TPC-H."""

from . import stbenchmark, tpch
from .stbenchmark import SCENARIOS, ScenarioInstance, generate_all
from .tpch import QUERIES, TpchInstance

__all__ = [
    "QUERIES",
    "SCENARIOS",
    "ScenarioInstance",
    "TpchInstance",
    "generate_all",
    "stbenchmark",
    "tpch",
]
