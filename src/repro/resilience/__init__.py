"""Gray-failure resilience: adaptive timeouts, hedging, breakers, shedding.

The paper's failure model (Section V-C) includes "hung or slow" peers, but
binary failure detection — the dropped-connection signal the membership
layer reacts to — never fires for a node that is merely 10x slow.  This
package is the tail-tolerance layer that closes the gap:

* :mod:`.latency` — per-peer RPC latency estimators (EWMA + a small
  deterministic quantile window) feeding adaptive timeouts and hedge delays;
* :mod:`.suspicion` — phi-accrual-style suspicion from heartbeat arrivals,
  combined with a cross-peer latency-ratio test that catches *slow* (not
  just silent) peers;
* :mod:`.breaker` — per-pair circuit breakers and a per-node retry budget,
  so hedges and retries can never storm a sick node;
* :mod:`.service` — the per-node :class:`NodeResilience` facade wired into
  the RPC endpoint, exposing health-ranked replica selection and hedged
  failover calls to the storage and query layers.

Everything is opt-in (``Cluster(resilience_config=...)``) and fully
deterministic: no wall clock, no unseeded randomness — heartbeat stagger and
all timing derive from the simulated clock and stable per-address CRCs.
"""

from .breaker import BREAKER_STATES, CircuitBreaker, RetryBudget
from .config import ResilienceConfig
from .latency import LatencyEstimator
from .service import NodeResilience
from .stats import ResilienceStats
from .suspicion import PeerHealth

__all__ = [
    "BREAKER_STATES",
    "CircuitBreaker",
    "LatencyEstimator",
    "NodeResilience",
    "PeerHealth",
    "ResilienceConfig",
    "ResilienceStats",
    "RetryBudget",
]
