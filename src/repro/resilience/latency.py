"""Per-peer RPC latency estimation: EWMA plus a deterministic quantile window.

A full streaming quantile sketch is overkill at this scale: the windows the
hedging policy cares about are short (the last few dozen replies), and the
simulator needs bit-for-bit reproducibility more than it needs sublinear
update cost.  So the estimator keeps a fixed-size ring of recent samples and
sorts a copy on demand — O(window log window) per quantile read, zero
approximation error, and identical output on every replay.
"""

from __future__ import annotations


class LatencyEstimator:
    """Smoothed mean/variance and windowed quantiles of one peer's reply times."""

    def __init__(self, alpha: float = 0.2, window: int = 64) -> None:
        self.alpha = alpha
        self.window = window
        self.count = 0
        self.mean = 0.0
        #: EWMA of the squared deviation (a smoothed variance estimate).
        self.var = 0.0
        self._ring: list[float] = []
        self._cursor = 0

    def observe(self, sample: float) -> None:
        self.count += 1
        if self.count == 1:
            self.mean = sample
            self.var = 0.0
        else:
            delta = sample - self.mean
            self.mean += self.alpha * delta
            self.var = (1 - self.alpha) * (self.var + self.alpha * delta * delta)
        if len(self._ring) < self.window:
            self._ring.append(sample)
        else:
            self._ring[self._cursor] = sample
            self._cursor = (self._cursor + 1) % self.window

    def quantile(self, q: float) -> float | None:
        """The ``q``-quantile over the sample window (None before any sample)."""
        if not self._ring:
            return None
        ordered = sorted(self._ring)
        index = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[index]

    @property
    def std(self) -> float:
        return self.var ** 0.5

    def reset(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.var = 0.0
        self._ring.clear()
        self._cursor = 0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "p95": self.quantile(0.95),
        }
