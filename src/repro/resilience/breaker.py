"""Circuit breakers and retry budgets: the storm arresters.

Hedging and aggressive failover have a well-known failure mode: when a node
gets sick, every client's retries concentrate on it (or on its healthy
replicas) and the cure becomes the overload.  Two standard mechanisms bound
the blast radius:

* a per-pair :class:`CircuitBreaker` stops sending to a peer after a run of
  consecutive failures, letting a single half-open probe through after a
  cooldown;
* a per-node :class:`RetryBudget` (token bucket, as in gRPC's retry design)
  caps *duplicate* attempts — hedges — to a small fraction of primary
  traffic, so even a pathological latency distribution cannot double load.
"""

from __future__ import annotations

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Stable state -> gauge-code mapping for the metrics registry.
BREAKER_STATES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Closed / open / half-open breaker for one (observer, peer) pair."""

    def __init__(self, threshold: int = 5, cooldown: float = 0.05) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self._probing = False
        #: Transition counter (exposed for tests and observability).
        self.opens = 0

    def state(self, now: float) -> str:
        if self.opened_at is None:
            return CLOSED
        if now - self.opened_at >= self.cooldown:
            return HALF_OPEN
        return OPEN

    def allow(self, now: float) -> bool:
        """Whether a request may be sent to the peer right now.

        While open, nothing passes.  Once the cooldown elapsed, exactly one
        probe passes (half-open); its outcome closes or re-opens the breaker.
        """
        state = self.state(now)
        if state == CLOSED:
            return True
        if state == OPEN:
            return False
        if self._probing:
            return False
        self._probing = True
        return True

    def on_success(self, now: float) -> None:
        self.consecutive_failures = 0
        self.opened_at = None
        self._probing = False

    def on_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.opened_at is not None:
            # Half-open probe failed (or a straggling failure landed while
            # open): restart the cooldown from now.
            self.opened_at = now
            self._probing = False
            self.opens += 1
        elif self.consecutive_failures >= self.threshold:
            self.opened_at = now
            self._probing = False
            self.opens += 1

    def reset(self) -> None:
        self.consecutive_failures = 0
        self.opened_at = None
        self._probing = False


class RetryBudget:
    """Token bucket bounding duplicate (hedge) attempts per node.

    Every primary attempt deposits ``ratio`` tokens; every duplicate attempt
    withdraws one.  With ``ratio = 0.1`` a node can hedge at most ~10% of
    its request volume in steady state, plus the configured initial grace.
    """

    def __init__(self, ratio: float = 0.1, cap: float = 10.0, initial: float = 3.0) -> None:
        self.ratio = ratio
        self.cap = cap
        self.initial = min(initial, cap)
        self.tokens = self.initial
        self.deposits = 0
        self.spent = 0
        self.denied = 0

    def on_request(self) -> None:
        self.deposits += 1
        self.tokens = min(self.cap, self.tokens + self.ratio)

    def try_spend(self) -> bool:
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False

    def reset(self) -> None:
        self.tokens = self.initial
        self.deposits = 0
        self.spent = 0
        self.denied = 0

    def to_dict(self) -> dict:
        return {
            "tokens": self.tokens,
            "deposits": self.deposits,
            "spent": self.spent,
            "denied": self.denied,
        }
