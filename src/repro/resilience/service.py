"""Per-node resilience facade: health tracking, hedged failover, heartbeats.

:class:`NodeResilience` hangs off one node's RPC endpoint (as
``node.services["resilience"]``) and observes *every* call the node makes —
reply times feed per-peer latency estimators, failures feed per-pair circuit
breakers — so health knowledge accrues from organic traffic for free.  On
top of that it offers the two mechanisms the read paths opt into:

* :meth:`rank_replicas` — stable health-first ordering of a replica
  candidate list.  When every candidate is healthy the order is unchanged,
  which is what keeps a resilience-enabled run on a healthy cluster
  row-identical to a disabled one.
* :meth:`failover_call` — the hedged sequential-failover engine for
  idempotent read RPCs: adaptive per-attempt timeouts, one budgeted hedge
  fired after the peer's observed p95, first reply wins, losers cancelled,
  definite failures advancing to the next candidate.

Heartbeats are *windowed*, not free-running: the simulator's ``run()``
drains the event queue, so a self-rescheduling timer would keep the virtual
clock alive forever.  :meth:`start_heartbeats` schedules a bounded probe
train over an explicit horizon instead — the scenario and bench drivers
start one over their workload window.
"""

from __future__ import annotations

import zlib
from typing import Callable, Iterable, Mapping, Sequence

from ..net.simnet import SimNode
from ..net.transport import RpcEndpoint, rpc_endpoint
from .breaker import OPEN, BREAKER_STATES, CircuitBreaker, RetryBudget
from .config import ResilienceConfig
from .latency import LatencyEstimator
from .stats import ResilienceStats
from .suspicion import PeerHealth

#: RPC method of the resilience layer's own latency-measuring heartbeat
#: (the transport's ``rpc.ping`` detects silence but does not expose RTTs).
PING_METHOD = "resilience.ping"


class NodeResilience:
    """Resilience state and policies for one simulated node."""

    def __init__(
        self,
        node: SimNode,
        config: ResilienceConfig | None = None,
        peers: Callable[[], Sequence[str]] | None = None,
    ) -> None:
        self.node = node
        self.network = node.network
        self.address = node.address
        self.config = config or ResilienceConfig()
        self.rpc: RpcEndpoint = rpc_endpoint(node)
        self.stats = ResilienceStats()
        self.retry_budget = RetryBudget(
            ratio=self.config.retry_budget_ratio,
            cap=self.config.retry_budget_cap,
            initial=self.config.retry_budget_initial,
        )
        self._peers = peers or (lambda: ())
        self._estimators: dict[str, LatencyEstimator] = {}
        self._health: dict[str, PeerHealth] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        #: Peers currently held by the latency-outlier hysteresis band (see
        #: :meth:`_latency_suspect`).
        self._suspected: set[str] = set()
        #: Horizon (absolute simulated time) up to which heartbeat probes are
        #: scheduled; silence-based suspicion is only meaningful inside it.
        self._heartbeats_until: float | None = None
        self.rpc.reply_observer = self._observe_reply
        self.rpc.failure_observer = self._observe_failure
        self.rpc.register(PING_METHOD, self._on_ping)
        node.services["resilience"] = self

    # -- per-peer state accessors -----------------------------------------------

    def estimator(self, peer: str) -> LatencyEstimator:
        estimator = self._estimators.get(peer)
        if estimator is None:
            estimator = self._estimators[peer] = LatencyEstimator(
                alpha=self.config.ewma_alpha, window=self.config.quantile_window
            )
        return estimator

    def health(self, peer: str) -> PeerHealth:
        health = self._health.get(peer)
        if health is None:
            health = self._health[peer] = PeerHealth(
                alpha=self.config.ewma_alpha,
                expected_interval=self.config.heartbeat_interval,
            )
        return health

    def breaker(self, peer: str) -> CircuitBreaker:
        breaker = self._breakers.get(peer)
        if breaker is None:
            breaker = self._breakers[peer] = CircuitBreaker(
                threshold=self.config.breaker_threshold,
                cooldown=self.config.breaker_cooldown,
            )
        return breaker

    # -- observation (endpoint hooks) --------------------------------------------

    def _observe_reply(self, peer: str, rtt: float) -> None:
        self.estimator(peer).observe(rtt)
        self.health(peer).heartbeat(self.network.now)
        self.breaker(peer).on_success(self.network.now)

    def _observe_failure(self, peer: str, kind: str) -> None:
        if kind == "timeout":
            self.stats.timeouts += 1
        self.breaker(peer).on_failure(self.network.now)

    # -- adaptive policies --------------------------------------------------------

    def call_timeout(self, peer: str) -> float:
        """Adaptive timeout for one RPC to ``peer`` (seconds).

        Normally ``timeout_multiplier`` times the peer's own observed tail
        latency.  A *consistently* slow peer would inflate that bound together
        with its slowness and never get cut off, so once the peer is a latency
        outlier against the fleet (:meth:`_latency_suspect`) the timeout is
        derived from the fleet's median tail instead — the degraded peer is
        given the patience a healthy one would deserve, no more.
        """
        estimator = self._estimators.get(peer)
        if estimator is None or estimator.count == 0:
            return self.config.default_timeout
        quantile = estimator.quantile(self.config.timeout_quantile)
        if self._latency_suspect(peer):
            reference = self._fleet_reference_quantile(exclude=peer)
            if reference is not None:
                quantile = min(quantile, reference)
        timeout = quantile * self.config.timeout_multiplier
        return min(self.config.max_timeout, max(self.config.min_timeout, timeout))

    def _fleet_reference_quantile(self, exclude: str) -> float | None:
        """Median of the other peers' tail-latency estimates (None if < 3)."""
        tails = sorted(
            est.quantile(self.config.timeout_quantile)
            for address, est in self._estimators.items()
            if address != exclude and est.count >= self.config.min_latency_samples
        )
        if len(tails) < 3:
            return None
        return tails[len(tails) // 2]

    def hedge_delay(self, peer: str) -> float:
        """How long to let ``peer``'s attempt run before hedging elsewhere."""
        estimator = self._estimators.get(peer)
        if estimator is None or estimator.count == 0:
            return self.config.default_hedge_delay
        quantile = estimator.quantile(self.config.hedge_quantile)
        return max(self.config.min_hedge_delay, quantile)

    def suspicion(self, peer: str) -> float:
        """Current phi-accrual suspicion level for ``peer``."""
        health = self._health.get(peer)
        if health is None:
            return 0.0
        return health.phi(self.network.now)

    def _latency_suspect(self, peer: str) -> bool:
        """Whether ``peer`` answers, but markedly slower than its siblings.

        Two-threshold hysteresis: suspicion *enters* at
        ``latency_suspect_ratio`` and only *exits* once the ratio falls below
        half of it.  Without the band, a suspected (and therefore avoided)
        peer keeps answering cheap control RPCs quickly, its smoothed latency
        decays toward the enter threshold, and the verdict flaps — sending a
        slice of real traffic back into the gray node on every oscillation.
        """
        estimator = self._estimators.get(peer)
        if estimator is None or estimator.count < self.config.min_latency_samples:
            return False
        means = sorted(
            est.mean
            for est in self._estimators.values()
            if est.count >= self.config.min_latency_samples
        )
        if len(means) < 3:
            return False  # too few reference peers to call one an outlier
        median = means[len(means) // 2]
        if median <= 0:
            return False
        ratio = estimator.mean / median
        if peer in self._suspected:
            if ratio < max(1.0, self.config.latency_suspect_ratio / 2):
                self._suspected.discard(peer)
                return False
            return True
        if ratio >= self.config.latency_suspect_ratio:
            self._suspected.add(peer)
            return True
        return False

    def healthy(self, peer: str, now: float | None = None) -> bool:
        """Health verdict used for replica ranking (never blocks a last resort)."""
        now = self.network.now if now is None else now
        breaker = self._breakers.get(peer)
        if breaker is not None and breaker.state(now) == OPEN:
            return False
        if self._heartbeats_until is not None and now <= (
            self._heartbeats_until + 2 * self.config.heartbeat_interval
        ):
            # Silence is only evidence while we are actively probing.
            health = self._health.get(peer)
            if (
                health is not None
                and health.phi(now) >= self.config.suspicion_threshold
            ):
                return False
        return not self._latency_suspect(peer)

    def rank_replicas(self, targets: Iterable[str]) -> list[str]:
        """Stable health-first ordering: healthy candidates keep their order.

        With every candidate healthy the result equals the input — replica
        preference only changes when there is evidence against a peer, which
        is what keeps healthy-cluster runs identical to resilience-off runs.
        """
        now = self.network.now
        healthy: list[str] = []
        suspect: list[str] = []
        for target in targets:
            if target == self.address or self.healthy(target, now):
                healthy.append(target)
            else:
                suspect.append(target)
        return healthy + suspect

    def select_target(self, targets: Sequence[str]) -> str:
        """First healthy candidate (or the first, when all are suspect)."""
        ranked = self.rank_replicas(targets)
        return ranked[0]

    # -- hedged sequential failover ----------------------------------------------

    def failover_call(
        self,
        targets: Sequence[str],
        method: str,
        payload: Mapping[str, object],
        size: int,
        on_reply: Callable[[str, Mapping[str, object]], None],
        on_exhausted: Callable[[str | None], None] | None = None,
        hedge: bool | None = None,
    ) -> None:
        """Call ``method`` against ``targets`` in order until one replies.

        Strictly for idempotent reads: attempts may overlap (one hedge) and
        time out adaptively, so a non-idempotent handler could observe
        duplicate executions.  ``on_reply(src, body)`` fires exactly once,
        for the first reply; ``on_exhausted(last_peer)`` fires instead when
        every candidate definitively failed.
        """
        ordered = list(dict.fromkeys(targets))
        if not ordered:
            if on_exhausted is not None:
                on_exhausted(None)
            return
        allow_hedge = self.config.hedging if hedge is None else hedge
        _FailoverCall(
            self, ordered, method, payload, size, on_reply, on_exhausted, allow_hedge
        ).start()

    def chase_call(
        self,
        targets: Sequence[str],
        method: str,
        payload: Mapping[str, object],
        size: int,
        accept: Callable[[str, Mapping[str, object]], bool],
        on_exhausted: Callable[[], None],
        hedge: bool | None = None,
    ) -> None:
        """Hedged failover for searches whose replies may be application misses.

        The storage layer's exhaustive-search pattern ("a replica answering
        'not here' says nothing about the others") needs more than first-
        reply-wins: ``accept(src, body)`` returns True to consume the reply
        and stop, or False to send the chase on to the remaining candidates.
        Candidates are re-ranked by health at each step; every step removes
        the replier from the pool, so the chase always terminates.
        """

        def chase(pool: list[str]) -> None:
            if not pool:
                on_exhausted()
                return

            def on_reply(src: str, body: Mapping[str, object]) -> None:
                if accept(src, body):
                    return
                chase([target for target in pool if target != src])

            self.failover_call(
                self.rank_replicas(pool),
                method,
                payload,
                size,
                on_reply,
                on_exhausted=lambda _addr: on_exhausted(),
                hedge=hedge,
            )

        chase(list(dict.fromkeys(targets)))

    # -- heartbeats ---------------------------------------------------------------

    def start_heartbeats(self, duration: float) -> int:
        """Schedule heartbeat probe rounds over the next ``duration`` seconds.

        Returns the number of rounds scheduled.  The first round is staggered
        by a stable per-address fraction of the interval, so a cluster-wide
        start does not synchronise every node's probe burst onto the same
        instant (the same decorrelation trick as the retransmit jitter).
        """
        interval = self.config.heartbeat_interval
        stagger = interval * ((zlib.crc32(self.address.encode()) % 997) / 997.0)
        incarnation = self.node.incarnation
        rounds = 0
        at = stagger
        while at < duration:
            self.network.schedule(at, lambda inc=incarnation: self._probe_round(inc))
            rounds += 1
            at += interval
        horizon = self.network.now + duration
        if self._heartbeats_until is None or horizon > self._heartbeats_until:
            self._heartbeats_until = horizon
        return rounds

    def _probe_round(self, incarnation: int) -> None:
        if not self.node.alive or self.node.incarnation != incarnation:
            return  # probes scheduled by a previous life of this process
        for peer in self._peers():
            if peer == self.address:
                continue
            self.stats.heartbeats_sent += 1
            self.rpc.call(
                peer,
                PING_METHOD,
                {},
                0,
                on_reply=lambda body, p=peer: self._on_pong(p),
                timeout=self.call_timeout(peer),
            )

    def _on_pong(self, peer: str) -> None:
        # RTT and arrival bookkeeping already happened in the reply observer.
        self.stats.heartbeats_received += 1

    def _on_ping(self, src, payload, respond) -> None:
        # Representative work (see ResilienceConfig.probe_cpu_cost): the pong
        # is held until the node's CPU queue — including this probe's own
        # charge — would have drained, so a CPU-starved peer answers probes as
        # slowly as it serves data.  A bare pong (cost 0) would be answered at
        # full speed by exactly the gray peers this layer exists to catch.
        if not self.config.probe_cpu_cost:
            respond({}, 0)
            return
        self.node.charge_cpu(self.config.probe_cpu_cost)
        delay = self.node.cpu_queue_delay
        if delay > 0:
            self.network.schedule(delay, lambda: respond({}, 0))
        else:
            respond({}, 0)

    # -- lifecycle / introspection -------------------------------------------------

    def reset_volatile(self) -> None:
        """Forget learned peer state after a crash-restart (stats survive)."""
        self._estimators.clear()
        self._health.clear()
        self._breakers.clear()
        self._suspected.clear()
        self.retry_budget.reset()
        self._heartbeats_until = None

    def breaker_states(self) -> dict[str, str]:
        now = self.network.now
        return {peer: breaker.state(now) for peer, breaker in sorted(self._breakers.items())}

    def metric_series(self):
        """Registry samples: the stats counters plus per-peer breaker gauges."""
        samples = list(self.stats.metric_series())
        for peer, state in self.breaker_states().items():
            samples.append(("breaker.state", {"peer": peer}, BREAKER_STATES[state]))
        return samples

    def to_dict(self) -> dict:
        return {
            "stats": self.stats.snapshot(),
            "budget": self.retry_budget.to_dict(),
            "breakers": self.breaker_states(),
        }


class _FailoverCall:
    """State machine for one hedged sequential-failover request."""

    def __init__(
        self,
        resilience: NodeResilience,
        targets: list[str],
        method: str,
        payload: Mapping[str, object],
        size: int,
        on_reply: Callable[[str, Mapping[str, object]], None],
        on_exhausted: Callable[[str | None], None] | None,
        allow_hedge: bool,
    ) -> None:
        self.res = resilience
        self.targets = targets
        self.method = method
        self.payload = payload
        self.size = size
        self.on_reply = on_reply
        self.on_exhausted = on_exhausted
        self.allow_hedge = allow_hedge
        self.tried: set[str] = set()
        self.outstanding: dict[int, str] = {}
        self.done = False
        self.hedge_launched = False
        self.hedge_call_id: int | None = None

    def start(self) -> None:
        self.res.stats.calls += 1
        self.res.retry_budget.on_request()
        primary = self.targets[0]
        self._send(primary)
        if self.allow_hedge and len(self.targets) > 1:
            self.res.network.schedule(self.res.hedge_delay(primary), self._maybe_hedge)

    def _send(self, dst: str) -> int:
        self.tried.add(dst)
        cell: list[int] = []
        call_id = self.res.rpc.call(
            dst,
            self.method,
            self.payload,
            self.size,
            on_reply=lambda body: self._on_branch_reply(cell[0], body),
            on_failure=lambda _addr: self._on_branch_failure(cell[0]),
            timeout=self.res.call_timeout(dst),
        )
        cell.append(call_id)
        self.outstanding[call_id] = dst
        return call_id

    def _on_branch_reply(self, call_id: int, body: Mapping[str, object]) -> None:
        dst = self.outstanding.pop(call_id, None)
        if self.done or dst is None:
            return
        self.done = True
        if self.hedge_launched:
            self.res.stats.record_hedge(
                "won" if call_id == self.hedge_call_id else "lost"
            )
        # The race is decided: withdraw interest in the other branches so a
        # straggling duplicate reply cannot re-trigger the continuation.
        for other in list(self.outstanding):
            self.res.rpc.cancel_call(other)
        self.outstanding.clear()
        self.on_reply(dst, body)

    def _on_branch_failure(self, call_id: int) -> None:
        dst = self.outstanding.pop(call_id, None)
        if self.done or dst is None:
            return
        if self.outstanding:
            return  # the other branch is still racing; let it finish
        nxt = self._next_target()
        if nxt is None:
            self.done = True
            if self.on_exhausted is not None:
                self.on_exhausted(dst)
            return
        self.res.stats.retries += 1
        self._send(nxt)

    def _next_target(self) -> str | None:
        """Next untried candidate, preferring ones whose breaker admits us.

        Failover is *fail-open*: when every remaining breaker is open the
        call still goes somewhere (correctness over protection) — the
        breaker's hard veto applies only to optional duplicates (hedges).
        """
        now = self.res.network.now
        fallback = None
        for target in self.targets:
            if target in self.tried:
                continue
            if fallback is None:
                fallback = target
            if self.res.breaker(target).allow(now):
                return target
            self.res.stats.breaker_skips += 1
        return fallback

    def _maybe_hedge(self) -> None:
        if self.done or self.hedge_launched or not self.outstanding:
            return  # answered, already hedged, or failed over in the meantime
        now = self.res.network.now
        candidate = None
        for target in self.targets:
            if target not in self.tried and self.res.breaker(target).state(now) != OPEN:
                candidate = target
                break
        if candidate is None:
            if any(target not in self.tried for target in self.targets):
                self.res.stats.record_hedge("suppressed_breaker")
            return
        if not self.res.retry_budget.try_spend():
            self.res.stats.record_hedge("suppressed_budget")
            return
        if not self.res.breaker(candidate).allow(now):
            self.res.stats.record_hedge("suppressed_breaker")
            return
        self.hedge_launched = True
        self.hedge_call_id = self._send(candidate)
