"""Counters for every decision the resilience layer makes.

The observability satellite requires these to reconcile *exactly* with the
``rpc.hedges{outcome=...}`` / ``rpc.retries`` metrics the cluster registry
reports — so this object is the single source of truth and the registry
samples are derived views over it (same pattern as ``FaultStats``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Hedge outcomes: the duplicate attempt won the race, lost it, or was never
#: sent because the retry budget or the target's breaker said no.
HEDGE_OUTCOMES = ("won", "lost", "suppressed_budget", "suppressed_breaker")


@dataclass
class ResilienceStats:
    """Per-node resilience counters (aggregated cluster-wide by the registry)."""

    #: Primary attempts issued through the hedged-failover helper.
    calls: int = 0
    #: Failover re-attempts after a definite failure (refused / timed out).
    retries: int = 0
    #: Adaptive per-RPC timeouts that fired.
    timeouts: int = 0
    #: Heartbeat probes sent and replies received.
    heartbeats_sent: int = 0
    heartbeats_received: int = 0
    #: Calls skipped because the target's breaker was open.
    breaker_skips: int = 0
    hedges: dict[str, int] = field(
        default_factory=lambda: {outcome: 0 for outcome in HEDGE_OUTCOMES}
    )

    def record_hedge(self, outcome: str) -> None:
        if outcome not in self.hedges:
            raise ValueError(f"unknown hedge outcome {outcome!r}")
        self.hedges[outcome] += 1

    @property
    def hedges_launched(self) -> int:
        return self.hedges["won"] + self.hedges["lost"]

    def merge(self, other: "ResilienceStats") -> None:
        self.calls += other.calls
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.heartbeats_sent += other.heartbeats_sent
        self.heartbeats_received += other.heartbeats_received
        self.breaker_skips += other.breaker_skips
        for outcome, count in other.hedges.items():
            self.hedges[outcome] = self.hedges.get(outcome, 0) + count

    def snapshot(self) -> dict:
        return {
            "calls": self.calls,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_received": self.heartbeats_received,
            "breaker_skips": self.breaker_skips,
            "hedges": dict(self.hedges),
        }

    def to_dict(self) -> dict:
        """Common stats-serialization protocol (see :mod:`repro.obs.metrics`)."""
        return self.snapshot()

    def metric_series(self):
        """Registry samples: ``rpc.hedges{outcome=...}``, ``rpc.retries``, ..."""
        samples = [
            ("rpc.retries", {}, self.retries),
            ("rpc.adaptive_timeouts", {}, self.timeouts),
            ("rpc.breaker_skips", {}, self.breaker_skips),
            ("rpc.heartbeats_sent", {}, self.heartbeats_sent),
            ("rpc.heartbeats_received", {}, self.heartbeats_received),
        ]
        for outcome in sorted(self.hedges):
            samples.append(("rpc.hedges", {"outcome": outcome}, self.hedges[outcome]))
        return samples
