"""Knobs for the gray-failure resilience layer.

Defaults are calibrated for the simulated LAN profiles (sub-millisecond
RTTs, operation windows under a second of virtual time): heartbeats tick
every 20 simulated milliseconds, hedges fire after the observed p95, and
breakers cool off in 50 milliseconds.  All of it is policy, none of it is
randomness — a configured cluster replays byte-for-byte under a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResilienceConfig:
    """Configuration for one cluster's :class:`~.service.NodeResilience` layer."""

    #: Fire a second attempt at another replica for idempotent read RPCs
    #: once the first has been outstanding longer than the peer's hedge
    #: delay.  Turning this off (with everything else unchanged) must not
    #: change any operation's *result* — the row-identity invariant the
    #: chaos harness checks.
    hedging: bool = True
    #: Quantile of the peer's observed latency window used as the hedge
    #: delay (Dean & Barroso's "defer the hedge past the p95").
    hedge_quantile: float = 0.95
    #: Hedge delay floor / fallback before any latency has been observed.
    min_hedge_delay: float = 0.002
    default_hedge_delay: float = 0.005

    #: Adaptive per-RPC timeout = ``quantile(timeout_quantile) *
    #: timeout_multiplier`` clamped to ``[min_timeout, max_timeout]``;
    #: ``default_timeout`` applies before any sample has been observed.
    timeout_quantile: float = 0.99
    timeout_multiplier: float = 3.0
    min_timeout: float = 0.01
    max_timeout: float = 0.5
    default_timeout: float = 0.05

    #: Heartbeat ("resilience.ping") period per peer, and the phi-accrual
    #: suspicion level at which a peer is considered unhealthy.  Phi grows
    #: with the silence since the last heartbeat reply, scaled by the mean
    #: observed arrival interval: phi == 2 is ~4.6 mean intervals of silence.
    heartbeat_interval: float = 0.02
    #: CPU seconds the ping handler charges before answering.  A bare ping is
    #: answered at full speed even by a CPU-starved machine — the defining
    #: blind spot of gray failure — so probes carry a sliver of representative
    #: work, making the measured round-trip reflect the peer's actual ability
    #: to serve requests, not just its liveness.
    probe_cpu_cost: float = 0.0001
    suspicion_threshold: float = 2.0
    #: A peer whose smoothed RPC latency exceeds this multiple of the median
    #: across peers is suspected even while it keeps answering — the *slow*
    #: half of gray failure that arrival-based phi cannot see.
    latency_suspect_ratio: float = 3.0
    #: Samples required before the latency-ratio test may fire (protects
    #: against suspecting a peer off one cold-start outlier).
    min_latency_samples: int = 3

    #: Retry/hedge budget (per node, token bucket): each primary attempt
    #: earns ``retry_budget_ratio`` tokens, each duplicate attempt spends
    #: one, balance capped at ``retry_budget_cap``.  The bucket starts at
    #: ``retry_budget_initial`` so cold-start hedges are possible.
    retry_budget_ratio: float = 0.1
    retry_budget_cap: float = 10.0
    retry_budget_initial: float = 3.0

    #: Circuit breaker (per observing node, per peer): ``breaker_threshold``
    #: consecutive failures open it for ``breaker_cooldown`` simulated
    #: seconds; the first call after cooldown is the half-open probe.
    breaker_threshold: int = 5
    breaker_cooldown: float = 0.05

    #: EWMA smoothing factor for the latency estimators and the size of the
    #: deterministic quantile window (a ring of recent samples).
    ewma_alpha: float = 0.2
    quantile_window: int = 64

    def __post_init__(self) -> None:
        for name in ("hedge_quantile", "timeout_quantile", "ewma_alpha"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be within (0, 1]")
        if self.min_timeout <= 0 or self.max_timeout < self.min_timeout:
            raise ValueError("timeouts must satisfy 0 < min_timeout <= max_timeout")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.probe_cpu_cost < 0:
            raise ValueError("probe_cpu_cost must be non-negative")
        if self.suspicion_threshold <= 0:
            raise ValueError("suspicion_threshold must be positive")
        if self.latency_suspect_ratio < 1.0:
            raise ValueError("latency_suspect_ratio must be >= 1")
        if self.retry_budget_ratio < 0 or self.retry_budget_cap <= 0:
            raise ValueError("retry budget must have non-negative ratio, positive cap")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        if self.breaker_cooldown <= 0:
            raise ValueError("breaker_cooldown must be positive")
        if self.quantile_window < 2:
            raise ValueError("quantile_window must hold at least 2 samples")
