"""Phi-accrual-style suspicion from heartbeat arrivals.

Classic accrual failure detection (Hayashibara et al.) replaces the binary
alive/dead verdict with a continuous suspicion level phi that grows with the
silence since the last heartbeat.  Under the exponential-arrival
approximation, ``phi = log10(e) * silence / mean_interval`` — phi == 1 after
~2.3 mean intervals of silence, phi == 2 after ~4.6, and consumers pick the
threshold that trades detection speed against false suspicion.

Silence-based phi only catches peers that stop answering.  The *slow* half
of gray failure — a peer that answers everything 10x late — is caught by the
latency-ratio test in :class:`~.service.NodeResilience`, which compares the
peer's smoothed RPC latency against the median across peers.
"""

from __future__ import annotations

import math

#: log10(e): converts "multiples of the mean interval" into accrual phi.
_LOG10_E = math.log10(math.e)


class PeerHealth:
    """Heartbeat-arrival accrual state for one observed peer."""

    def __init__(self, alpha: float = 0.2, expected_interval: float = 0.02) -> None:
        self.alpha = alpha
        #: Prior for the arrival interval until real arrivals are observed
        #: (the configured heartbeat period is the obvious choice).
        self.expected_interval = expected_interval
        self.last_arrival: float | None = None
        self.mean_interval: float | None = None
        self.arrivals = 0

    def heartbeat(self, now: float) -> None:
        """Record a heartbeat (or any proof-of-life reply) arriving at ``now``."""
        if self.last_arrival is not None:
            interval = now - self.last_arrival
            if self.mean_interval is None:
                self.mean_interval = interval
            else:
                self.mean_interval += self.alpha * (interval - self.mean_interval)
        self.last_arrival = now
        self.arrivals += 1

    def phi(self, now: float) -> float:
        """Current suspicion level (0 before the first arrival: no evidence)."""
        if self.last_arrival is None:
            return 0.0
        interval = self.mean_interval or self.expected_interval
        if interval <= 0:
            return 0.0
        return _LOG10_E * (now - self.last_arrival) / interval

    def reset(self) -> None:
        self.last_arrival = None
        self.mean_interval = None
        self.arrivals = 0

    def to_dict(self) -> dict:
        return {
            "arrivals": self.arrivals,
            "last_arrival": self.last_arrival,
            "mean_interval": self.mean_interval,
        }
