"""Content-addressable overlay: range allocation, routing, membership,
epoch gossip and replication."""

from .allocation import (
    ALLOCATORS,
    BalancedAllocation,
    PastryAllocation,
    RangeAllocator,
    allocation_imbalance,
    node_positions,
)
from .gossip import EpochGossip
from .membership import MembershipView, membership_of
from .replication import BackgroundReplicator, BloomFilter, ReplicationReport, replica_set
from .routing import RangeMove, RoutingSnapshot, RoutingTable, physical_address

__all__ = [
    "ALLOCATORS",
    "BackgroundReplicator",
    "BalancedAllocation",
    "BloomFilter",
    "EpochGossip",
    "MembershipView",
    "PastryAllocation",
    "RangeAllocator",
    "RangeMove",
    "ReplicationReport",
    "RoutingSnapshot",
    "RoutingTable",
    "allocation_imbalance",
    "membership_of",
    "node_positions",
    "physical_address",
    "replica_set",
]
