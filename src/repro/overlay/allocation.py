"""Key-range allocation strategies (Section III-A, Figure 2).

Classic DHTs place each node at the ring position given by the hash of its
address and let it own the arc between itself and a neighbour.  With only
dozens of nodes this produces highly non-uniform ownership (in the paper's
Figure 2(a), two nodes own three quarters of the ring).  ORCHESTRA therefore
supports a second scheme tailored to its smaller, more stable membership: the
ring is divided into *equal-size* contiguous ranges, one per node, handed out
in the order of the nodes' hash IDs (Figure 2(b)).  The balanced scheme is the
one used in all of the paper's experiments; the Pastry-style scheme is kept
for very large memberships.

Both allocators are pure functions from a set of node addresses to a mapping
``address → KeyRange`` whose ranges exactly partition the ring — a property
the tests verify with hypothesis.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Mapping

from ..common.hashing import KEY_SPACE_SIZE, KeyRange, node_id_for, ring_add, ring_distance


class RangeAllocator(ABC):
    """Strategy interface for assigning key ranges to nodes."""

    @abstractmethod
    def allocate(self, addresses: Iterable[str]) -> dict[str, KeyRange]:
        """Return the range owned by each address.

        The returned ranges must partition the full ring (no gaps, no
        overlaps) whenever at least one address is given.
        """

    def name(self) -> str:
        return type(self).__name__


def node_positions(addresses: Iterable[str]) -> dict[str, int]:
    """Ring position (hashed ID) of each node address."""
    return {address: node_id_for(address) for address in addresses}


class PastryAllocation(RangeAllocator):
    """Pastry-style allocation: a key belongs to the node with nearest ID.

    Every node owns the arc spanning from the midpoint between itself and its
    counter-clockwise neighbour to the midpoint between itself and its
    clockwise neighbour.  This reproduces the skew shown in Figure 2(a): the
    arc sizes follow the gaps between hashed node IDs.
    """

    def allocate(self, addresses: Iterable[str]) -> dict[str, KeyRange]:
        positions = node_positions(addresses)
        if not positions:
            return {}
        if len(positions) == 1:
            (address,) = positions
            return {address: KeyRange.full_ring(positions[address])}

        ordered = sorted(positions.items(), key=lambda item: item[1])
        count = len(ordered)
        result: dict[str, KeyRange] = {}
        for index, (address, position) in enumerate(ordered):
            prev_position = ordered[(index - 1) % count][1]
            next_position = ordered[(index + 1) % count][1]
            # Midpoint halfway along the clockwise arc from prev to this node.
            start = ring_add(prev_position, ring_distance(prev_position, position) // 2)
            end = ring_add(position, ring_distance(position, next_position) // 2)
            result[address] = KeyRange(start, end)
        return result


class BalancedAllocation(RangeAllocator):
    """Evenly sized sequential ranges, assigned in hash-ID order (Figure 2(b)).

    This is the allocation used for every experiment in the paper: it gives
    each node exactly ``1/n`` of the ring, and it keeps each node's ownership
    *contiguous*, which is what allows index pages to be co-located with the
    tuples they reference (Section IV).
    """

    def allocate(self, addresses: Iterable[str]) -> dict[str, KeyRange]:
        positions = node_positions(addresses)
        if not positions:
            return {}
        ordered = sorted(positions.items(), key=lambda item: item[1])
        count = len(ordered)
        if count == 1:
            return {ordered[0][0]: KeyRange.full_ring(0)}
        boundaries = [(KEY_SPACE_SIZE * i) // count for i in range(count + 1)]
        result: dict[str, KeyRange] = {}
        for index, (address, _position) in enumerate(ordered):
            start = boundaries[index]
            end = boundaries[index + 1] % KEY_SPACE_SIZE
            result[address] = KeyRange(start, end)
        return result


def allocation_imbalance(allocation: Mapping[str, KeyRange]) -> float:
    """Ratio of the largest owned fraction to the ideal fraction ``1/n``.

    1.0 means perfectly balanced; the Pastry-style allocation on small
    memberships typically shows values well above 2, which is the effect the
    paper's Figure 2 illustrates and `benchmarks/test_allocation_balance.py`
    quantifies.
    """
    if not allocation:
        return 0.0
    ideal = 1.0 / len(allocation)
    largest = max(key_range.fraction() for key_range in allocation.values())
    return largest / ideal


ALLOCATORS: dict[str, RangeAllocator] = {
    "pastry": PastryAllocation(),
    "balanced": BalancedAllocation(),
}
