"""Membership tracking: node arrival, departure and failure (Section III-C).

Every participant keeps a full view of the membership (the complete routing
table of Section III-B).  Membership changes are handled conservatively:

* **Arrival** — the joining node is added to the view and the balanced
  allocator recomputes every range.  In-flight queries are unaffected because
  they run against their own routing *snapshot*; the new node only serves
  fresh queries (Section V-C).
* **Departure / failure** — the transport layer's dropped-connection signal
  (our simulator's failure listeners) removes the node from the view.  The
  node's ring neighbours already hold replicas of its data, so the storage
  layer can serve its range immediately; queries that were running receive the
  failure event from their own listeners and start recovery.

:class:`MembershipView` is the per-node component; it exposes the live
:class:`~repro.overlay.routing.RoutingTable`, notifies listeners of membership
changes (the storage engine uses this to re-ship data into the new ranges) and
answers the "which nodes participate right now" question the query initiator
asks when taking a snapshot.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from ..net.simnet import SimNode
from ..net.transport import RpcEndpoint, rpc_endpoint
from .allocation import RangeAllocator
from .routing import RangeMove, RoutingSnapshot, RoutingTable

#: ``listener(kind, address, moves)`` where kind is "join", "leave" or "fail".
MembershipListener = Callable[[str, str, list[RangeMove]], None]

_JOIN_METHOD = "member.join"
_VIEW_METHOD = "member.view"


class MembershipView:
    """A node's view of the CDSS membership and the derived routing table."""

    def __init__(
        self,
        node: SimNode,
        initial_members: Iterable[str],
        replication_factor: int = 3,
        allocator: RangeAllocator | None = None,
    ) -> None:
        self.node = node
        self.replication_factor = replication_factor
        self.allocator = allocator
        self.routing_table = RoutingTable(initial_members, allocator=allocator)
        self._listeners: list[MembershipListener] = []
        self._rejoin_pending = False
        self.rpc: RpcEndpoint = rpc_endpoint(node)
        self.rpc.register(_JOIN_METHOD, self._on_join_request)
        self.rpc.register(_VIEW_METHOD, self._on_view_request)
        node.add_failure_listener(self._on_peer_failure)
        node.services["membership"] = self

    # -- observers ------------------------------------------------------------

    def add_listener(self, listener: MembershipListener) -> None:
        self._listeners.append(listener)

    def members(self) -> tuple[str, ...]:
        return self.routing_table.members

    def is_member(self, address: str) -> bool:
        return address in self.routing_table.members

    def snapshot(self) -> RoutingSnapshot:
        """Immutable snapshot of the current allocation, for query initiation.

        Cached per membership version by the routing table: back-to-back
        queries against an unchanged membership receive the *same* snapshot
        object.  Joins, failures and departures mutate the table (bumping its
        version and dropping the cache), and a crash-restart rejoin replaces
        the table wholesale, so every invalidation path is covered.
        """
        return self.routing_table.snapshot()

    # -- membership changes -----------------------------------------------------

    def node_joined(self, address: str) -> list[RangeMove]:
        """Record that ``address`` joined the CDSS."""
        moves = self.routing_table.add_node(address)
        if moves or address in self.routing_table.members:
            self._notify("join", address, moves)
        return moves

    def node_left(self, address: str) -> list[RangeMove]:
        """Record a graceful departure (planned maintenance)."""
        moves = self.routing_table.remove_node(address)
        self._notify("leave", address, moves)
        return moves

    def node_failed(self, address: str) -> list[RangeMove]:
        """Record a crash failure detected through the transport layer."""
        if address not in self.routing_table.members:
            return []
        moves = self.routing_table.remove_node(address)
        self._notify("fail", address, moves)
        return moves

    # -- crash-restart rejoin -----------------------------------------------------

    def rejoin(self, seeds: Iterable[str]) -> None:
        """Re-enter the membership after a crash-restart.

        The restarted node's own view is stale — peers may have failed or
        joined while it was down, and every live node removed *it* at the
        detection of its crash.  It therefore *announces* itself to every seed
        peer with a one-way cast (each live seed adds it back to its view,
        notifying local listeners exactly as for a fresh join) and asks **one**
        seed for the authoritative member list, failing over to the next seed
        if that one is dead.  The first view reply rebuilds the rejoiner's own
        routing table.  Asking a single seed keeps a rejoin O(n) on the wire —
        every peer replying with the full O(n)-sized member list made each
        churn event O(n²) bytes, which dominated large-membership churn runs.
        """
        self._rejoin_pending = True
        payload = {"address": self.node.address}
        candidates = [peer for peer in seeds if peer != self.node.address]
        for peer in candidates:
            self.rpc.cast(peer, _JOIN_METHOD, payload, 24)
        self._request_view(candidates, 0)

    def _request_view(self, seeds: list[str], index: int) -> None:
        if not self._rejoin_pending or index >= len(seeds):
            return
        resilience = self.node.services.get("resilience")
        if resilience is not None and index == 0:
            # The view request is a pure read of the seed's member list, so it
            # is safe to hedge: a second seed is asked after the first one's
            # p95 reply delay, and whichever view arrives first rebuilds the
            # routing table (``_on_join_reply`` ignores the loser).
            resilience.failover_call(
                seeds, _VIEW_METHOD, {"address": self.node.address}, 24,
                on_reply=lambda _src, reply: self._on_join_reply(reply),
                on_exhausted=lambda _last: None,
            )
            return
        self.rpc.call(
            seeds[index], _VIEW_METHOD, {"address": self.node.address}, 24,
            on_reply=self._on_join_reply,
            on_failure=lambda _addr: self._request_view(seeds, index + 1),
        )

    def _on_join_request(self, _src: str, payload: Mapping[str, object], _respond) -> None:
        self.node_joined(payload["address"])

    def _on_view_request(self, _src: str, payload: Mapping[str, object], respond) -> None:
        self.node_joined(payload["address"])
        members = list(self.routing_table.members)
        respond({"members": members}, size=16 + 16 * len(members))

    def _on_join_reply(self, reply: Mapping[str, object]) -> None:
        if not self._rejoin_pending:
            return  # an earlier seed's reply already rebuilt the view
        self._rejoin_pending = False
        members = set(reply["members"])
        members.add(self.node.address)
        # The allocators assign ranges in hash-ID order, so rebuilding from a
        # sorted member set yields exactly the allocation the peers computed.
        self.routing_table = RoutingTable(sorted(members), allocator=self.allocator)
        self._notify("join", self.node.address, [])

    # -- internals ----------------------------------------------------------------

    def _on_peer_failure(self, address: str) -> None:
        peer = self.node.network.nodes.get(address)
        if peer is not None and peer.alive:
            # The dropped-connection signal raced a reconnect: the peer
            # crashed, restarted and rejoined before this node processed the
            # drop.  A live connection to the new incarnation exists, so the
            # stale signal must not evict the member — only the transport
            # and query layers care about the old connection's death.
            return
        self.node_failed(address)

    def _notify(self, kind: str, address: str, moves: list[RangeMove]) -> None:
        for listener in list(self._listeners):
            listener(kind, address, moves)


def membership_of(node: SimNode) -> MembershipView:
    """Return the node's membership view (must have been created already)."""
    view = node.services.get("membership")
    if not isinstance(view, MembershipView):
        raise LookupError(f"node {node.address!r} has no membership view")
    return view
