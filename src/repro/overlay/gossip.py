"""Epoch tracking via gossip (Section IV).

ORCHESTRA assigns a logical timestamp — an *epoch* — that advances every time
a participant publishes a batch of updates.  A participant that starts an
import or a distributed query does so "with respect to the data available at
the specific epoch in which the import starts"; it must see all state
published up to that epoch and nothing newer.  The paper notes the current
epoch "can be determined through a simple gossip protocol and does not
require a single point of failure".

:class:`EpochGossip` implements that protocol over the RPC layer: each node
keeps the highest epoch it has heard of, publishing a new epoch pushes the
value to a random-ish subset of peers immediately, and periodic anti-entropy
rounds exchange the value with ring neighbours so that the epoch converges
even if the initial push misses nodes.  In the deterministic simulator the
"random" fan-out peers are chosen by hashing, keeping runs reproducible.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from ..common.hashing import sha1_key
from ..net.simnet import SimNode
from ..net.transport import RpcEndpoint, rpc_endpoint

_GOSSIP_METHOD = "gossip.epoch"
_PULL_METHOD = "gossip.pull"


class EpochGossip:
    """Per-node epoch tracker with push gossip and periodic anti-entropy."""

    #: How many peers a new epoch is pushed to immediately.
    FANOUT = 3
    #: Interval between periodic anti-entropy rounds, simulated seconds.
    ANTI_ENTROPY_INTERVAL = 1.0
    #: Wire size of a gossip message.
    MESSAGE_SIZE = 16

    def __init__(self, node: SimNode, peers: Callable[[], list[str]]) -> None:
        self.node = node
        self.rpc: RpcEndpoint = rpc_endpoint(node)
        self._peers = peers
        self.current_epoch = 0
        self._listeners: list[Callable[[int], None]] = []
        # Filter+sort cache for _fanout_peers, keyed by the identity of the
        # list the peers callable returned.  Providers that cache their live
        # list (the cluster does) hand back the same object until membership
        # changes, so steady-state gossip skips the O(n log n) re-sort.
        self._peer_cache_raw: list[str] | None = None
        self._peer_cache_sorted: list[str] = []
        self.rpc.register(_GOSSIP_METHOD, self._on_gossip)
        self.rpc.register(_PULL_METHOD, self._on_pull)
        node.services["gossip"] = self

    # -- observers ---------------------------------------------------------------

    def add_listener(self, listener: Callable[[int], None]) -> None:
        """``listener(epoch)`` is invoked whenever a strictly newer epoch is learnt."""
        self._listeners.append(listener)

    # -- advancing the epoch -------------------------------------------------------

    def announce(self, epoch: int) -> None:
        """Adopt ``epoch`` locally (if newer) and push it to a few peers."""
        if not self._adopt(epoch):
            return
        for peer in self._fanout_peers(epoch):
            self.rpc.cast(peer, _GOSSIP_METHOD, {"epoch": self.current_epoch}, self.MESSAGE_SIZE)

    def start_anti_entropy(self, rounds: int = 0) -> None:
        """Kick off periodic anti-entropy with ring neighbours.

        ``rounds`` bounds the number of rounds (0 means a single round); the
        benchmarks keep this small so queries dominate the traffic figures, as
        gossip overhead is negligible in the paper.
        """

        def run(remaining: int) -> None:
            if not self.node.alive:
                return
            for peer in self._fanout_peers(self.current_epoch + remaining):
                self.rpc.cast(
                    peer, _GOSSIP_METHOD, {"epoch": self.current_epoch}, self.MESSAGE_SIZE
                )
            if remaining > 0:
                self.node.network.schedule(
                    self.ANTI_ENTROPY_INTERVAL, lambda: run(remaining - 1)
                )

        run(rounds)

    def pull(self, peers: Iterable[str]) -> None:
        """Actively fetch the current epoch from ``peers`` (anti-entropy pull).

        Push gossip alone cannot help a node that *missed* announcements — a
        crash-restarted participant re-enters with a stale epoch and must not
        wait for the next publish to learn the current one.  Every live peer's
        reply is folded in through the usual adopt-if-newer rule; dead peers
        are skipped.
        """
        for peer in peers:
            if peer == self.node.address:
                continue
            self.rpc.call(
                peer, _PULL_METHOD, {}, self.MESSAGE_SIZE,
                on_reply=lambda reply: self._adopt(int(reply["epoch"])),
                on_failure=lambda _addr: None,
            )

    def _on_pull(self, _src: str, _payload: Mapping[str, object], respond) -> None:
        respond({"epoch": self.current_epoch}, size=self.MESSAGE_SIZE)

    # -- internals -----------------------------------------------------------------

    def _adopt(self, epoch: int) -> bool:
        if epoch <= self.current_epoch:
            return False
        self.current_epoch = epoch
        for listener in list(self._listeners):
            listener(epoch)
        return True

    def _fanout_peers(self, salt: int) -> list[str]:
        raw = self._peers()
        if raw is not self._peer_cache_raw:
            peers = [p for p in raw if p != self.node.address]
            peers.sort()
            self._peer_cache_raw = raw
            self._peer_cache_sorted = peers
        peers = self._peer_cache_sorted
        if not peers:
            return []
        # Deterministic pseudo-random selection: rotate by a hash of the node
        # address and the salt so different announcements reach different
        # peers.  Index FANOUT entries modularly instead of materialising the
        # rotated copy — same selection, O(FANOUT) instead of O(n) per push.
        offset = sha1_key((self.node.address, salt)) % len(peers)
        return [
            peers[(offset + i) % len(peers)]
            for i in range(min(self.FANOUT, len(peers)))
        ]

    def _on_gossip(self, _src: str, payload: Mapping[str, object], _respond) -> None:
        epoch = int(payload["epoch"])
        if self._adopt(epoch):
            # Re-push so the value keeps spreading epidemically.
            for peer in self._fanout_peers(epoch):
                self.rpc.cast(peer, _GOSSIP_METHOD, {"epoch": epoch}, self.MESSAGE_SIZE)
