"""Full (one-hop) routing tables and immutable routing snapshots.

Following Section III-B, every node keeps a *complete* routing table — one
entry per participant — giving single-hop routing for memberships of up to a
few hundred nodes.  The table maps each node address to the key range it owns
under the active allocation strategy.

Query execution (Section V) never consults the live table directly: the query
initiator takes an immutable :class:`RoutingSnapshot` when the query starts
and disseminates it with the plan, so that every participant uses exactly the
same key → node assignment for the lifetime of the query even if membership
changes mid-flight.  After a failure, the initiator derives a *new* snapshot
from the old one with :meth:`RoutingSnapshot.reassign_failed`, which spreads
each failed node's range over the replicas of its data — this is the first
stage of incremental recovery (Section V-D).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..common.errors import RoutingError
from ..common.hashing import KEY_SPACE_MASK, KeyRange, node_id_for
from .allocation import BalancedAllocation, RangeAllocator


@dataclass(frozen=True)
class RangeMove:
    """A piece of the key space whose owner changed between two snapshots."""

    key_range: KeyRange
    old_owner: str
    new_owner: str


class RoutingSnapshot:
    """An immutable assignment of key ranges to node addresses."""

    #: Constructions since import.  Building a snapshot sorts the whole ring
    #: (O(n log n)), so regression tests pin *how many* are built per workload
    #: against this counter rather than timing anything.
    build_count = 0

    def __init__(self, ranges: Mapping[str, KeyRange], version: int = 0) -> None:
        if not ranges:
            raise RoutingError("a routing snapshot must contain at least one node")
        RoutingSnapshot.build_count += 1
        self._ranges = dict(ranges)
        self.version = version
        # Pre-sort the ring boundaries for O(log n) owner lookup and for the
        # clockwise/counter-clockwise neighbour computations replication needs.
        self._ordered = sorted(
            ((key_range.start, address) for address, key_range in self._ranges.items()
             if not key_range.is_empty()),
        )
        if not self._ordered:
            raise RoutingError("a routing snapshot must cover the ring")
        self._starts = [start for start, _address in self._ordered]
        # Snapshots are immutable, and per-tuple routing walks these
        # constantly: materialise the node order once and memoise the small
        # neighbour/replica sets instead of recomputing them per lookup.
        self._nodes = tuple(address for _start, address in self._ordered)
        self._node_index = {address: i for i, address in enumerate(self._nodes)}
        self._neighbour_cache: dict[tuple[str, int, bool], list[str]] = {}
        self._replica_cache: dict[tuple[str, int], list[str]] = {}
        self._physical_cache: tuple[str, ...] | None = None

    # -- basic accessors --------------------------------------------------------

    @property
    def nodes(self) -> tuple[str, ...]:
        """Addresses participating in this snapshot, in ring order."""
        return self._nodes

    def __len__(self) -> int:
        return len(self._ordered)

    def __contains__(self, address: str) -> bool:
        return address in self._ranges and not self._ranges[address].is_empty()

    def range_of(self, address: str) -> KeyRange:
        try:
            return self._ranges[address]
        except KeyError:
            raise RoutingError(f"node {address!r} not in routing snapshot") from None

    def ranges(self) -> dict[str, KeyRange]:
        return dict(self._ranges)

    def physical_nodes(self) -> tuple[str, ...]:
        """Distinct physical addresses in ring order.

        Synthetic ``addr#k`` sub-entries (created by :meth:`reassign_failed`)
        collapse onto their physical node; the first ring-order occurrence
        wins.  Memoised: the query layer asks for the participant list many
        times per query and the snapshot is immutable.
        """
        cached = self._physical_cache
        if cached is None:
            seen: set[str] = set()
            ordered: list[str] = []
            for address in self._nodes:
                physical = physical_address(address)
                if physical not in seen:
                    seen.add(physical)
                    ordered.append(physical)
            cached = self._physical_cache = tuple(ordered)
        return cached

    # -- lookups ---------------------------------------------------------------

    def owner_of(self, key: int) -> str:
        """The node responsible for ``key`` under this snapshot.

        Because the allocated ranges tile the ring, the owner is the entry
        with the largest start ≤ key (wrapping to the last entry for keys
        before the first boundary); a binary search keeps per-tuple routing
        cheap during rehash operations.
        """
        key &= KEY_SPACE_MASK
        index = bisect_right(self._starts, key) - 1
        if index < 0:
            index = len(self._ordered) - 1
        _candidate_start, candidate = self._ordered[index]
        if self._ranges[candidate].contains(key):
            return candidate
        # Fall back to a linear scan for unusual allocations (e.g. Pastry-style
        # ranges whose starts are midpoints and may not be in tiling order).
        for address, key_range in self._ranges.items():
            if key_range.contains(key):
                return address
        raise RoutingError(f"no node owns key {key}")

    def owners_overlapping(self, key_range: KeyRange) -> list[str]:
        """Snapshot entries whose range overlaps ``key_range``, in clockwise
        ring order starting at the owner of ``key_range.start``.

        With a tiling allocation the overlapping entries form one contiguous
        clockwise run, so the lookup costs O(log n + k) for k overlaps
        instead of the O(n) filter a per-entry overlap test needs.  Falls
        back to the full scan for non-tiling allocations (detected exactly
        like :meth:`owner_of` detects them).
        """
        if key_range.is_empty():
            return []
        if key_range.full:
            return list(self._nodes)
        key = key_range.start & KEY_SPACE_MASK
        index = bisect_right(self._starts, key) - 1
        if index < 0:
            index = len(self._ordered) - 1
        _start, candidate = self._ordered[index]
        if not self._ranges[candidate].contains(key):
            # Non-tiling allocation: overlaps need not be contiguous.
            return [
                address for address in self._nodes
                if self._ranges[address].overlaps(key_range)
            ]
        result: list[str] = []
        count = len(self._ordered)
        for offset in range(count):
            address = self._nodes[(index + offset) % count]
            if not self._ranges[address].overlaps(key_range):
                break
            result.append(address)
        return result

    def neighbours(self, address: str, count: int, clockwise: bool) -> list[str]:
        """``count`` distinct ring neighbours of ``address`` in one direction."""
        cache_key = (address, count, clockwise)
        cached = self._neighbour_cache.get(cache_key)
        if cached is not None:
            return list(cached)
        order = self.nodes
        index = self._node_index.get(address)
        if index is None:
            raise RoutingError(f"node {address!r} not in routing snapshot")
        step = 1 if clockwise else -1
        result: list[str] = []
        position = index
        while len(result) < count and len(result) < len(order) - 1:
            position = (position + step) % len(order)
            candidate = order[position]
            if candidate != address and candidate not in result:
                result.append(candidate)
        self._neighbour_cache[cache_key] = result
        return list(result)

    def replicas_for_key(self, key: int, replication_factor: int) -> list[str]:
        """Owner plus replica holders for ``key``.

        As in Pastry/PAST (Section III-C): ``⌊r/2⌋`` nodes clockwise and the
        same number counter-clockwise of the owner, for ``r`` total copies
        (fewer when the membership is smaller than ``r``).
        """
        owner = self.owner_of(key)
        return self.replicas_for_owner(owner, replication_factor)

    def replicas_for_owner(self, owner: str, replication_factor: int) -> list[str]:
        if replication_factor < 1:
            raise ValueError("replication factor must be at least 1")
        cache_key = (owner, replication_factor)
        cached = self._replica_cache.get(cache_key)
        if cached is not None:
            return list(cached)
        extra = replication_factor - 1
        clockwise = self.neighbours(owner, (extra + 1) // 2, clockwise=True)
        counter = self.neighbours(owner, extra // 2, clockwise=False)
        replicas = [owner]
        for candidate in clockwise + counter:
            if candidate not in replicas:
                replicas.append(candidate)
        replicas = replicas[:replication_factor]
        self._replica_cache[cache_key] = replicas
        return list(replicas)

    # -- deriving new snapshots --------------------------------------------------

    def reassign_failed(
        self,
        failed: Iterable[str],
        replication_factor: int,
    ) -> tuple["RoutingSnapshot", list[RangeMove]]:
        """Derive a snapshot with the failed nodes' ranges handed to replicas.

        Each failed node's range is split evenly among the surviving holders
        of its replicated data ("if the failed nodes' data is available on
        more than one replica, the initiator will evenly divide among them the
        task of recomputing the missing answers", Section V-D).  Returns the
        new snapshot plus the list of moved ranges, which the recovery manager
        uses to know which leaf operations to restart and which previously
        sent data to re-create.
        """
        failed_set = {address for address in failed if address in self._ranges}
        survivors = [address for address in self.nodes if address not in failed_set]
        if not survivors:
            raise RoutingError("all nodes failed; cannot reassign ranges")
        if not failed_set:
            return self, []

        new_ranges: dict[str, KeyRange] = {
            address: key_range
            for address, key_range in self._ranges.items()
            if address not in failed_set
        }
        moves: list[RangeMove] = []
        merged_ranges: dict[str, list[KeyRange]] = {a: [new_ranges[a]] for a in new_ranges}

        for failed_address in sorted(failed_set):
            failed_range = self._ranges[failed_address]
            if failed_range.is_empty():
                continue
            # Surviving replica holders for this node's data, in preference order.
            holders = [
                address
                for address in self.replicas_for_owner(failed_address, replication_factor)
                if address not in failed_set
            ]
            if not holders:
                # Data owned only by failed nodes: replication factor was too
                # small for the failure pattern.  Hand the range to the ring
                # successor anyway; the storage layer will raise when asked
                # for tuples that no longer exist anywhere.
                holders = [self.neighbour_successor(failed_address, survivors)]
            pieces = failed_range.split(len(holders))
            for holder, piece in zip(holders, pieces):
                if piece.is_empty():
                    continue
                merged_ranges.setdefault(holder, []).append(piece)
                moves.append(RangeMove(piece, failed_address, holder))

        flattened = _flatten_ranges(merged_ranges)
        return RoutingSnapshot(flattened, version=self.version + 1), moves

    def neighbour_successor(self, address: str, survivors: Sequence[str]) -> str:
        """The first surviving node clockwise of ``address``."""
        order = self.nodes
        index = self._node_index[address]
        survivor_set = set(survivors)
        for offset in range(1, len(order) + 1):
            candidate = order[(index + offset) % len(order)]
            if candidate in survivor_set:
                return candidate
        raise RoutingError("no surviving successor found")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoutingSnapshot(v{self.version}, {len(self)} nodes)"


def _flatten_ranges(merged: Mapping[str, list[KeyRange]]) -> dict[str, KeyRange]:
    """Collapse multi-arc ownership into per-arc pseudo-entries.

    After reassignment a surviving node may own several disjoint arcs.  The
    snapshot data structure keys ranges by owner address, so we encode the
    extra arcs under synthetic sub-addresses ``"addr#k"`` that map back to the
    same physical node.  :class:`RoutingTable` and the storage layer resolve
    sub-addresses with :func:`physical_address`.  Suffixes are chosen to be
    unique across the whole result, so repeated reassignments (multiple
    successive failures) never overwrite an existing entry.
    """
    result: dict[str, KeyRange] = {}
    existing_keys = set(merged.keys())
    # First free suffix per address: repeated reassignments used to re-probe
    # from 1 every time, which is quadratic in the number of arcs a node
    # accumulates over a long churn run.  The counter resumes where the last
    # probe ended and produces exactly the same suffixes.
    next_suffix: dict[str, int] = {}

    def unique_key(address: str) -> str:
        suffix = next_suffix.get(address, 1)
        candidate = f"{address}#{suffix}"
        while candidate in result or candidate in existing_keys:
            suffix += 1
            candidate = f"{address}#{suffix}"
        next_suffix[address] = suffix + 1
        return candidate

    for address, pieces in merged.items():
        non_empty = [p for p in pieces if not p.is_empty()]
        if not non_empty:
            continue
        result[address] = non_empty[0]
        for piece in non_empty[1:]:
            result[unique_key(address)] = piece
    return result


def physical_address(address: str) -> str:
    """Map a (possibly synthetic ``addr#k``) snapshot entry to its node."""
    return address.split("#", 1)[0]


class RoutingTable:
    """The live, mutable routing table a node (or the cluster bootstrap) keeps.

    The table recomputes the allocation whenever membership changes and can
    produce immutable snapshots for queries.  With the balanced allocator a
    single join or leave shifts *every* boundary slightly — the paper accepts
    this cost in exchange for uniform data distribution (Section III-C).
    """

    def __init__(
        self,
        addresses: Iterable[str],
        allocator: RangeAllocator | None = None,
    ) -> None:
        self.allocator = allocator or BalancedAllocation()
        self._members: list[str] = []
        self._allocation: dict[str, KeyRange] = {}
        self._version = 0
        self._snapshot_cache: RoutingSnapshot | None = None
        for address in addresses:
            self._members.append(address)
        self._recompute()

    # -- membership --------------------------------------------------------------

    @property
    def members(self) -> tuple[str, ...]:
        return tuple(self._members)

    @property
    def version(self) -> int:
        return self._version

    def add_node(self, address: str) -> list[RangeMove]:
        if address in self._members:
            return []
        before = dict(self._allocation)
        self._members.append(address)
        self._recompute()
        return self._diff(before)

    def remove_node(self, address: str) -> list[RangeMove]:
        if address not in self._members:
            return []
        before = dict(self._allocation)
        self._members.remove(address)
        self._recompute()
        return self._diff(before)

    def _recompute(self) -> None:
        self._allocation = self.allocator.allocate(self._members)
        self._version += 1
        self._snapshot_cache = None

    def _diff(self, before: Mapping[str, KeyRange]) -> list[RangeMove]:
        """Ranges whose ownership changed, expressed as moves (approximate:
        reported at the granularity of the new owners' ranges)."""
        moves: list[RangeMove] = []
        # With the balanced allocator a single membership change shifts every
        # boundary, so almost every entry needs its previous owner looked up.
        # A per-entry linear scan of ``before`` made each recompute O(n²) per
        # node — O(n³) cluster-wide per join/leave once every member's view
        # processes the event.  Sort the old boundaries once and bisect.
        ordered = sorted(
            (key_range.start, address)
            for address, key_range in before.items()
            if not key_range.is_empty()
        )
        starts = [start for start, _address in ordered]
        for address, new_range in self._allocation.items():
            old_range = before.get(address)
            if old_range is not None and old_range == new_range:
                continue
            previous_owner = None
            if ordered:
                key = new_range.start & KEY_SPACE_MASK
                index = bisect_right(starts, key) - 1
                if index < 0:
                    index = len(ordered) - 1
                candidate = ordered[index][1]
                if before[candidate].contains(key):
                    previous_owner = candidate
                else:
                    # Non-tiling allocations (midpoint-style ranges): fall
                    # back to the scan, exactly like ``RoutingSnapshot``.
                    previous_owner = _owner_in(before, new_range.start)
            if previous_owner is not None and previous_owner != address:
                moves.append(RangeMove(new_range, previous_owner, address))
        return moves

    # -- lookups ------------------------------------------------------------------

    def owner_of(self, key: int) -> str:
        for address, key_range in self._allocation.items():
            if key_range.contains(key):
                return address
        raise RoutingError(f"no node owns key {key}")

    def range_of(self, address: str) -> KeyRange:
        try:
            return self._allocation[address]
        except KeyError:
            raise RoutingError(f"node {address!r} not in routing table") from None

    def allocation(self) -> dict[str, KeyRange]:
        return dict(self._allocation)

    def snapshot(self) -> RoutingSnapshot:
        """An immutable snapshot of the current allocation.

        Cached per membership version: queries, publishes and retrieves all
        take a snapshot up front, and rebuilding one re-sorts the whole ring
        (O(n log n)).  Any membership change goes through :meth:`_recompute`,
        which drops the cache, so an unchanged membership hands every caller
        the same immutable object.
        """
        cached = self._snapshot_cache
        if cached is None or cached.version != self._version:
            cached = RoutingSnapshot(self._allocation, version=self._version)
            self._snapshot_cache = cached
        return cached

    def node_id(self, address: str) -> int:
        return node_id_for(address)


def _owner_in(allocation: Mapping[str, KeyRange], key: int) -> str | None:
    for address, key_range in allocation.items():
        if key_range.contains(key):
            return address
    return None
