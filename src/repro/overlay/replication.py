"""Replica placement and PAST-style background replication (Section III-C).

Base data is replicated the way Pastry/PAST replicate it: for a replication
factor ``r``, each item lives at its owner plus ``⌊r/2⌋`` nodes clockwise and
``⌊r/2⌋`` nodes counter-clockwise of the owner.  When a node fails, its ring
neighbours therefore already hold copies of everything it owned and can take
over its range transparently.

The paper replicates data eagerly on insert and notes that, for completeness,
the Bloom-filter-based *background* replication of PAST could be added to
repair under-replicated ranges after churn.  We implement both: eager replica
fan-out is performed by the storage layer using :func:`replica_set`, and
:class:`BackgroundReplicator` runs periodic anti-entropy rounds in which nodes
exchange Bloom filters summarising the keys they hold for each range they
should replicate, then fetch whatever the filter says they are missing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..common.hashing import sha1_key
from .routing import RoutingSnapshot, physical_address


def replica_set(snapshot: RoutingSnapshot, key: int, replication_factor: int) -> list[str]:
    """Physical addresses that should hold a copy of the item at ``key``."""
    entries = snapshot.replicas_for_key(key, replication_factor)
    result: list[str] = []
    for entry in entries:
        address = physical_address(entry)
        if address not in result:
            result.append(address)
    return result


class BloomFilter:
    """A simple Bloom filter over arbitrary hashable keys.

    Used by the background replicator to summarise the set of tuple IDs a
    node holds within a key range, so that anti-entropy exchanges cost
    O(filter size) rather than O(number of tuples).
    """

    def __init__(self, expected_items: int, false_positive_rate: float = 0.01) -> None:
        expected_items = max(1, expected_items)
        if not 0 < false_positive_rate < 1:
            raise ValueError("false positive rate must be in (0, 1)")
        ln2 = math.log(2)
        self.num_bits = max(8, int(-expected_items * math.log(false_positive_rate) / (ln2 * ln2)))
        self.num_hashes = max(1, int(round(self.num_bits / expected_items * ln2)))
        self._bits = bytearray((self.num_bits + 7) // 8)
        self.count = 0

    def _positions(self, key: object) -> Iterable[int]:
        digest = sha1_key(("bloom", key))
        # Double hashing: derive k positions from two 80-bit halves.
        h1 = digest >> 80
        h2 = digest & ((1 << 80) - 1)
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, key: object) -> None:
        for position in self._positions(key):
            self._bits[position // 8] |= 1 << (position % 8)
        self.count += 1

    def __contains__(self, key: object) -> bool:
        return all(
            self._bits[position // 8] & (1 << (position % 8))
            for position in self._positions(key)
        )

    def size_bytes(self) -> int:
        return len(self._bits)


@dataclass
class ReplicationReport:
    """Summary of one background anti-entropy round."""

    rounds: int = 0
    filters_exchanged: int = 0
    items_copied: int = 0
    bytes_copied: int = 0
    #: Keys a member's own Bloom filter claimed it held but the exact
    #: membership double-check against its store disproved; each one would
    #: have been a silently skipped repair.
    bloom_false_positives: int = 0
    repairs: list[tuple[str, str, object]] = field(default_factory=list)


class BackgroundReplicator:
    """Periodic anti-entropy repair of under-replicated data.

    The replicator is deliberately decoupled from the storage engine through
    two callbacks so it can be unit-tested in isolation and reused by both the
    index-page and the tuple stores:

    ``list_items(address, key_range)``
        keys (with their ring hash) held by ``address`` inside ``key_range``.
    ``copy_item(src, dst, key)``
        copy one item from ``src`` to ``dst``; returns the item's size.
    """

    def __init__(
        self,
        replication_factor: int,
        list_items: Callable[[str, object], dict[object, int]],
        copy_item: Callable[[str, str, object], int],
    ) -> None:
        self.replication_factor = replication_factor
        self._list_items = list_items
        self._copy_item = copy_item

    def run_round(self, snapshot: RoutingSnapshot) -> ReplicationReport:
        """One anti-entropy round over every owner range's replica group.

        The round is *symmetric*: every member of a range's replica group
        (the owner plus its ring neighbours) publishes a Bloom filter of the
        keys it holds inside the range, and every member fetches from the
        group whatever its own filter says it is missing.  Repairing the
        owner as well as the replicas matters after membership changes — the
        node that inherits a failed node's range usually held only part of
        it, and it is the owner that Algorithm-1 lookups contact first.
        """
        report = ReplicationReport(rounds=1)
        for entry in snapshot.nodes:
            owner = physical_address(entry)
            owner_range = snapshot.range_of(entry)
            if owner_range.is_empty():
                continue
            group = [owner]
            for replica in snapshot.replicas_for_owner(entry, self.replication_factor):
                address = physical_address(replica)
                if address not in group:
                    group.append(address)

            holdings = {member: self._list_items(member, owner_range) for member in group}
            summaries: dict[str, BloomFilter] = {}
            for member, items in holdings.items():
                summary = BloomFilter(expected_items=max(1, len(items)))
                for key in items:
                    summary.add(key)
                summaries[member] = summary
                report.filters_exchanged += 1

            # Union of the group's holdings; remember one holder per key.
            holder_of: dict[object, str] = {}
            for member, items in holdings.items():
                for key in items:
                    holder_of.setdefault(key, member)

            for member in group:
                summary = summaries[member]
                member_items = holdings[member]
                for key, source in holder_of.items():
                    if source == member:
                        continue
                    if key in summary:
                        # A Bloom hit only *suggests* the member holds the
                        # key; a false positive in its own filter would skip
                        # the repair forever.  The exact double-check is a
                        # local store lookup — no wire cost.
                        if key in member_items:
                            continue
                        report.bloom_false_positives += 1
                    copied_bytes = self._copy_item(source, member, key)
                    report.items_copied += 1
                    report.bytes_copied += copied_bytes
                    report.repairs.append((source, member, key))
        return report
