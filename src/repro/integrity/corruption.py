"""Deterministic value mutators modelling silent at-rest corruption.

Each mutator returns a *new* object (the stored types are immutable) whose
logical content differs from the original in exactly one place — a flipped
bit in a value, a re-pointed tuple id, a page reference with the wrong
sequence — the way a latent sector error or a bit flip in a cached buffer
manifests.  The fault injector swaps the corrupted copy into the store
*behind* the checksum table, so the recorded CRC still describes the
original bytes and verification catches the lie.
"""

from __future__ import annotations

import random
import struct
from typing import Any

from ..common.serialization import EncodedScanBatch
from ..common.types import TupleId, VersionedTuple
from ..storage.pages import CoordinatorRecord, IndexPage, PageId, PageRef


def corrupt_value(value: Any, rng: random.Random) -> Any:
    """A copy of ``value`` guaranteed to differ from it."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value ^ (1 << rng.randrange(16))
    if isinstance(value, float):
        bits = struct.unpack("<Q", struct.pack("<d", value))[0]
        # Flip a mantissa bit; retry upward if the flip lands on a NaN
        # payload bit that round-trips to the same comparison result.
        flipped = struct.unpack("<d", struct.pack("<Q", bits ^ (1 << rng.randrange(48))))[0]
        return flipped if flipped != value else value + 1.0
    if isinstance(value, str):
        if not value:
            return "\x01"
        index = rng.randrange(len(value))
        mutated = chr((ord(value[index]) ^ (1 << rng.randrange(7))) or 1)
        return value[:index] + mutated + value[index + 1:]
    if isinstance(value, bytes):
        if not value:
            return b"\x01"
        index = rng.randrange(len(value))
        return value[:index] + bytes([value[index] ^ (1 << rng.randrange(8))]) + value[index + 1:]
    if isinstance(value, tuple) and value:
        index = rng.randrange(len(value))
        return value[:index] + (corrupt_value(value[index], rng),) + value[index + 1:]
    if value is None:
        return 0
    return value


def corrupted_tuple(tup: VersionedTuple, rng: random.Random) -> VersionedTuple:
    """One value of the tuple bit-flipped; identity (tuple id) untouched."""
    if not tup.values:
        return VersionedTuple(tup.relation, tup.tuple_id, tup.values, not tup.deleted)
    values = list(tup.values)
    index = rng.randrange(len(values))
    values[index] = corrupt_value(values[index], rng)
    return VersionedTuple(tup.relation, tup.tuple_id, tuple(values), tup.deleted)


def corrupted_page(page: IndexPage, rng: random.Random) -> IndexPage:
    """One tuple id on the page re-pointed at a phantom epoch."""
    ids = list(page.tuple_ids)
    if not ids:
        return page
    index = rng.randrange(len(ids))
    tid = ids[index]
    ids[index] = TupleId(tid.key_values, tid.epoch + 1 + rng.randrange(3),
                         tid.partition_width)
    return IndexPage(page.ref, ids)


def corrupted_record(record: CoordinatorRecord, rng: random.Random) -> CoordinatorRecord:
    """One page reference of the record re-pointed at a phantom sequence."""
    if not record.pages:
        return record
    pages = list(record.pages)
    index = rng.randrange(len(pages))
    ref = pages[index]
    pid = ref.page_id
    pages[index] = PageRef(
        PageId(pid.relation, pid.epoch, pid.sequence + 1 + rng.randrange(3)),
        ref.hash_range,
    )
    return CoordinatorRecord(record.relation, record.epoch, pages)


def corrupted_scan_batch(batch: EncodedScanBatch, rng: random.Random) -> EncodedScanBatch:
    """A cached scan batch with one tuple's values mutated, re-encoded.

    Decoding, mutating and re-encoding models a bit flip inside the encoded
    column buffer: the batch stays structurally valid (it decodes without
    error) but one row's content is silently wrong.
    """
    tuples = batch.decode_tuples()
    if not tuples:
        return batch
    index = rng.randrange(len(tuples))
    tuples[index] = corrupted_tuple(tuples[index], rng)
    return EncodedScanBatch.from_tuples(tuples)
