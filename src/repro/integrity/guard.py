"""Per-node verification state: record checksums, verify reads, quarantine.

One :class:`NodeIntegrity` is attached to each node's storage service (and
its caches) when the cluster runs with an
:class:`~repro.integrity.config.IntegrityConfig`.  It owns the node's
:class:`~repro.integrity.stats.IntegrityStats` and the quarantine
bookkeeping that turns a later re-store of a failed entry into a counted
read-repair.
"""

from __future__ import annotations

from typing import Any

from .checksum import checksum_of
from .config import IntegrityConfig
from .stats import IntegrityStats


class NodeIntegrity:
    """Checksum recording, read verification and quarantine for one node."""

    def __init__(self, config: IntegrityConfig, stats: IntegrityStats | None = None) -> None:
        self.config = config
        self.stats = stats or IntegrityStats()
        #: Entries failed and removed, awaiting a verified back-fill; a
        #: subsequent :meth:`record` of the same ``(tree, key)`` is the
        #: repair completing and is attributed to :attr:`repair_source`.
        self.quarantined: set[tuple[str, Any]] = set()
        #: Virtual time each ``(tree, key)`` first failed verification on this
        #: node — the corruption bench derives detection latency from it.
        self.detection_times: dict[tuple[str, Any], float] = {}
        #: Which repair path is currently writing: ``failover`` for the
        #: replica-chase read-repair (the default), flipped to
        #: ``replication``/``scrub`` by the cluster around those copy paths.
        self.repair_source = "failover"

    # -- write path ------------------------------------------------------------

    def record(self, store, tree: str, key: Any, value: Any) -> None:
        """Compute and store the content checksum beside a fresh write."""
        checksum = checksum_of(value)
        if checksum is None:
            return
        store.set_checksum(tree, key, checksum)
        if (tree, key) in self.quarantined:
            self.quarantined.discard((tree, key))
            self.stats.note_repaired(self.repair_source)

    # -- read path -------------------------------------------------------------

    def verify(self, store, tree: str, key: Any, value: Any, site: str,
               node=None) -> bool:
        """Re-checksum ``value`` against the stored CRC; quarantine on mismatch.

        Returns True when the entry is intact (or was written before the
        integrity layer was enabled, so no checksum is recorded).  On a
        mismatch the local copy is failed loudly — detection counter, trace
        span when tracing is on — and removed from the store so the existing
        replica-failover paths transparently fetch a verified copy and
        back-fill it.
        """
        if not self.config.verify_reads:
            return True
        expected = store.get_checksum(tree, key)
        if expected is None:
            return True
        if checksum_of(value) == expected:
            return True
        self.stats.note_detected(site)
        self.stats.quarantined += 1
        self.quarantined.add((tree, key))
        if node is not None:
            self.detection_times.setdefault((tree, key), node.now)
        store.delete(tree, key)
        self._trace(node, site, tree, key)
        return False

    def verify_cached(self, checksum: int | None, value: Any, site: str = "cache",
                      node=None, detail: Any = None) -> bool:
        """Verify a cache entry against the checksum recorded at fill time."""
        if checksum is None or not self.config.verify_cache:
            return True
        if checksum_of(value) == checksum:
            return True
        self.stats.note_detected(site)
        self._trace(node, site, "cache", detail)
        return False

    # -- internals -------------------------------------------------------------

    def _trace(self, node, site: str, tree: str, key: Any) -> None:
        """Emit a zero-duration detection span when tracing is enabled."""
        if node is None:
            return
        tracer = getattr(node.network, "tracer", None)
        if tracer is None:
            return
        now = node.network.now
        context = tracer.current()
        span = tracer.open_span(
            "integrity.detected",
            node.address,
            now,
            trace_id=context.trace_id if context is not None else None,
            parent_id=context.span_id if context is not None else None,
            attrs={"site": site, "tree": tree, "key": repr(key)},
        )
        tracer.end_span(span, now)
