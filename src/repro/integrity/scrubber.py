"""Divergence-detecting background scrubber (digest-based anti-entropy).

The :class:`~repro.overlay.replication.BackgroundReplicator` exchanges Bloom
filters, which can only name *absent* copies; a replica holding silently
corrupted bytes looks present and is never repaired.  The scrubber upgrades
the exchange to per-range digests over ``(key, version, checksum)``: each
member of a range's replica group re-checksums what it holds and publishes
one digest entry per key, so the group detects divergent — not just missing
— copies.

Resolution is by epoch, then checksum quorum: among copies that self-verify
(fresh CRC equals the CRC recorded at write time), the highest version wins,
ties broken by the majority fresh checksum (smallest checksum on an exact
tie, for determinism).  Copies that fail their own stored checksum are
quarantined outright; every losing or missing member is back-filled from the
winner.  A key with no self-verified copy anywhere is counted unrepairable
and left in place so reads fail loudly instead of serving a guess.

Like the replicator, the scrubber is decoupled from the storage engine
through callbacks so it can be unit-tested in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..overlay.routing import RoutingSnapshot, physical_address


@dataclass(frozen=True)
class DigestEntry:
    """One member's digest line for one key inside a scrubbed range."""

    #: Version component of the resolution order (the object's epoch).
    version: int
    #: CRC freshly computed over the bytes the member holds *now*.
    checksum: int
    #: CRC recorded beside the entry at write time (None = written before
    #: the integrity layer was enabled; treated as self-consistent).
    stored: int | None
    #: Size of the underlying object, for repair byte accounting.
    size: int

    def self_verified(self) -> bool:
        return self.stored is None or self.checksum == self.stored


@dataclass
class ScrubReport:
    """Summary of one digest-exchange scrub round."""

    rounds: int = 0
    digest_entries: int = 0
    digest_bytes: int = 0
    #: Copies whose fresh checksum contradicted their own stored checksum
    #: (at-rest corruption caught locally) — quarantined.
    corrupt_copies: int = 0
    #: Keys where held copies disagreed (corrupt or minority copies present).
    divergent_keys: int = 0
    #: Keys for which no self-verified copy existed in the replica group.
    unrepairable: int = 0
    items_copied: int = 0
    bytes_copied: int = 0
    repairs: list[tuple[str, str, object]] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return self.digest_bytes + self.bytes_copied


class IntegrityScrubber:
    """Periodic digest-based divergence detection and repair.

    ``list_digests(address, key_range)``
        ``{key: DigestEntry}`` for everything ``address`` holds in the range,
        with freshly recomputed checksums.
    ``copy_item(src, dst, key)``
        copy one verified item from ``src`` to ``dst``; returns its size.
    ``quarantine(address, key)``
        fail the copy at ``address`` loudly and remove it pending repair.
    """

    def __init__(
        self,
        replication_factor: int,
        list_digests: Callable[[str, object], dict[object, DigestEntry]],
        copy_item: Callable[[str, str, object], int],
        quarantine: Callable[[str, object], None],
        digest_entry_bytes: int = 44,
    ) -> None:
        self.replication_factor = replication_factor
        self._list_digests = list_digests
        self._copy_item = copy_item
        self._quarantine = quarantine
        self.digest_entry_bytes = digest_entry_bytes

    def run_round(self, snapshot: RoutingSnapshot) -> ScrubReport:
        """One digest exchange over every owner range's replica group."""
        report = ScrubReport(rounds=1)
        for entry in snapshot.nodes:
            owner = physical_address(entry)
            owner_range = snapshot.range_of(entry)
            if owner_range.is_empty():
                continue
            group = [owner]
            for replica in snapshot.replicas_for_owner(entry, self.replication_factor):
                address = physical_address(replica)
                if address not in group:
                    group.append(address)

            digests = {
                member: self._list_digests(member, owner_range) for member in group
            }
            for member_digest in digests.values():
                report.digest_entries += len(member_digest)
                report.digest_bytes += self.digest_entry_bytes * len(member_digest)

            all_keys: dict[object, None] = {}
            for member in group:
                for key in digests[member]:
                    all_keys.setdefault(key)

            for key in all_keys:
                held = {
                    member: digests[member][key]
                    for member in group
                    if key in digests[member]
                }
                bad = [m for m, d in held.items() if not d.self_verified()]
                good = {m: d for m, d in held.items() if d.self_verified()}
                if not good:
                    # No verified source anywhere: leave every copy in place
                    # so reads fail loudly (verification aborts the query)
                    # instead of vanishing the key behind a quarantine.
                    report.unrepairable += 1
                    continue
                for member in bad:
                    self._quarantine(member, key)
                    report.corrupt_copies += 1

                # Resolve: highest version, then majority fresh checksum
                # (smallest checksum on a tie — deterministic).
                best_version = max(d.version for d in good.values())
                contenders = {
                    m: d for m, d in good.items() if d.version == best_version
                }
                tally: dict[int, int] = {}
                for d in contenders.values():
                    tally[d.checksum] = tally.get(d.checksum, 0) + 1
                winner_checksum = min(
                    tally, key=lambda checksum: (-tally[checksum], checksum)
                )
                winner = next(
                    m for m in group
                    if m in contenders and contenders[m].checksum == winner_checksum
                )
                losers = [
                    m for m, d in good.items()
                    if (d.version, d.checksum) != (best_version, winner_checksum)
                ]
                for member in losers:
                    self._quarantine(member, key)
                if bad or losers:
                    report.divergent_keys += 1

                for member in group:
                    if member == winner:
                        continue
                    intact = (
                        member in good
                        and member not in losers
                    )
                    if intact:
                        continue
                    copied = self._copy_item(winner, member, key)
                    report.items_copied += 1
                    report.bytes_copied += copied
                    report.repairs.append((winner, member, key))
        return report
