"""Content checksums over the canonical serialized form of stored objects.

Every checksum is a CRC-32 over the deterministic wire encoding
(:func:`~repro.common.serialization.encode_values`) of the object's logical
content — the same bytes two honest replicas of the same version would
serialize — so equal content always yields an equal checksum and any value
mutation, dropped tuple id or re-pointed page reference changes it.
"""

from __future__ import annotations

import zlib
from typing import Any

from ..common.serialization import EncodedScanBatch, encode_values
from ..common.types import VersionedTuple
from ..storage.pages import CoordinatorRecord, IndexPage


def tuple_checksum(tup: VersionedTuple) -> int:
    """CRC over a tuple version's identity, liveness flag and values."""
    header = (
        tup.relation,
        tuple(tup.tuple_id.key_values),
        tup.tuple_id.epoch,
        bool(tup.deleted),
    )
    return zlib.crc32(encode_values(header) + encode_values(tuple(tup.values)))


def page_checksum(page: IndexPage) -> int:
    """CRC over a page's identity, hash range and tuple-ID list."""
    pid = page.page_id
    header = (
        pid.relation,
        pid.epoch,
        pid.sequence,
        page.hash_range.start,
        page.hash_range.end,
    )
    ids = tuple((tuple(tid.key_values), tid.epoch) for tid in page.tuple_ids)
    return zlib.crc32(encode_values(header) + encode_values(ids))


def record_checksum(record: CoordinatorRecord) -> int:
    """CRC over a coordinator record's identity and page-reference list."""
    pages = tuple(
        (
            ref.page_id.relation,
            ref.page_id.epoch,
            ref.page_id.sequence,
            ref.hash_range.start,
            ref.hash_range.end,
        )
        for ref in record.pages
    )
    return zlib.crc32(
        encode_values((record.relation, record.epoch)) + encode_values(pages)
    )


def scan_batch_checksum(batch: EncodedScanBatch) -> int:
    """CRC over a cached scan batch: ids, deleted positions, encoded payload.

    The encoded payload is deterministic (codec selection is content-driven),
    so two batches built from the same tuple versions checksum identically
    and any value mutation — even one applied by re-encoding — differs.
    """
    ids = tuple((tuple(tid.key_values), tid.epoch) for tid in batch.tuple_ids)
    meta = (batch.relation, tuple(sorted(batch.deleted_positions)))
    return zlib.crc32(
        encode_values(meta)
        + encode_values(ids)
        + batch.batch.compressed_payload()
    )


def checksum_of(value: Any) -> int | None:
    """Checksum dispatch by stored-object type; None for unchecked kinds."""
    if isinstance(value, VersionedTuple):
        return tuple_checksum(value)
    if isinstance(value, IndexPage):
        return page_checksum(value)
    if isinstance(value, CoordinatorRecord):
        return record_checksum(value)
    if isinstance(value, EncodedScanBatch):
        return scan_batch_checksum(value)
    return None
