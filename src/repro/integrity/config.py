"""Opt-in configuration for the data-integrity layer."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IntegrityConfig:
    """Tuning knobs for checksumming, verification and scrubbing.

    Passed as ``Cluster(..., integrity_config=IntegrityConfig())``; the
    default ``None`` keeps the cluster byte-identical to a build without the
    integrity layer (no checksums computed, no reads verified).
    """

    #: Verify the stored checksum on every storage-service read (coordinator
    #: records, index pages, page scans, tuple lookups).
    verify_reads: bool = True
    #: Verify cached entries when they are served from a ``NodeCache``
    #: (a corrupted cache fill must never be served).
    verify_cache: bool = True
    #: Invariant bound: every injected corruption must be detected and
    #: repaired within this many scrub rounds after the cluster stabilises.
    max_scrub_rounds: int = 4
    #: Wire cost charged per digest entry in a scrub exchange — one 20-byte
    #: key hash, an 8-byte version, a 4-byte CRC and framing.
    digest_entry_bytes: int = 44
