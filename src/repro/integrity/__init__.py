"""End-to-end data integrity: checksums, quarantine, read-repair, scrubbing.

The storage layer trusts every byte it holds; this package closes the
silent-corruption gap the way production storage systems do:

* content checksums (CRC over the canonical serialized form) are computed at
  publish/replication time and stored beside tuple versions, index pages and
  coordinator records in :class:`~repro.storage.localstore.LocalStore`;
* every storage-service read and every :class:`~repro.cache.node.NodeCache`
  fill/serve re-verifies the checksum; a mismatch fails the local copy loudly
  (counter + trace span), quarantines it, and lets the existing replica
  failover paths transparently read-repair from a verified copy;
* a background scrubber (:class:`IntegrityScrubber`) upgrades the
  replicator's Bloom exchange to per-range digests over ``(key, version,
  checksum)`` so replicas detect *divergent* — not just absent — copies,
  resolving by epoch then checksum quorum.

Everything is off by default: pass ``integrity_config=IntegrityConfig()`` to
:class:`~repro.cluster.Cluster` to opt in (the PR 6/PR 9 convention), so wire
vectors and traffic gates stay byte-identical for clean runs.
"""

from .checksum import (
    checksum_of,
    record_checksum,
    scan_batch_checksum,
    tuple_checksum,
    page_checksum,
)
from .config import IntegrityConfig
from .corruption import (
    corrupt_value,
    corrupted_page,
    corrupted_record,
    corrupted_scan_batch,
    corrupted_tuple,
)
from .guard import NodeIntegrity
from .scrubber import DigestEntry, IntegrityScrubber, ScrubReport
from .stats import IntegrityStats

__all__ = [
    "IntegrityConfig",
    "IntegrityStats",
    "NodeIntegrity",
    "IntegrityScrubber",
    "ScrubReport",
    "DigestEntry",
    "checksum_of",
    "tuple_checksum",
    "page_checksum",
    "record_checksum",
    "scan_batch_checksum",
    "corrupt_value",
    "corrupted_tuple",
    "corrupted_page",
    "corrupted_record",
    "corrupted_scan_batch",
]
