"""Counters for detection, quarantine, repair and scrub activity.

Follows the repo-wide stats protocol (``snapshot``/``to_dict``/
``metric_series``/``merge``) so the counters reconcile exactly with the
metrics registry and fold into scenario reports and query profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IntegrityStats:
    """Live counters of one node's (or the cluster-level scrubber's) activity."""

    #: Detections by verification site: ``tuple``, ``page``, ``scan``,
    #: ``coordinator``, ``cache``, ``replication``, ``scrub``.
    detected: dict[str, int] = field(default_factory=dict)
    #: Repairs by the path that back-filled verified bytes: ``failover``
    #: (read-repair through the replica chase), ``replication`` (anti-entropy
    #: re-copy), ``scrub`` (digest-exchange divergence repair).
    repaired: dict[str, int] = field(default_factory=dict)
    #: Local copies failed loudly and removed pending repair.
    quarantined: int = 0
    #: Keys for which no verified copy existed anywhere in the replica group.
    unrepairable: int = 0
    #: Scrub rounds executed.
    scrub_rounds: int = 0
    #: Digest entries exchanged by the scrubber.
    scrub_digests: int = 0
    #: Scrub wire overhead: digest bytes plus repair-copy bytes.
    scrub_bytes: int = 0

    def note_detected(self, site: str) -> None:
        self.detected[site] = self.detected.get(site, 0) + 1

    def note_repaired(self, source: str) -> None:
        self.repaired[source] = self.repaired.get(source, 0) + 1

    @property
    def detected_total(self) -> int:
        return sum(self.detected.values())

    @property
    def repaired_total(self) -> int:
        return sum(self.repaired.values())

    def merge(self, other: "IntegrityStats") -> None:
        for site, count in other.detected.items():
            self.detected[site] = self.detected.get(site, 0) + count
        for source, count in other.repaired.items():
            self.repaired[source] = self.repaired.get(source, 0) + count
        self.quarantined += other.quarantined
        self.unrepairable += other.unrepairable
        self.scrub_rounds += other.scrub_rounds
        self.scrub_digests += other.scrub_digests
        self.scrub_bytes += other.scrub_bytes

    def snapshot(self) -> dict:
        return self.to_dict()

    def to_dict(self) -> dict:
        return {
            "detected": dict(self.detected),
            "detected_total": self.detected_total,
            "repaired": dict(self.repaired),
            "repaired_total": self.repaired_total,
            "quarantined": self.quarantined,
            "unrepairable": self.unrepairable,
            "scrub_rounds": self.scrub_rounds,
            "scrub_digests": self.scrub_digests,
            "scrub_bytes": self.scrub_bytes,
        }

    def metric_series(self):
        """Registry samples: ``integrity.*`` and ``scrub.*``."""
        samples = []
        for site in sorted(self.detected):
            samples.append(("integrity.detected", {"site": site}, self.detected[site]))
        for source in sorted(self.repaired):
            samples.append(
                ("integrity.repaired", {"source": source}, self.repaired[source])
            )
        samples.extend([
            ("integrity.quarantined", {}, self.quarantined),
            ("integrity.unrepairable", {}, self.unrepairable),
            ("scrub.rounds", {}, self.scrub_rounds),
            ("scrub.digests", {}, self.scrub_digests),
            ("scrub.bytes", {}, self.scrub_bytes),
        ])
        return samples
