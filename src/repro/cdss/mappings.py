"""Schema mappings and update exchange (the CDSS layer above the storage engine).

The paper's storage and query subsystem exists to serve ORCHESTRA's update
exchange and reconciliation (Section II, refs [2] and [3]): each participant
owns a local DBMS with its own schema, publishes its update log to the
versioned distributed storage, and imports others' updates by running the
queries generated from *schema mappings* over a consistent epoch of the global
state.

This module implements the slice of that machinery the storage/query layer is
exercised by:

* :class:`SchemaMapping` — a named project/join view from one or two source
  relations into a participant's target relation (the GAV-style mappings the
  STBenchmark scenarios correspond to), compiled to a
  :class:`~repro.query.logical.LogicalQuery` and executed by the distributed
  engine at a chosen epoch;
* :class:`UpdateExchange` — runs a participant's mappings at an epoch and
  turns the answers into the insert/modify batches to apply to the local
  replica, by diffing against what the participant already imported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..common.errors import MappingError
from ..common.types import RelationData, Schema, Value
from ..query.expressions import Expression, col
from ..query.logical import (
    LogicalJoin,
    LogicalProject,
    LogicalQuery,
    LogicalScan,
    LogicalSelect,
)


@dataclass(frozen=True)
class SchemaMapping:
    """A mapping from source relation(s) to a participant's target schema.

    ``outputs`` gives one expression per target attribute, evaluated over the
    (optionally joined and filtered) source relations.  ``join`` is a list of
    attribute pairs between the first and second source relation.
    """

    name: str
    target: Schema
    sources: tuple[Schema, ...]
    outputs: tuple[tuple[str, Expression], ...]
    join: tuple[tuple[str, str], ...] = ()
    filter: Expression | None = None

    def __init__(
        self,
        name: str,
        target: Schema,
        sources: Sequence[Schema],
        outputs: Sequence[tuple[str, Expression]] | None = None,
        join: Sequence[tuple[str, str]] = (),
        filter: Expression | None = None,
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "sources", tuple(sources))
        if not self.sources or len(self.sources) > 2:
            raise MappingError("a schema mapping needs one or two source relations")
        if len(self.sources) == 2 and not join:
            raise MappingError("a two-source mapping needs a join condition")
        if outputs is None:
            # Default: copy attributes positionally from the first source.
            source = self.sources[0]
            if source.arity < target.arity:
                raise MappingError(
                    f"cannot derive default outputs: {source.name!r} has fewer "
                    f"attributes than {target.name!r}"
                )
            outputs = [
                (target_attr, col(source.attributes[index]))
                for index, target_attr in enumerate(target.attributes)
            ]
        object.__setattr__(self, "outputs", tuple(outputs))
        object.__setattr__(self, "join", tuple(join))
        object.__setattr__(self, "filter", filter)
        missing = [name for name, _ in self.outputs if name not in target.attributes]
        if missing:
            raise MappingError(f"mapping outputs {missing} are not attributes of {target.name!r}")

    def to_query(self) -> LogicalQuery:
        """The single-block query implementing this mapping (update exchange
        executes it over the distributed versioned storage)."""
        plan = LogicalScan(self.sources[0])
        if len(self.sources) == 2:
            plan = LogicalJoin(plan, LogicalScan(self.sources[1]), list(self.join))
        if self.filter is not None:
            plan = LogicalSelect(plan, self.filter)
        plan = LogicalProject(plan, list(self.outputs))
        return LogicalQuery(plan, name=f"mapping_{self.name}")

    def referenced_relations(self) -> set[str]:
        return {schema.name for schema in self.sources}


@dataclass
class ImportDelta:
    """What update exchange decided to apply to a participant's local replica."""

    relation: str
    inserts: list[tuple[Value, ...]] = field(default_factory=list)
    modifications: list[tuple[Value, ...]] = field(default_factory=list)
    unchanged: int = 0

    def is_empty(self) -> bool:
        return not self.inserts and not self.modifications

    def change_count(self) -> int:
        return len(self.inserts) + len(self.modifications)


class UpdateExchange:
    """Runs a participant's mappings and computes local import deltas."""

    def __init__(self, mappings: Sequence[SchemaMapping]) -> None:
        self.mappings = list(mappings)

    def required_relations(self) -> set[str]:
        required: set[str] = set()
        for mapping in self.mappings:
            required |= mapping.referenced_relations()
        return required

    def compute_deltas(
        self,
        run_query,
        local_state: Mapping[str, RelationData],
    ) -> list[ImportDelta]:
        """Execute every mapping and diff the answers against ``local_state``.

        ``run_query`` is a callable ``(LogicalQuery) -> list[row tuples]`` —
        the participant passes a closure that executes the query on the
        distributed engine at its import epoch.  Rows whose key is new become
        inserts; rows whose key exists with different values become
        modifications; identical rows are counted as unchanged.
        """
        deltas: list[ImportDelta] = []
        for mapping in self.mappings:
            rows = run_query(mapping.to_query())
            target = mapping.target
            existing: dict[tuple[Value, ...], tuple[Value, ...]] = {}
            local = local_state.get(target.name)
            if local is not None:
                for values in local.rows:
                    existing[target.key_of(values)] = tuple(values)
            delta = ImportDelta(relation=target.name)
            seen_keys: set[tuple[Value, ...]] = set()
            for values in rows:
                values = tuple(values)
                if len(values) != target.arity:
                    raise MappingError(
                        f"mapping {mapping.name!r} produced {len(values)} values for "
                        f"{target.arity}-ary target {target.name!r}"
                    )
                key = target.key_of(values)
                if key in seen_keys:
                    continue  # duplicate derivations of the same target tuple
                seen_keys.add(key)
                current = existing.get(key)
                if current is None:
                    delta.inserts.append(values)
                elif current != values:
                    delta.modifications.append(values)
                else:
                    delta.unchanged += 1
            deltas.append(delta)
        return deltas
