"""Participants and the ORCHESTRA publish / import cycle (Figure 1).

A :class:`Participant` owns a local database (its replica, in its own schema),
makes local edits, and interacts with the rest of the confederation in two
steps:

* **publish** — push the log of local changes to the shared versioned storage,
  advancing the global epoch;
* **import** — run *update exchange* (the schema-mapping queries of
  :mod:`repro.cdss.mappings`) over a consistent epoch of the global state,
  *reconcile* conflicting values using its trust priorities, and apply the
  result to the local replica.

:class:`Orchestra` is the facade that wires a set of participants to one
simulated cluster — the complete CDSS of Figure 1 with the storage and query
subsystem of this paper underneath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..cluster import Cluster
from ..common.errors import CDSSError
from ..common.types import RelationData, Schema, Value
from ..net.profiles import LAN_GIGABIT, NetworkProfile
from ..query.logical import LogicalQuery
from ..storage.client import UpdateBatch
from .mappings import ImportDelta, SchemaMapping, UpdateExchange
from .reconciliation import CandidateUpdate, Reconciler, ReconciliationOutcome


@dataclass
class ImportReport:
    """Result of one import (update exchange + reconciliation)."""

    epoch: int
    deltas: list[ImportDelta] = field(default_factory=list)
    reconciliation: ReconciliationOutcome | None = None

    def total_changes(self) -> int:
        return sum(delta.change_count() for delta in self.deltas)


class Participant:
    """One collaborator: a local replica plus mappings and trust priorities."""

    def __init__(
        self,
        name: str,
        schemas: Sequence[Schema],
        mappings: Sequence[SchemaMapping] = (),
        trust: dict[str, int] | None = None,
    ) -> None:
        self.name = name
        self.local_database: dict[str, RelationData] = {
            schema.name: RelationData(schema) for schema in schemas
        }
        self.update_exchange = UpdateExchange(mappings)
        self.reconciler = Reconciler(trust or {})
        #: Changes made locally since the last publish, per relation.
        self._pending: dict[str, UpdateBatch] = {}
        self.orchestra: "Orchestra | None" = None
        self.last_import_epoch = 0

    # -- local edits -------------------------------------------------------------

    def schema(self, relation: str) -> Schema:
        try:
            return self.local_database[relation].schema
        except KeyError:
            raise CDSSError(f"participant {self.name!r} has no relation {relation!r}") from None

    def insert(self, relation: str, *values: Value) -> None:
        self.local_database[relation].add(*values)
        self._pending_batch(relation).inserts.append(tuple(values))

    def modify(self, relation: str, *values: Value) -> None:
        schema = self.schema(relation)
        key = schema.key_of(values)
        data = self.local_database[relation]
        data.rows = [
            tuple(values) if schema.key_of(row) == key else row for row in data.rows
        ]
        self._pending_batch(relation).modifications.append(tuple(values))

    def delete(self, relation: str, *key_values: Value) -> None:
        schema = self.schema(relation)
        data = self.local_database[relation]
        data.rows = [row for row in data.rows if schema.key_of(row) != tuple(key_values)]
        self._pending_batch(relation).deletes.append(tuple(key_values))

    def _pending_batch(self, relation: str) -> UpdateBatch:
        if relation not in self._pending:
            self._pending[relation] = UpdateBatch(self.schema(relation))
        return self._pending[relation]

    def pending_changes(self) -> int:
        return sum(batch.change_count() for batch in self._pending.values())

    # -- publish / import ----------------------------------------------------------

    def publish(self) -> int:
        """Publish all pending local changes as one new epoch."""
        if self.orchestra is None:
            raise CDSSError(f"participant {self.name!r} has not joined a CDSS")
        if not self._pending:
            return self.orchestra.cluster.current_epoch
        epoch = self.orchestra.cluster.next_epoch()
        for batch in self._pending.values():
            self.orchestra.cluster.publish(batch, epoch=epoch)
        self._pending.clear()
        return epoch

    def import_updates(self, epoch: int | None = None) -> ImportReport:
        """Run update exchange and reconciliation at ``epoch`` and apply locally."""
        if self.orchestra is None:
            raise CDSSError(f"participant {self.name!r} has not joined a CDSS")
        cluster = self.orchestra.cluster
        epoch = epoch if epoch is not None else cluster.current_epoch
        report = ImportReport(epoch=epoch)

        def run_query(query: LogicalQuery) -> list[tuple[Value, ...]]:
            return cluster.query(query, epoch=epoch).rows

        deltas = self.update_exchange.compute_deltas(run_query, self.local_database)
        report.deltas = deltas

        # Reconciliation: the imported values compete with the local replica's
        # current values; the local participant is just another publisher with
        # its own (typically highest) trust priority.
        candidates: list[CandidateUpdate] = []
        for delta in deltas:
            schema = self.schema(delta.relation)
            for values in delta.inserts + delta.modifications:
                candidates.append(
                    CandidateUpdate(delta.relation, schema.key_of(values), tuple(values), "import")
                )
            local = self.local_database[delta.relation]
            for values in local.rows:
                candidates.append(
                    CandidateUpdate(delta.relation, schema.key_of(values), tuple(values), self.name)
                )
        outcome = self.reconciler.reconcile(candidates)
        report.reconciliation = outcome

        for delta in deltas:
            schema = self.schema(delta.relation)
            accepted = {
                key: candidate.values
                for (rel, key), candidate in outcome.accepted.items()
                if rel == delta.relation
            }
            existing_keys = {schema.key_of(row) for row in self.local_database[delta.relation].rows}
            data = self.local_database[delta.relation]
            data.rows = [
                accepted.get(schema.key_of(row), row) for row in data.rows
            ]
            for key, values in accepted.items():
                if key not in existing_keys:
                    data.rows.append(values)
        self.last_import_epoch = epoch
        return report


class Orchestra:
    """The CDSS facade: participants sharing one simulated storage/query cluster."""

    def __init__(
        self,
        num_nodes: int,
        profile: NetworkProfile = LAN_GIGABIT,
        replication_factor: int = 3,
    ) -> None:
        self.cluster = Cluster(num_nodes, profile=profile, replication_factor=replication_factor)
        self.participants: dict[str, Participant] = {}

    def add_participant(self, participant: Participant) -> Participant:
        if participant.name in self.participants:
            raise CDSSError(f"participant {participant.name!r} already joined")
        participant.orchestra = self
        self.participants[participant.name] = participant
        return participant

    def participant(self, name: str) -> Participant:
        return self.participants[name]

    def publish_all(self) -> int:
        """Publish every participant's pending changes (one epoch per participant)."""
        epoch = self.cluster.current_epoch
        for participant in self.participants.values():
            if participant.pending_changes():
                epoch = participant.publish()
        return epoch

    def current_epoch(self) -> int:
        return self.cluster.current_epoch

    def run_query(self, query, epoch: int | None = None):
        """Ad-hoc analytical query over the shared versioned storage."""
        return self.cluster.query(query, epoch=epoch)


def share_relations(participant: Participant, relations: Iterable[RelationData]) -> None:
    """Seed a participant's local replica (and pending publish) with data."""
    for data in relations:
        participant.local_database[data.schema.name] = data
        batch = participant._pending_batch(data.schema.name)
        batch.inserts.extend(data.rows)
