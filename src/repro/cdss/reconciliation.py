"""Reconciliation: conflict detection and trust-based resolution.

In a CDSS, conflicts between participants' updates are not prevented by
locking: each participant makes updates against its own replica and conflicts
are detected and resolved *at import time* (Section II; reference [2]).  A
conflict arises when two participants publish different values for the same
key of the same relation within the window the importer is reconciling.

The resolution policy reproduced here is the priority (trust) scheme of the
ORCHESTRA reconciliation work: the importing participant assigns a priority to
every publisher; the highest-priority value wins, ties are broken
deterministically (lexicographically smallest value), and unresolvable
conflicts can optionally be deferred (left unapplied) instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..common.errors import ReconciliationError
from ..common.types import Schema, Value


@dataclass(frozen=True)
class CandidateUpdate:
    """One participant's proposed value for a target tuple."""

    relation: str
    key: tuple[Value, ...]
    values: tuple[Value, ...]
    publisher: str


@dataclass
class Conflict:
    """Two or more distinct proposed values for the same key."""

    relation: str
    key: tuple[Value, ...]
    candidates: list[CandidateUpdate]

    def publishers(self) -> list[str]:
        return [candidate.publisher for candidate in self.candidates]


@dataclass
class ReconciliationOutcome:
    """Accepted values plus the conflicts that were detected along the way."""

    accepted: dict[tuple[str, tuple[Value, ...]], CandidateUpdate] = field(default_factory=dict)
    conflicts: list[Conflict] = field(default_factory=list)
    deferred: list[Conflict] = field(default_factory=list)

    def accepted_rows(self, relation: str) -> list[tuple[Value, ...]]:
        return [
            candidate.values
            for (rel, _key), candidate in sorted(self.accepted.items(), key=lambda kv: kv[0])
            if rel == relation
        ]


class Reconciler:
    """Trust-priority based conflict resolution for one importing participant."""

    def __init__(self, priorities: Mapping[str, int], defer_unresolved: bool = False) -> None:
        self.priorities = dict(priorities)
        self.defer_unresolved = defer_unresolved

    def priority_of(self, publisher: str) -> int:
        return self.priorities.get(publisher, 0)

    def reconcile(self, candidates: Iterable[CandidateUpdate]) -> ReconciliationOutcome:
        """Group candidate updates by (relation, key), detect conflicts and pick winners."""
        outcome = ReconciliationOutcome()
        grouped: dict[tuple[str, tuple[Value, ...]], list[CandidateUpdate]] = {}
        for candidate in candidates:
            grouped.setdefault((candidate.relation, candidate.key), []).append(candidate)

        for group_key, group in sorted(grouped.items(), key=lambda kv: repr(kv[0])):
            distinct_values = {candidate.values for candidate in group}
            if len(distinct_values) == 1:
                outcome.accepted[group_key] = group[0]
                continue
            conflict = Conflict(group[0].relation, group[0].key, sorted(group, key=lambda c: c.publisher))
            outcome.conflicts.append(conflict)
            winner = self._resolve(conflict)
            if winner is None:
                outcome.deferred.append(conflict)
            else:
                outcome.accepted[group_key] = winner
        return outcome

    def _resolve(self, conflict: Conflict) -> CandidateUpdate | None:
        best_priority = max(self.priority_of(c.publisher) for c in conflict.candidates)
        best = [c for c in conflict.candidates if self.priority_of(c.publisher) == best_priority]
        distinct_best_values = {c.values for c in best}
        if len(distinct_best_values) == 1:
            return best[0]
        if self.defer_unresolved:
            return None
        # Deterministic tie-break so every participant resolves identically.
        return min(best, key=lambda c: (repr(c.values), c.publisher))


def candidates_from_rows(
    relation: Schema, rows_by_publisher: Mapping[str, Iterable[tuple[Value, ...]]]
) -> list[CandidateUpdate]:
    """Build candidate updates from per-publisher row sets (helper for tests
    and for participants importing from several peers)."""
    candidates = []
    for publisher, rows in rows_by_publisher.items():
        for values in rows:
            values = tuple(values)
            if len(values) != relation.arity:
                raise ReconciliationError(
                    f"row {values!r} does not match schema {relation.name!r}"
                )
            candidates.append(
                CandidateUpdate(relation.name, relation.key_of(values), values, publisher)
            )
    return candidates
