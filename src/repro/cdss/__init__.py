"""Collaborative data sharing layer: schema mappings, update exchange,
reconciliation, participants and the Orchestra facade."""

from .mappings import ImportDelta, SchemaMapping, UpdateExchange
from .participant import ImportReport, Orchestra, Participant, share_relations
from .reconciliation import (
    CandidateUpdate,
    Conflict,
    Reconciler,
    ReconciliationOutcome,
    candidates_from_rows,
)

__all__ = [
    "CandidateUpdate",
    "Conflict",
    "ImportDelta",
    "ImportReport",
    "Orchestra",
    "Participant",
    "Reconciler",
    "ReconciliationOutcome",
    "SchemaMapping",
    "UpdateExchange",
    "candidates_from_rows",
    "share_relations",
]
