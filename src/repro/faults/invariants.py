"""System-wide invariant checkers for chaos scenarios.

Each checker inspects a finished :class:`~repro.faults.scenarios.ScenarioRunner`
(the cluster at quiescence plus the runner's bookkeeping of everything it
submitted) and returns a list of human-readable violation strings — empty
when the invariant holds.  The checkers are intentionally omniscient: they
read node-local stores and scheduler internals directly, which a real
deployment could not, because their job is to catch bugs in the protocols,
not to be implementable as production probes.

The workload's rows are self-identifying — every row's key carries the tag of
the publish batch it belongs to — so observed state can be *decomposed* into
whole batches.  That is what lets the checkers distinguish a legitimately
absent batch (its publisher crashed before the catalog commit) from a torn
one (some rows present, some missing), without having to know which epoch an
unacknowledged publish was assigned.

The invariants:

* **operation conservation** — every submitted operation resolved exactly
  once; nothing is queued or in flight at quiescence.  (Evaluated first:
  later checkers issue their own verification operations.)
* **durable-epoch monotonicity** — the cluster's durable epoch never moved
  backwards across completions.
* **membership agreement** — all live nodes' membership views agree with
  each other and with the simulator's ground-truth liveness.
* **acked-publish durability** — every acknowledged publish is retrievable
  at its epoch after all faults healed, with exact batch-level atomicity.
* **replication restoration** — background repair brought (almost) every
  tuple back to full replication; no tuple is down to a single copy.
* **state integrity & reference byte-equality** — the durable-epoch state
  decomposes into the initial rows plus whole committed batches, and
  distributed query answers serialize to the same bytes as the single-node
  reference executor over that state.
* **cache coherence** — with caching enabled, cached answers byte-equal
  fresh cache-bypassing executions.
* **corruption detection & repair** — with an at-rest corruption budget,
  every injected corruption was detected, nothing stays quarantined beyond
  the unrepairable count, and no reachable copy is still corrupt at rest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..common.serialization import encode_values
from ..overlay.routing import physical_address
from ..query.reference import evaluate_query, normalise
from ..query.service import QueryOptions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .scenarios import ScenarioRunner


def result_bytes(rows: Iterable[Sequence]) -> bytes:
    """Canonical byte serialization of a result set (order-insensitive)."""
    return b"".join(encode_values(row) for row in normalise(rows))


def _decomposition_violations(
    runner: "ScenarioRunner", relation: str, rows, context: str
) -> tuple[list[str], dict[str, set]]:
    """Validate that ``rows`` = initial rows + whole publish batches."""
    violations: list[str] = []
    groups, unknown = runner.decompose(relation, rows)
    if unknown:
        violations.append(
            f"{context}: {len(unknown)} rows of {relation!r} belong to no known batch"
        )
    initial = set(runner.initial_rows(relation))
    if groups.get("init", set()) != initial:
        violations.append(
            f"{context}: initial rows of {relation!r} are damaged "
            f"({len(groups.get('init', set()))} present, {len(initial)} expected)"
        )
    batches = runner.batch_rows(relation)
    for tag, present in groups.items():
        if tag == "init":
            continue
        if present != batches[tag]:
            violations.append(
                f"{context}: batch {tag} of {relation!r} is torn — "
                f"{len(present)}/{len(batches[tag])} rows present"
            )
    return violations, groups


def check_operation_conservation(runner: "ScenarioRunner") -> list[str]:
    violations: list[str] = []
    stats = runner.cluster.runtime.scheduler.stats
    resolved = (
        stats.completed + stats.failed + stats.rejected + stats.cancelled + stats.timed_out
    )
    if stats.submitted != resolved:
        violations.append(
            f"conservation: {stats.submitted} submitted but {resolved} resolved "
            f"({stats.snapshot()})"
        )
    if stats.in_flight != 0 or stats.queued != 0:
        violations.append(
            f"conservation: quiescent cluster still has {stats.in_flight} in-flight "
            f"and {stats.queued} queued operations"
        )
    for op in runner.ops:
        if op.future is None:
            violations.append(f"conservation: op{op.index} was never submitted")
        elif not op.future.done():
            violations.append(
                f"conservation: {op.future.describe()} submitted at t={op.at:.4f} "
                f"never resolved (state {op.future.state!r})"
            )
    return violations


def check_durable_epoch_monotonic(runner: "ScenarioRunner") -> list[str]:
    samples = runner.epoch_samples
    for previous, current in zip(samples, samples[1:]):
        if current < previous:
            return [f"durable epoch moved backwards: {previous} -> {current}"]
    return []


def check_membership_agreement(runner: "ScenarioRunner") -> list[str]:
    violations: list[str] = []
    cluster = runner.cluster
    live = sorted(cluster.live_addresses())
    down = sorted(cluster.failed_addresses)
    if set(live) & set(down):
        violations.append(
            f"membership: failed_addresses {down} overlaps live nodes {live}"
        )
    for address in live:
        members = sorted(cluster.nodes[address].membership.members())
        if members != live:
            violations.append(
                f"membership: {address} sees {members}, ground truth is {live}"
            )
    snapshot_nodes = sorted({physical_address(entry) for entry in cluster.snapshot().nodes})
    if snapshot_nodes != live:
        violations.append(
            f"membership: routing snapshot covers {snapshot_nodes}, "
            f"ground truth is {live}"
        )
    return violations


def check_acked_publishes_durable(runner: "ScenarioRunner") -> list[str]:
    violations: list[str] = []
    for relation in runner.relations:
        acked = runner.acked_publishes(relation)
        if not acked:
            continue
        committed = runner.committed_epochs(relation)
        acked_by_epoch = {epoch: tag for tag, epoch, _rows in acked}
        for tag, epoch, rows in acked:
            if epoch not in committed:
                violations.append(
                    f"acked publish {tag} of {relation!r}@{epoch} has no committed "
                    f"catalog entry on any live node"
                )
                continue
            retrieved = runner.cluster.retrieve(relation, epoch=epoch)
            context = f"retrieve {relation!r}@{epoch}"
            batch_violations, groups = _decomposition_violations(
                runner, relation, retrieved.rows(), context
            )
            violations.extend(batch_violations)
            if rows - groups.get(tag, set()):
                violations.append(
                    f"{context}: the acked batch {tag} itself is missing rows"
                )
            for other_epoch, other_tag in acked_by_epoch.items():
                present = other_tag in groups
                if other_epoch <= epoch and not present:
                    violations.append(
                        f"{context}: earlier acked batch {other_tag}@{other_epoch} lost"
                    )
                if other_epoch > epoch and present:
                    violations.append(
                        f"{context}: later batch {other_tag}@{other_epoch} visible "
                        f"at epoch {epoch}"
                    )
    return violations


def check_replication_restored(
    runner: "ScenarioRunner",
    min_copies: int = 2,
    full_fraction: float = 0.98,
) -> list[str]:
    """Every tuple is on ≥ ``min_copies`` live nodes; almost all at full factor.

    The Bloom-filter exchange of the background replicator admits a small
    false-positive rate (a member may wrongly believe it already holds an
    item), so a handful of tuples may sit one copy short of the full
    replication factor — but no tuple may ever be down to a single copy.
    """
    violations: list[str] = []
    cluster = runner.cluster
    live = cluster.live_addresses()
    target = min(cluster.replication_factor, len(live))
    for relation in runner.relations:
        holders: dict[tuple, set[str]] = {}
        for address in live:
            for tup in cluster.storage(address).all_local_tuples(relation):
                key = (tup.tuple_id.key_values, tup.tuple_id.epoch)
                holders.setdefault(key, set()).add(address)
        if not holders:
            continue
        fewest = min(len(nodes) for nodes in holders.values())
        if fewest < min(min_copies, target):
            violations.append(
                f"replication: a tuple of {relation!r} is down to {fewest} live copies"
            )
        fully = sum(1 for nodes in holders.values() if len(nodes) >= target)
        if fully < full_fraction * len(holders):
            violations.append(
                f"replication: only {fully}/{len(holders)} tuples of {relation!r} "
                f"are back to {target} copies"
            )
    return violations


def check_query_reference_equality(runner: "ScenarioRunner") -> list[str]:
    violations: list[str] = []
    validated: set[str] = set()
    for relation, query in runner.verification_queries():
        if relation not in validated:
            validated.add(relation)
            retrieval = runner.observed_retrieval(relation)
            state_violations, _groups = _decomposition_violations(
                runner, relation, retrieval.rows(), "durable state"
            )
            violations.extend(state_violations)
        expected_data = runner.observed_relation_data(relation)
        reference = evaluate_query(query, {relation: expected_data})
        result = runner.cluster.query(query)
        if result_bytes(result.rows) != result_bytes(reference):
            violations.append(
                f"query {query.name!r} over {relation!r} diverged from the "
                f"reference executor: {len(result.rows)} rows vs "
                f"{len(reference)} expected"
            )
    return violations


def check_cache_coherence(runner: "ScenarioRunner") -> list[str]:
    if not runner.cluster.cache_enabled:
        return []
    violations: list[str] = []
    for _relation, query in runner.verification_queries():
        fresh = runner.cluster.query(query, options=QueryOptions(use_result_cache=False))
        cached = runner.cluster.query(query, options=QueryOptions(use_result_cache=True))
        warm = runner.cluster.query(query, options=QueryOptions(use_result_cache=True))
        baseline = result_bytes(fresh.rows)
        if result_bytes(cached.rows) != baseline or result_bytes(warm.rows) != baseline:
            violations.append(
                f"cache incoherence: {query.name!r} cached answer differs from "
                f"a cache-bypassing execution after faults"
            )
    return violations


def _replica_group(snapshot, placement: int, replication_factor: int) -> list[str]:
    """The addresses a read of ``placement`` would be routed to."""
    for entry in snapshot.nodes:
        if snapshot.range_of(entry).contains(placement):
            group = [physical_address(entry)]
            for replica in snapshot.replicas_for_owner(entry, replication_factor):
                address = physical_address(replica)
                if address not in group:
                    group.append(address)
            return group
    return []


def check_corruption_detected_and_repaired(runner: "ScenarioRunner") -> list[str]:
    """Every injected at-rest corruption was detected and repaired.

    Detection is counted cluster-wide (read path, cache fill, or scrub —
    whichever got there first); repair completion is established by the
    quarantine sets having drained down to the unrepairable count and by
    re-verifying every corrupted location directly.  A location may remain
    corrupt *at rest* only when it is orphaned outside the key's current
    replica group — routing never serves it, so reads cannot observe it.
    """
    injector = runner.injector
    events = list(getattr(injector, "corruption_events", ())) if injector else []
    if not events:
        return []
    cluster = runner.cluster
    if not cluster.integrity_enabled:
        return [
            f"corruption: {len(events)} corruptions injected but the cluster "
            f"runs without the integrity layer"
        ]
    violations: list[str] = []
    stats = cluster.integrity_statistics()
    # Durable-tree corruptions must all be found (reads or the scrub digest
    # exchange).  A corrupted *cache* entry has no scrub coverage: it is
    # detected only if read again (and dropped from the cache either way),
    # so it is excluded from the detection floor — the result-correctness
    # invariant separately proves it was never served.
    durable = sum(1 for event in events if event.tree is not None)
    durable_detected = stats.detected_total - stats.detected.get("cache", 0)
    if durable_detected < durable:
        violations.append(
            f"corruption: {durable} durable corruptions injected but only "
            f"{durable_detected} detected"
        )
    quarantined = sum(len(keys) for keys in cluster.quarantined_entries().values())
    if quarantined > stats.unrepairable:
        violations.append(
            f"corruption: {quarantined} entries still quarantined at quiescence "
            f"({stats.unrepairable} unrepairable)"
        )
    from ..integrity import checksum_of
    from ..storage.pages import coordinator_key

    snapshot = cluster.snapshot()
    for event in events:
        if event.tree is None:
            continue  # cache corruption: the entry is dropped on detection
        service = cluster.storage(event.address)
        value = service.store.get(event.tree, event.key)
        if value is None:
            continue  # quarantined; bounded by the unrepairable check above
        stored = service.store.get_checksum(event.tree, event.key)
        if stored is None or checksum_of(value) == stored:
            continue  # repaired in place (or re-written legitimately)
        if event.tree == "tuples":
            placement = event.key[1]
        elif event.tree == "pages":
            placement = value.ref.storage_key
        else:
            placement = coordinator_key(*event.key)
        group = _replica_group(snapshot, placement, cluster.replication_factor)
        if event.address in group:
            violations.append(
                f"corruption: {event.description} on {event.address} is still "
                f"corrupt at rest and reachable by reads"
            )
    return violations


#: Checkers applied by default to every scenario, in evaluation order
#: (conservation first — later checkers submit verification operations).
ALL_CHECKERS = (
    check_operation_conservation,
    check_durable_epoch_monotonic,
    check_membership_agreement,
    check_acked_publishes_durable,
    check_replication_restored,
    check_query_reference_equality,
    check_cache_coherence,
    check_corruption_detected_and_repaired,
)
