"""Seeded chaos scenarios: randomized workload + fault schedules, replayable.

A :class:`ScenarioRunner` composes the runtime layer's multi-tenant workload
(concurrent publishes, retrievals and queries from many initiators) with a
randomized fault schedule — crash-restarts, bidirectional partitions with
scheduled heals, message-chaos windows (loss / duplication / delay /
reordering) and transient slow nodes — derived entirely from one
``random.Random(seed)``.  The virtual clock then runs to quiescence, the
cluster is repaired (partitions healed, crashed nodes restarted and rejoined,
replication factor restored) and the invariant checkers of
:mod:`repro.faults.invariants` are evaluated.

Because the simulator is deterministic, a failing scenario replays exactly::

    PYTHONPATH=src python -m repro.faults.scenarios --seed 1234

which is also what ``python -m repro.faults.scenarios`` prints alongside any
violation, and what the seed-sweep test tells you to run when a seed fails.
"""

from __future__ import annotations

import argparse
import os
import random
from dataclasses import dataclass, field, replace

from ..cluster import Cluster
from ..common.types import RelationData, Schema
from ..query.expressions import AggregateSpec, Count, Sum, col
from ..query.logical import LogicalAggregate, LogicalProject, LogicalQuery, LogicalScan
from ..runtime.futures import OpFuture
from ..storage.client import UpdateBatch
from .injector import FaultInjector, LinkChaos

#: Tag separating the batch a row belongs to from its per-row suffix; the
#: invariant checkers use it to decompose observed state into whole batches.
ROW_TAG_SEPARATOR = ":"


@dataclass(frozen=True)
class ScenarioConfig:
    """Shape of one chaos scenario (fault counts are upper bounds)."""

    num_nodes: int = 6
    replication_factor: int = 3
    num_relations: int = 2
    initial_rows: int = 48
    #: Mixed operations (publish / retrieve / query) submitted over the window.
    num_ops: int = 14
    op_window: float = 0.8
    publish_rows: int = 10
    #: Fault budget.
    crashes: int = 1
    partitions: int = 1
    #: One-way partitions (``symmetric=False``): src→dst traffic is dropped
    #: while dst→src still flows — the classic gray-failure shape where a
    #: node hears everyone but nobody hears it.  Defaults to 0 so existing
    #: seeds replay exactly.
    asymmetric_partitions: int = 0
    chaos_windows: int = 1
    slow_nodes: int = 1
    #: Elastic-churn budget (all default 0, so existing seeds replay exactly).
    #: A *join* takes a node down early and has it rejoin mid-window through
    #: the full join protocol (the simulated cluster's node set is fixed at
    #: construction, so an arrival is modelled as the return of a departed
    #: member); a *leave* is a graceful departure announced to every live
    #: view; a *restart* is a crash-restart drawn from the churn budget.
    joins: int = 0
    leaves: int = 0
    restarts: int = 0
    #: Silent at-rest corruption budget (default 0, so existing seeds replay
    #: exactly).  Each event bit-flips one stored tuple / index page /
    #: coordinator record (or, with caching on, a cached scan batch) behind
    #: the checksum bookkeeping; a non-zero budget implies ``integrity``.
    corruptions: int = 0
    #: Run the cluster with the end-to-end integrity layer (checksummed
    #: storage, verified reads, read-repair, scrubbing) even without a
    #: corruption budget.
    integrity: bool = False
    #: Ceilings for the chaos-window probabilities.
    max_drop: float = 0.2
    max_duplicate: float = 0.15
    max_delay: float = 0.0015
    detection_delay: float = 0.002
    cache: bool = False
    #: Capture a distributed trace of the run.  Tracing charges the propagated
    #: context onto every remote message, so a traced run is a *different*
    #: (equally deterministic) schedule — invariant outcomes must not change,
    #: which ``tests/obs`` asserts over a seed sweep.
    tracing: bool = False

    def fault_free(self) -> "ScenarioConfig":
        return replace(
            self, crashes=0, partitions=0, asymmetric_partitions=0,
            chaos_windows=0, slow_nodes=0, joins=0, leaves=0, restarts=0,
            corruptions=0,
        )

    def churn_only(self) -> "ScenarioConfig":
        """Keep the churn schedule, drop every other fault class.

        The scale harness uses this shape: membership churn under sustained
        query load, without packet chaos muddying the wire-traffic numbers.
        """
        return replace(
            self, crashes=0, partitions=0, asymmetric_partitions=0,
            chaos_windows=0, slow_nodes=0, corruptions=0,
        )


@dataclass
class ScheduledOp:
    """One workload operation the scenario submitted (or will submit)."""

    index: int
    kind: str
    relation: str
    initiator: str
    at: float
    rows: tuple = ()
    query: LogicalQuery | None = None
    future: OpFuture | None = None

    @property
    def tag(self) -> str:
        return f"op{self.index}"


@dataclass
class ScenarioReport:
    """Outcome of one scenario run."""

    seed: int
    config: ScenarioConfig
    violations: list[str]
    ops_submitted: int = 0
    ops_acked: int = 0
    ops_failed: int = 0
    first_fault_at: float | None = None
    last_heal_at: float | None = None
    quiesced_at: float = 0.0
    mean_latency: float = 0.0
    scheduler: dict = field(default_factory=dict)
    faults: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def availability(self) -> float:
        """Fraction of submitted operations that completed successfully."""
        if self.ops_submitted == 0:
            return 1.0
        return self.ops_acked / self.ops_submitted

    @property
    def recovery_seconds(self) -> float:
        """Virtual time from the first fault until the system quiesced."""
        if self.first_fault_at is None:
            return 0.0
        return max(0.0, self.quiesced_at - self.first_fault_at)

    def replay_command(self) -> str:
        command = f"PYTHONPATH=src python -m repro.faults.scenarios --seed {self.seed}"
        if self.config.corruptions:
            command += f" --corruptions {self.config.corruptions}"
        elif self.config.integrity:
            command += " --integrity"
        if self.config.cache:
            command += " --cache"
        return command

    def summary(self) -> dict:
        return {
            "seed": self.seed,
            "ops": self.ops_submitted,
            "acked": self.ops_acked,
            "failed": self.ops_failed,
            "availability": self.availability,
            "mean_latency_s": self.mean_latency,
            "recovery_s": self.recovery_seconds,
            "violations": len(self.violations),
        }


class ScenarioRunner:
    """Build, execute and check one seeded chaos scenario."""

    def __init__(
        self,
        seed: int,
        config: ScenarioConfig | None = None,
        trace_dir: str | None = None,
    ) -> None:
        self.seed = seed
        self.config = config or ScenarioConfig()
        #: Where to dump the failing-window trace when an invariant is
        #: violated; setting it (or ``CHAOS_TRACE_DIR`` in the environment)
        #: implies tracing.  ``None`` + ``tracing=False`` → no tracer at all.
        self.trace_dir = trace_dir if trace_dir is not None else os.environ.get(
            "CHAOS_TRACE_DIR"
        )
        #: Schedule randomness; the injector runs on a derived stream so the
        #: fault *schedule* and the per-message fates do not perturb each
        #: other as the plan grows.
        self.rng = random.Random(seed)
        self.cluster: Cluster | None = None
        self.injector: FaultInjector | None = None
        self.ops: list[ScheduledOp] = []
        self.relations: list[str] = []
        self.epoch_samples: list[int] = []
        self._schemas: dict[str, Schema] = {}
        self._initial_rows: dict[str, list[tuple]] = {}
        self._batch_rows: dict[str, dict[str, set[tuple]]] = {}
        self._observed: dict[str, object] = {}
        self._first_fault_at: float | None = None
        self._last_heal_at: float | None = None

    # -- construction ------------------------------------------------------------

    def _build_cluster(self) -> None:
        cache_config = None
        if self.config.cache:
            from ..cache import CacheConfig

            cache_config = CacheConfig()
        integrity_config = None
        if self.config.integrity or self.config.corruptions:
            from ..integrity import IntegrityConfig

            integrity_config = IntegrityConfig()
        self.cluster = Cluster(
            self.config.num_nodes,
            replication_factor=self.config.replication_factor,
            cache_config=cache_config,
            integrity_config=integrity_config,
        )
        self.cluster.network.failure_detection_delay = self.config.detection_delay
        relations = []
        for index in range(self.config.num_relations):
            name = f"chaos_r{index}"
            schema = Schema(name, ["k", "s", "v"], key=["k"])
            data = RelationData(schema)
            for row_index in range(self.config.initial_rows):
                data.add(
                    f"init{ROW_TAG_SEPARATOR}{row_index}",
                    f"g{row_index % 7}",
                    row_index * 3 + index,
                )
            relations.append(data)
            self.relations.append(name)
            self._schemas[name] = schema
            self._initial_rows[name] = [tuple(row) for row in data.rows]
            self._batch_rows[name] = {}
        self.cluster.publish_relations(relations)
        self.cluster.enable_query_processing()
        if self.config.tracing or self.trace_dir:
            self.cluster.enable_tracing()
        # Chaos starts only after the initial state is cleanly in place.
        self.injector = FaultInjector(
            self.cluster.network, seed=self.rng.getrandbits(32)
        )

    def _plan_ops(self) -> None:
        rng = self.rng
        for index in range(self.config.num_ops):
            at = rng.uniform(0.01, self.config.op_window)
            relation = rng.choice(self.relations)
            initiator = rng.choice(self.cluster.addresses)
            kind = rng.choices(("publish", "retrieve", "query"), (0.35, 0.25, 0.4))[0]
            op = ScheduledOp(index, kind, relation, initiator, at)
            if kind == "publish":
                rows = tuple(
                    (
                        f"{op.tag}{ROW_TAG_SEPARATOR}{row_index}",
                        f"g{rng.randrange(7)}",
                        rng.randrange(1000),
                    )
                    for row_index in range(self.config.publish_rows)
                )
                op.rows = rows
                self._batch_rows[relation][op.tag] = set(rows)
            elif kind == "query":
                op.query = rng.choice(self._query_shapes(relation))
            self.ops.append(op)
            self.cluster.network.schedule_at(at, lambda op=op: self._submit(op))

    def _query_shapes(self, relation: str) -> list[LogicalQuery]:
        schema = self._schemas[relation]
        return [
            LogicalQuery(LogicalScan(schema), name=f"scan_{relation}"),
            LogicalQuery(
                LogicalAggregate(
                    LogicalScan(schema),
                    ["s"],
                    [
                        AggregateSpec("n", Count(), col("v")),
                        AggregateSpec("total", Sum(), col("v")),
                    ],
                ),
                name=f"agg_{relation}",
            ),
            LogicalQuery(
                LogicalProject(LogicalScan(schema), [("k", col("k")), ("v", col("v"))]),
                name=f"proj_{relation}",
            ),
        ]

    def _submit(self, op: ScheduledOp) -> None:
        session = self.cluster.session(op.initiator)
        if op.kind == "publish":
            batch = UpdateBatch(schema=self._schemas[op.relation], inserts=list(op.rows))
            op.future = session.submit_publish(batch)
        elif op.kind == "retrieve":
            op.future = session.submit_retrieve(op.relation)
        else:
            op.future = session.submit_query(op.query)
        op.future.add_done_callback(
            lambda _future: self.epoch_samples.append(self.cluster.durable_epoch)
        )

    # -- fault schedule ----------------------------------------------------------

    def _note_fault(self, at: float) -> None:
        if self._first_fault_at is None or at < self._first_fault_at:
            self._first_fault_at = at

    def _note_heal(self, at: float) -> None:
        if self._last_heal_at is None or at > self._last_heal_at:
            self._last_heal_at = at

    def _plan_crashes(self) -> float:
        rng = self.rng
        network = self.cluster.network
        busy_until = 0.05
        for _ in range(self.config.crashes):
            start = max(rng.uniform(0.05, self.config.op_window), busy_until)
            downtime = rng.uniform(0.08, 0.2)
            victim = rng.choice(self.cluster.addresses)
            restart_at = start + downtime
            # Crashes are serialised so at most one node is down at a time —
            # fewer than the replication factor, which is what bounds the
            # blast radius an acknowledged publish must survive.
            busy_until = restart_at + 4 * self.config.detection_delay
            network.schedule_at(start, lambda victim=victim: self.cluster.fail_node(victim))
            network.schedule_at(
                restart_at, lambda victim=victim: self.cluster.restart_node(victim)
            )
            self._note_fault(start)
            self._note_heal(restart_at)
        return busy_until

    def _plan_churn(self, busy_until: float) -> None:
        """Membership churn: joins, graceful leaves and crash-restarts.

        Continues the crash schedule's serialisation — at most one node is
        away at any moment, staying below the replication factor — so every
        acknowledged publish keeps a live replica throughout the run.  Joins
        are planned first: the "joiner" goes down early and stays away for a
        large slice of the op window, so its rejoin runs the full join
        protocol against a cluster that kept working without it.
        """
        rng = self.rng
        network = self.cluster.network
        events = (
            ["join"] * self.config.joins
            + ["leave"] * self.config.leaves
            + ["restart"] * self.config.restarts
        )
        for kind in events:
            if kind == "join":
                start = max(busy_until, 0.05)
                downtime = rng.uniform(0.3, 0.6) * self.config.op_window
            else:
                start = max(rng.uniform(0.05, self.config.op_window), busy_until)
                downtime = rng.uniform(0.08, 0.2)
            victim = rng.choice(self.cluster.addresses)
            restart_at = start + downtime
            busy_until = restart_at + 4 * self.config.detection_delay
            if kind == "leave":
                network.schedule_at(start, lambda victim=victim: self._leave(victim))
            else:
                network.schedule_at(
                    start, lambda victim=victim: self.cluster.fail_node(victim)
                )
            network.schedule_at(
                restart_at, lambda victim=victim: self.cluster.restart_node(victim)
            )
            self._note_fault(start)
            self._note_heal(restart_at)

    def _leave(self, address: str) -> None:
        """Graceful departure: every live peer is told directly, then the
        node goes dark (no detection delay — peers already removed it)."""
        for peer in self.cluster.live_addresses():
            if peer != address:
                self.cluster.nodes[peer].membership.node_left(address)
        self.cluster.fail_node(address)

    def _plan_partitions(self) -> None:
        rng = self.rng
        network = self.cluster.network
        busy_until = 0.05
        for _ in range(self.config.partitions):
            start = max(rng.uniform(0.05, self.config.op_window), busy_until)
            duration = rng.uniform(0.05, 0.15)
            busy_until = start + duration + 0.01
            members = list(self.cluster.addresses)
            rng.shuffle(members)
            cut = rng.randrange(1, len(members))
            side_a, side_b = members[:cut], members[cut:]
            network.schedule_at(
                start,
                lambda a=tuple(side_a), b=tuple(side_b), d=duration: self.injector.partition(
                    a, b, heal_after=d
                ),
            )
            self._note_fault(start)
            self._note_heal(start + duration)

    def _plan_asymmetric_partitions(self) -> None:
        """Schedule one-way cuts: a small "muted" group whose outbound
        traffic toward the rest is dropped while the reverse direction keeps
        flowing.  Planned after the bidirectional partitions so a zero budget
        (the default) leaves the rng draw sequence — and therefore every
        existing seed's schedule — untouched."""
        rng = self.rng
        network = self.cluster.network
        busy_until = 0.05
        for _ in range(self.config.asymmetric_partitions):
            start = max(rng.uniform(0.05, self.config.op_window), busy_until)
            duration = rng.uniform(0.05, 0.15)
            busy_until = start + duration + 0.01
            members = list(self.cluster.addresses)
            rng.shuffle(members)
            # Mute at most a minority: a one-way cut of half the cluster
            # starves quorums the same way a bidirectional one would.
            cut = rng.randrange(1, max(2, len(members) // 2))
            muted, rest = members[:cut], members[cut:]
            network.schedule_at(
                start,
                lambda a=tuple(muted), b=tuple(rest), d=duration: self.injector.partition(
                    a, b, heal_after=d, symmetric=False
                ),
            )
            self._note_fault(start)
            self._note_heal(start + duration)

    def _plan_chaos_windows(self) -> None:
        rng = self.rng
        for _ in range(self.config.chaos_windows):
            start = rng.uniform(0.02, self.config.op_window)
            duration = rng.uniform(0.05, 0.2)
            chaos = LinkChaos(
                drop=rng.uniform(0.02, self.config.max_drop),
                duplicate=rng.uniform(0.0, self.config.max_duplicate),
                delay=rng.uniform(0.0, self.config.max_delay),
                reorder=rng.uniform(0.0, 0.3),
                reorder_delay=0.001,
            )
            self.injector.chaos_window(chaos, start, duration)
            self._note_fault(start)
            self._note_heal(start + duration)

    def _plan_slow_nodes(self) -> None:
        rng = self.rng
        network = self.cluster.network
        for _ in range(self.config.slow_nodes):
            start = rng.uniform(0.02, self.config.op_window)
            duration = rng.uniform(0.05, 0.2)
            victim = rng.choice(self.cluster.addresses)
            cpu = rng.uniform(2.0, 6.0)
            bandwidth = rng.uniform(1.5, 4.0)
            network.schedule_at(
                start,
                lambda victim=victim, cpu=cpu, bandwidth=bandwidth, d=duration: (
                    self.injector.degrade_node(
                        victim, cpu_slowdown=cpu, bandwidth_slowdown=bandwidth, duration=d
                    )
                ),
            )
            self._note_fault(start)
            self._note_heal(start + duration)

    def _plan_corruptions(self) -> None:
        """Schedule silent at-rest corruption events over the op window.

        Planned after every other fault class so a zero budget (the default)
        leaves the rng draw sequence — and therefore every existing seed's
        schedule — untouched.  The schedule rng only draws the *instants*;
        the victim (node, tree, key) is drawn at fire time from the
        injector's dedicated corruption stream, which keeps the per-message
        fate stream unperturbed either way.
        """
        rng = self.rng
        network = self.cluster.network
        include_cache = self.config.cache
        for _ in range(self.config.corruptions):
            at = rng.uniform(0.02, self.config.op_window)
            network.schedule_at(
                at,
                lambda: self.injector.corrupt_at_rest(include_cache=include_cache),
            )
            self._note_fault(at)

    # -- execution ---------------------------------------------------------------

    def run(self, checkers=None) -> ScenarioReport:
        """Execute the scenario to quiescence and evaluate the invariants."""
        from .invariants import ALL_CHECKERS

        self._build_cluster()
        self._plan_ops()
        self._plan_churn(self._plan_crashes())
        self._plan_partitions()
        self._plan_asymmetric_partitions()
        self._plan_chaos_windows()
        self._plan_slow_nodes()
        self._plan_corruptions()
        self.cluster.run()
        self._stabilise()
        report = self._snapshot_report()
        for checker in checkers or ALL_CHECKERS:
            report.violations.extend(checker(self))
        if report.violations and self.trace_dir:
            path = self._dump_failure_trace()
            if path is not None:
                report.violations.append(f"trace written to {path}")
        return report

    def _dump_failure_trace(self) -> str | None:
        """Dump the failing window's spans as Chrome-trace JSON.

        The window opens at the first scheduled fault (everything before it is
        clean setup) and runs to quiescence — exactly the spans a postmortem
        needs to see which messages were lost, retried or re-parented while
        the invariant was being broken.
        """
        tracer = self.cluster.tracer if self.cluster is not None else None
        if tracer is None:
            return None
        from ..obs.export import write_chrome_trace

        window_start = self._first_fault_at or 0.0
        window = [span for span in tracer.all_spans() if span.begin >= window_start]
        # Pull in each windowed span's ancestors so the dump is a forest of
        # complete lineages (a parentless child would both confuse the
        # postmortem and fail the exporter's orphan check).
        included = {span.span_id: span for span in window}
        for span in window:
            parent_id = span.parent_id
            while parent_id is not None and parent_id not in included:
                parent = tracer.spans.get(parent_id)
                if parent is None:
                    break
                included[parent.span_id] = parent
                parent_id = parent.parent_id
        spans = sorted(included.values(), key=lambda span: span.span_id)
        os.makedirs(self.trace_dir, exist_ok=True)
        path = os.path.join(self.trace_dir, f"chaos-seed-{self.seed}-trace.json")
        write_chrome_trace(path, spans)
        return path

    def _stabilise(self) -> None:
        """Heal everything, rejoin every crashed node, restore replication."""
        cluster = self.cluster
        self.injector.heal_all()
        self.injector.restore_all_nodes()
        for address in sorted(cluster.failed_addresses):
            cluster.restart_node(address)
        cluster.run()
        # Anti-entropy until a round copies nothing (bounded: each round only
        # repairs, so the fixpoint is reached quickly on these data sizes).
        for _ in range(4):
            report = cluster.run_background_replication()
            if report.items_copied == 0:
                break
        # Digest-exchange scrub rounds until one finds nothing to fix (same
        # bounded-fixpoint argument); this is where divergent copies silent
        # corruption left behind are detected and back-filled.
        if cluster.integrity_enabled:
            for _ in range(cluster.integrity_config.max_scrub_rounds):
                scrub = cluster.run_scrub()
                if not (scrub.corrupt_copies or scrub.divergent_keys or scrub.items_copied):
                    break
        cluster.run()

    def _snapshot_report(self) -> ScenarioReport:
        latencies = [
            op.future.latency
            for op in self.ops
            if op.future is not None and op.future.succeeded() and op.future.latency
        ]
        return ScenarioReport(
            seed=self.seed,
            config=self.config,
            violations=[],
            ops_submitted=len(self.ops),
            ops_acked=sum(
                1 for op in self.ops if op.future is not None and op.future.succeeded()
            ),
            ops_failed=sum(
                1
                for op in self.ops
                if op.future is not None and op.future.done() and not op.future.succeeded()
            ),
            first_fault_at=self._first_fault_at,
            last_heal_at=self._last_heal_at,
            quiesced_at=self.cluster.now,
            mean_latency=sum(latencies) / len(latencies) if latencies else 0.0,
            scheduler=self.cluster.runtime.scheduler.stats.snapshot(),
            faults=self.injector.stats.snapshot(),
        )

    # -- state the invariant checkers consume ------------------------------------

    def initial_rows(self, relation: str) -> list[tuple]:
        """The rows published cleanly before any chaos started."""
        return self._initial_rows[relation]

    def batch_rows(self, relation: str) -> dict[str, set[tuple]]:
        """Rows of every publish batch the scenario generated, by op tag."""
        return self._batch_rows[relation]

    def acked_publishes(self, relation: str) -> list[tuple[str, int, set[tuple]]]:
        """``(tag, epoch, rows)`` of every acknowledged publish, epoch order."""
        acked = [
            (op.tag, op.future.result(), self._batch_rows[relation][op.tag])
            for op in self.ops
            if op.kind == "publish"
            and op.relation == relation
            and op.future is not None
            and op.future.succeeded()
        ]
        return sorted(acked, key=lambda item: item[1])

    def committed_epochs(self, relation: str) -> set[int]:
        """Ground truth: publish epochs with a catalog entry on any live node."""
        committed: set[int] = set()
        for address in self.cluster.live_addresses():
            epochs = self.cluster.storage(address).local_catalog(relation)
            if epochs:
                committed.update(epochs)
        return committed

    def observed_retrieval(self, relation: str):
        """One post-quiescence retrieval at the durable epoch (memoised)."""
        if relation not in self._observed:
            self._observed[relation] = self.cluster.retrieve(relation)
        return self._observed[relation]

    def observed_relation_data(self, relation: str) -> RelationData:
        retrieval = self.observed_retrieval(relation)
        return RelationData(self._schemas[relation], [tuple(r) for r in retrieval.rows()])

    def decompose(self, relation: str, rows) -> tuple[dict[str, set[tuple]], set[tuple]]:
        """Split observed rows into per-tag groups plus unrecognised rows."""
        groups: dict[str, set[tuple]] = {}
        unknown: set[tuple] = set()
        for row in rows:
            row = tuple(row)
            tag = str(row[0]).split(ROW_TAG_SEPARATOR, 1)[0]
            if tag == "init" or tag in self._batch_rows[relation]:
                groups.setdefault(tag, set()).add(row)
            else:
                unknown.add(row)
        return groups, unknown

    def verification_queries(self):
        """``(relation, query)`` pairs evaluated post-quiescence."""
        for relation in self.relations:
            for query in self._query_shapes(relation):
                yield relation, query


def run_scenario(
    seed: int,
    config: ScenarioConfig | None = None,
    trace_dir: str | None = None,
) -> ScenarioReport:
    """Run one seeded scenario end to end; see :class:`ScenarioRunner`."""
    return ScenarioRunner(seed, config, trace_dir=trace_dir).run()


def main(argv: list[str] | None = None) -> int:
    """Replay one seed (or sweep a range) from the command line."""
    parser = argparse.ArgumentParser(
        description="Run seeded chaos scenarios against the simulated cluster."
    )
    parser.add_argument("--seed", type=int, default=0, help="first seed to run")
    parser.add_argument("--count", type=int, default=1, help="number of seeds")
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--ops", type=int, default=None)
    parser.add_argument("--crashes", type=int, default=None)
    parser.add_argument("--partitions", type=int, default=None)
    parser.add_argument("--asymmetric-partitions", type=int, default=None)
    parser.add_argument("--chaos-windows", type=int, default=None)
    parser.add_argument("--slow-nodes", type=int, default=None)
    parser.add_argument("--joins", type=int, default=None)
    parser.add_argument("--leaves", type=int, default=None)
    parser.add_argument("--restarts", type=int, default=None)
    parser.add_argument("--corruptions", type=int, default=None)
    parser.add_argument(
        "--integrity", action="store_true",
        help="run with the end-to-end integrity layer even without a "
        "corruption budget (a non-zero --corruptions implies it)",
    )
    parser.add_argument("--cache", action="store_true")
    parser.add_argument(
        "--tracing", action="store_true",
        help="run with distributed tracing enabled",
    )
    parser.add_argument(
        "--trace-dir", default=None,
        help="dump Chrome-trace JSON of the failing window here on any "
        "violation (default: $CHAOS_TRACE_DIR; implies --tracing)",
    )
    args = parser.parse_args(argv)

    config = ScenarioConfig()
    overrides = {
        "num_nodes": args.nodes,
        "num_ops": args.ops,
        "crashes": args.crashes,
        "partitions": args.partitions,
        "asymmetric_partitions": args.asymmetric_partitions,
        "chaos_windows": args.chaos_windows,
        "slow_nodes": args.slow_nodes,
        "joins": args.joins,
        "leaves": args.leaves,
        "restarts": args.restarts,
        "corruptions": args.corruptions,
    }
    config = replace(
        config,
        **{key: value for key, value in overrides.items() if value is not None},
        cache=args.cache,
        integrity=args.integrity,
        tracing=args.tracing or args.trace_dir is not None,
    )

    failures = 0
    for seed in range(args.seed, args.seed + args.count):
        report = run_scenario(seed, config, trace_dir=args.trace_dir)
        summary = report.summary()
        line = "  ".join(f"{key}={value}" for key, value in summary.items())
        print(("OK   " if report.ok else "FAIL ") + line)
        for violation in report.violations:
            print(f"  - {violation}")
        if not report.ok:
            failures += 1
            print(f"  replay: {report.replay_command()}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - manual replay entry point
    raise SystemExit(main())
