"""Deterministic packet-level fault injection for the simulated network.

The injector sits below the reliable per-pair channel that
:class:`~repro.net.simnet.Network` switches on when an injector is installed.
It decides the *fate* of each transmission attempt — delivered, delivered
late, delivered twice, lost, or blocked by a partition — from a seeded
``random.Random``, consulted strictly in event order, so an entire chaos run
is a pure function of its seed.

What the application observes is exactly what it would observe over real TCP
on a lossy network: added latency (retransmissions), traffic inflation, long
stalls across partitions that resume on heal, and crash/restart churn.  What
it never observes is silent loss, duplication or reordering of application
messages — those are transport guarantees the paper's engine assumes from its
persistent connections, and the channel layer restores them.

Node-level degradation (:meth:`FaultInjector.degrade_node`) models a
transiently slow machine — the "hung or slow" peers of Section V-C — by
scaling the node's CPU factor and link bandwidths for a window.
"""

from __future__ import annotations

import itertools
import random
import zlib
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..net.simnet import HostSpec, Message, Network


@dataclass(frozen=True)
class LinkChaos:
    """Per-link fault probabilities applied to each transmission attempt.

    ``delay`` is the maximum extra one-way latency (uniform in ``[0, delay]``)
    added to a delivered copy.  ``reorder`` is the probability of adding a
    further ``[0, reorder_delay]`` of jitter, which perturbs arrival order
    relative to neighbouring messages on the same link.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    reorder: float = 0.0
    reorder_delay: float = 0.001

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} probability must be within [0, 1]")
        if self.delay < 0 or self.reorder_delay < 0:
            raise ValueError("delays cannot be negative")

    def is_clean(self) -> bool:
        return not (self.drop or self.duplicate or self.delay or self.reorder)


CLEAN_LINK = LinkChaos()


@dataclass
class FaultStats:
    """Counters for every fault decision the injector made."""

    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    reordered: int = 0
    blocked: int = 0
    retransmits: int = 0
    deduplicated: int = 0
    abandoned: int = 0
    partitions_started: int = 0
    partitions_healed: int = 0
    degradations: int = 0
    corruptions_injected: int = 0

    def snapshot(self) -> dict:
        return dict(self.__dict__)

    def to_dict(self) -> dict:
        """Common stats-serialization protocol (see :mod:`repro.obs.metrics`)."""
        return self.snapshot()

    def metric_series(self):
        """Registry samples: ``faults.dropped``, ``faults.retransmits``, ..."""
        return [
            (f"faults.{name}", {}, value)
            for name, value in sorted(self.snapshot().items())
        ]


@dataclass(frozen=True)
class CorruptionEvent:
    """One silent at-rest mutation the injector applied.

    The scenario invariants replay this list after stabilisation: every
    event's location must either verify clean (repaired in place) or be
    absent with a verified replica elsewhere (quarantined and re-replicated).
    """

    at: float
    address: str
    #: What was corrupted: ``tuple``, ``page``, ``coordinator`` (store trees)
    #: or ``cache`` (a cached scan batch).
    site: str
    #: Store tree holding the object (None for cache corruption).
    tree: str | None
    key: object
    description: str


#: Store trees the injector can corrupt, in the order candidates are drawn.
CORRUPTION_TREES = ("tuples", "pages", "coordinator")


@dataclass
class _Degradation:
    original: HostSpec
    incarnation: int


@dataclass
class _Partition:
    side_a: frozenset
    side_b: frozenset
    heal_event: object = None
    #: ``False`` models a half-open link: traffic from ``side_a`` to
    #: ``side_b`` is cut while the reverse direction still delivers.
    symmetric: bool = True


class FaultInjector:
    """Seeded fault source for one :class:`~repro.net.simnet.Network`.

    Installing the injector switches the network's remote messaging onto the
    reliable channel path; an injector with no chaos configured and no active
    partitions delivers every message exactly once with zero extra delay and
    consumes no randomness, so a "clean" chaos run exercises the same message
    sequences as the fault-free simulator.
    """

    def __init__(
        self,
        network: Network,
        seed: int = 0,
        rto: float = 0.002,
        max_retransmits: int = 100,
    ) -> None:
        if network.fault_injector is not None:
            raise ValueError("network already has a fault injector installed")
        self.network = network
        self.rng = random.Random(seed)
        self.seed = seed
        #: Base retransmission timeout; attempt ``n`` waits ``rto * 2**min(n, 5)``.
        self.rto = rto
        self.max_retransmits = max_retransmits
        self.stats = FaultStats()
        #: Dedicated RNG stream for at-rest corruption (the PR 9 jitter
        #: pattern): seeded from a CRC of the injector seed, never from the
        #: fate RNG, so enabling corruption leaves every existing fault
        #: schedule byte-identical and replays stay exact.
        self.corruption_rng = random.Random(
            zlib.crc32(f"{seed}:corruption".encode())
        )
        self.corruption_events: list[CorruptionEvent] = []
        self.default_chaos: LinkChaos = CLEAN_LINK
        self._link_chaos: dict[tuple[str, str], LinkChaos] = {}
        self._partitions: dict[int, _Partition] = {}
        self._partition_ids = itertools.count(1)
        self._degraded: dict[str, _Degradation] = {}
        network.fault_injector = self
        # A crash-restarted process comes back at full speed: lift any active
        # degradation the moment the node restarts.
        network.add_restart_listener(self._on_node_restart)

    # -- link chaos --------------------------------------------------------------

    def set_default_chaos(self, chaos: LinkChaos) -> None:
        """Apply ``chaos`` to every link without a per-link override."""
        self.default_chaos = chaos

    def clear_default_chaos(self) -> None:
        self.default_chaos = CLEAN_LINK

    def set_link_chaos(
        self, src: str, dst: str, chaos: LinkChaos, bidirectional: bool = True
    ) -> None:
        self._link_chaos[(src, dst)] = chaos
        if bidirectional:
            self._link_chaos[(dst, src)] = chaos

    def clear_link_chaos(self) -> None:
        self._link_chaos.clear()

    def chaos_for(self, src: str, dst: str) -> LinkChaos:
        return self._link_chaos.get((src, dst), self.default_chaos)

    def chaos_window(self, chaos: LinkChaos, start: float, duration: float) -> None:
        """Schedule ``chaos`` as the default for ``[start, start + duration)``."""
        self.network.schedule_at(start, lambda: self.set_default_chaos(chaos))
        self.network.schedule_at(start + duration, self.clear_default_chaos)

    # -- partitions --------------------------------------------------------------

    def partition(
        self,
        side_a: Iterable[str],
        side_b: Iterable[str],
        heal_after: float | None = None,
        symmetric: bool = True,
    ) -> int:
        """Cut every link between ``side_a`` and ``side_b``, both directions.

        Messages crossing the cut — including ones already in flight — are
        blocked and retried by the transport until :meth:`heal` (scheduled
        automatically ``heal_after`` seconds from now when given).

        With ``symmetric=False`` only the ``side_a`` → ``side_b`` direction
        is cut — a half-open link, the gray failure where a node can hear
        its peers but they cannot hear it (requests arrive, replies vanish,
        or vice versa, depending on which side initiates).
        """
        partition = _Partition(frozenset(side_a), frozenset(side_b), symmetric=symmetric)
        if partition.side_a & partition.side_b:
            raise ValueError("partition sides must be disjoint")
        if not partition.side_a or not partition.side_b:
            raise ValueError("both partition sides must be non-empty")
        partition_id = next(self._partition_ids)
        self._partitions[partition_id] = partition
        self.stats.partitions_started += 1
        if heal_after is not None:
            partition.heal_event = self.network.schedule(
                heal_after, lambda: self.heal(partition_id)
            )
        return partition_id

    def heal(self, partition_id: int) -> None:
        partition = self._partitions.pop(partition_id, None)
        if partition is None:
            return
        if partition.heal_event is not None:
            partition.heal_event.cancel()
        self.stats.partitions_healed += 1

    def heal_all(self) -> None:
        for partition_id in list(self._partitions):
            self.heal(partition_id)

    def blocked(self, src: str, dst: str) -> bool:
        """Whether the ordered pair is currently cut by any partition."""
        for partition in self._partitions.values():
            if src in partition.side_a and dst in partition.side_b:
                return True
            if partition.symmetric and (
                src in partition.side_b and dst in partition.side_a
            ):
                return True
        return False

    @property
    def active_partitions(self) -> int:
        return len(self._partitions)

    # -- transmission fates ------------------------------------------------------

    def fate(self, message: Message, attempt: int) -> Sequence[float]:
        """Extra delays of the copies of this attempt that reach the receiver.

        An empty sequence means the attempt was lost entirely (the transport
        retries).  The randomness is consumed lazily — a clean link draws
        nothing — so unrelated links do not perturb each other's streams.
        """
        chaos = self.chaos_for(message.src, message.dst)
        if chaos.is_clean():
            return (0.0,)
        deliveries: list[float] = []
        if chaos.drop and self.rng.random() < chaos.drop:
            self.stats.dropped += 1
        else:
            deliveries.append(self._copy_delay(chaos))
        if chaos.duplicate and self.rng.random() < chaos.duplicate:
            self.stats.duplicated += 1
            deliveries.append(self._copy_delay(chaos))
        return deliveries

    def _copy_delay(self, chaos: LinkChaos) -> float:
        extra = 0.0
        if chaos.delay:
            extra += self.rng.uniform(0.0, chaos.delay)
            self.stats.delayed += 1
        if chaos.reorder and self.rng.random() < chaos.reorder:
            extra += self.rng.uniform(0.0, chaos.reorder_delay)
            self.stats.reordered += 1
        return extra

    def retransmit_delay(
        self, attempt: int, src: str | None = None, dst: str | None = None
    ) -> float:
        """Exponential backoff, capped so long partitions stay affordable.

        When the transmitting pair is known, a deterministic per-pair jitter
        of up to one ``rto`` is added: a healing partition otherwise releases
        every blocked pair's retry on the *same* backoff schedule, and the
        synchronized retransmission wave hits the healed links all at once.
        The jitter is derived from a CRC over ``(seed, src, dst, attempt)``
        — not from Python's ``hash()`` (which varies with ``PYTHONHASHSEED``)
        and not from the injector's fate RNG (whose stream position depends
        on unrelated traffic) — so replays of a seed are exact and pairs stay
        decorrelated from each other.
        """
        base = self.rto * (2 ** min(attempt, 5))
        if src is None or dst is None:
            return base
        digest = zlib.crc32(f"{self.seed}:{src}:{dst}:{attempt}".encode())
        return base + self.rto * (digest / 2**32)

    # -- slow nodes --------------------------------------------------------------

    def degrade_node(
        self,
        address: str,
        cpu_slowdown: float = 1.0,
        bandwidth_slowdown: float = 1.0,
        duration: float | None = None,
    ) -> None:
        """Transiently slow a node's CPU and/or network interface.

        ``cpu_slowdown`` / ``bandwidth_slowdown`` are divisors (2.0 = half
        speed).  The degradation is automatically lifted after ``duration``
        simulated seconds; a node that crashes and restarts meanwhile comes
        back at full speed (the restore is bound to the incarnation).
        """
        if cpu_slowdown < 1.0 or bandwidth_slowdown < 1.0:
            raise ValueError("slowdown factors must be >= 1")
        node = self.network.node(address)
        if address not in self._degraded:
            self._degraded[address] = _Degradation(node.host, node.incarnation)
        original = self._degraded[address].original
        node.host = HostSpec(
            cpu_factor=original.cpu_factor / cpu_slowdown,
            egress_bandwidth=original.egress_bandwidth / bandwidth_slowdown,
            ingress_bandwidth=original.ingress_bandwidth / bandwidth_slowdown,
            disk_read_bandwidth=original.disk_read_bandwidth,
        )
        self.stats.degradations += 1
        if duration is not None:
            self.network.schedule(duration, lambda: self.restore_node(address))

    def restore_node(self, address: str) -> None:
        degradation = self._degraded.pop(address, None)
        if degradation is None:
            return
        node = self.network.node(address)
        if node.incarnation == degradation.incarnation:
            node.host = degradation.original

    def restore_all_nodes(self) -> None:
        for address in list(self._degraded):
            self.restore_node(address)

    def _on_node_restart(self, address: str) -> None:
        degradation = self._degraded.pop(address, None)
        if degradation is not None:
            self.network.node(address).host = degradation.original

    # -- silent at-rest corruption ----------------------------------------------

    def corrupt_at_rest(
        self,
        targets: Sequence[str] = CORRUPTION_TREES,
        include_cache: bool = False,
    ) -> CorruptionEvent | None:
        """Silently mutate one stored object at rest on a random live node.

        Picks a (node, tree, key) from the dedicated corruption RNG stream,
        replaces the stored object with a bit-flipped copy *behind* the
        store's size and checksum bookkeeping — exactly what a latent media
        error does — and records a :class:`CorruptionEvent`.  With
        ``include_cache`` a cached scan batch can be the victim instead,
        modelling a flipped bit in a cache buffer.

        Returns None when nothing corruptible exists (or every candidate is
        already corrupted).  Draws only from :attr:`corruption_rng`, so the
        fate stream — and with it every existing fault schedule — replays
        byte-identically whether or not corruption is enabled.
        """
        from ..integrity.corruption import (
            corrupted_page,
            corrupted_record,
            corrupted_scan_batch,
            corrupted_tuple,
        )

        rng = self.corruption_rng
        candidates: list[tuple[str, str]] = []
        for address in self.network.live_nodes():
            storage = self.network.node(address).services.get("storage")
            if storage is None:
                continue
            for tree in targets:
                if storage.store.count(tree):
                    candidates.append((address, tree))
            if include_cache and getattr(storage, "cache", None) is not None:
                if any(self._cache_scan_entries(storage.cache)):
                    candidates.append((address, "cache"))
        if not candidates:
            return None

        # Skip logical objects already corrupted *anywhere*: independent
        # media errors hitting every replica of the same object at once is
        # not the regime the repair invariant is about — with all copies
        # rotten there is nothing to repair from, only loud unrepairable
        # failure (which the scrubber unit tests cover directly).
        already = {(e.tree, e.key) for e in self.corruption_events}
        mutators = {
            "tuples": ("tuple", corrupted_tuple, lambda v: bool(v.values)),
            "pages": ("page", corrupted_page, lambda v: bool(v.tuple_ids)),
            "coordinator": ("coordinator", corrupted_record, lambda v: bool(v.pages)),
        }
        for _ in range(16):
            address, tree = candidates[rng.randrange(len(candidates))]
            storage = self.network.node(address).services.get("storage")
            if tree == "cache":
                entries = self._cache_scan_entries(storage.cache)
                if not entries:
                    continue
                entry = entries[rng.randrange(len(entries))]
                if (None, entry.key) in already:
                    continue
                entry.value = corrupted_scan_batch(entry.value, rng)
                event = CorruptionEvent(
                    at=self.network.now, address=address, site="cache",
                    tree=None, key=entry.key,
                    description=f"mutated cached scan batch {entry.key!r}",
                )
            else:
                site, mutate, eligible = mutators[tree]
                entries = [
                    (key, value)
                    for key, value in storage.store.items(tree)
                    if eligible(value) and (tree, key) not in already
                ]
                if not entries:
                    continue
                key, value = entries[rng.randrange(len(entries))]
                # Swap the corrupted copy in behind the size/checksum
                # bookkeeping: the recorded CRC still describes the original.
                storage.store.tree(tree).put(key, mutate(value, rng))
                event = CorruptionEvent(
                    at=self.network.now, address=address, site=site,
                    tree=tree, key=key,
                    description=f"mutated {site} {key!r} in tree {tree!r}",
                )
            self.corruption_events.append(event)
            self.stats.corruptions_injected += 1
            return event
        return None

    @staticmethod
    def _cache_scan_entries(cache) -> list:
        """Cached scan-batch entries of one node cache (mutable in place)."""
        return [
            entry
            for entry in cache.store.entries()
            if isinstance(entry.key, tuple) and entry.key and entry.key[0] == "scan"
        ]

    # -- introspection -----------------------------------------------------------

    def quiescent(self) -> bool:
        """No active partitions, degradations or non-clean chaos remain."""
        return (
            not self._partitions
            and not self._degraded
            and self.default_chaos.is_clean()
            and all(chaos.is_clean() for chaos in self._link_chaos.values())
        )
