"""Deterministic fault injection and seeded chaos scenarios.

FoundationDB-style simulation testing for the reproduced system: the same
discrete-event network that runs the paper's figures can be subjected to
message loss, duplication, reordering, link delays, bidirectional partitions
with scheduled heals, transient CPU/bandwidth degradation and crash-restart
of whole nodes — all driven from a single ``random.Random(seed)``, so every
failure a randomized run finds replays exactly from its seed.

* :class:`FaultInjector` — the packet-level chaos source, hooked into
  :class:`repro.net.simnet.Network` send/deliver.
* :class:`ScenarioRunner` / :func:`run_scenario` — seeded composition of a
  multi-tenant workload with a randomized fault schedule, run to quiescence
  and checked against system-wide invariants.
* :mod:`repro.faults.invariants` — the checkers themselves (operation
  conservation, durable-epoch monotonicity, acked-publish durability,
  reference byte-equality, cache coherence, membership agreement,
  replication-factor restoration).

Replay a failing seed from the command line::

    PYTHONPATH=src python -m repro.faults.scenarios --seed 1234
"""

from .injector import FaultInjector, FaultStats, LinkChaos
from .scenarios import ScenarioConfig, ScenarioReport, ScenarioRunner, run_scenario

__all__ = [
    "FaultInjector",
    "FaultStats",
    "LinkChaos",
    "ScenarioConfig",
    "ScenarioReport",
    "ScenarioRunner",
    "run_scenario",
]
