"""Per-node cache over the version-keyed storage objects.

One :class:`NodeCache` sits next to each simulated node's storage stack and
holds, under a single byte budget and eviction policy, the four object kinds
the retrieval path (Algorithm 1) repeatedly ships over the network:

* ``coord`` — relation coordinator records, keyed ``(relation, epoch)``;
* ``page`` — index-page versions, keyed by :class:`~repro.storage.pages.PageId`;
* ``scan`` — the tuple batch a predicate-less retrieval produced for one page
  version, keyed by the page's ID;
* ``resolve`` — epoch resolutions, keyed ``(relation, requested_epoch)``.

The first three are *version-keyed*: published relation versions are
immutable, a new epoch creates new page versions and shares unchanged ones,
so a coordinator record, page, or per-page tuple batch addressed by its
version can never go stale and is evicted only under byte pressure.  Epoch
*resolutions* ("newest publish ≤ e") are the one mutable kind — a later
publish at an epoch ≤ e would change the answer — so they are invalidated
through :meth:`note_publish` (exact) and :meth:`note_epoch` (the conservative
gossip-driven guard).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..common.serialization import EncodedScanBatch
from .policies import EvictionPolicy
from .stats import CacheStats
from .store import CacheStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..common.types import VersionedTuple
    from ..storage.pages import CoordinatorRecord, IndexPage, PageId

#: Approximate wire cost of one RPC exchange (request + reply framing); added
#: to an entry's benefit because a hit saves the round-trip, not just the body.
RPC_EXCHANGE_OVERHEAD = 112

KIND_COORDINATOR = "coord"
KIND_PAGE = "page"
KIND_SCAN = "scan"
KIND_RESOLVE = "resolve"

#: Kinds counted by the optimizer's residency estimate.  Only the scan
#: batches carry actual tuple bytes; pages (tuple-ID lists) and coordinator
#: records are metadata over the same data and counting them too would
#: double-book the relation's warm footprint.
_RESIDENCY_KINDS = (KIND_SCAN,)


class NodeCache:
    """Version-keyed multi-kind cache for one simulated node."""

    def __init__(
        self,
        byte_budget: int,
        policy: EvictionPolicy | None = None,
        name: str = "node-cache",
    ) -> None:
        self.store = CacheStore(byte_budget, policy=policy, name=name,
                                on_remove=self._on_entry_removed)
        # Incremental per-relation footprint of the relation-bearing kinds so
        # the optimizer's residency probe is O(1) per relation instead of a
        # full entry scan on the query-compilation hot path.
        self._relation_bytes: dict[str, int] = {}
        # Optional integrity guard (attach_integrity): content checksums are
        # recorded at fill time and re-verified on every hit, so a bit flip
        # in a cached buffer is downgraded to a miss instead of being served.
        self._integrity = None
        self._integrity_node = None
        self._checksums: dict[object, int] = {}

    @staticmethod
    def _relation_of(key) -> str | None:
        if key[0] not in _RESIDENCY_KINDS:
            return None
        return key[1].relation  # residency kinds are keyed by PageId

    def attach_integrity(self, integrity, node=None) -> None:
        """Enable checksum-verified fills/hits (cluster integrity wiring)."""
        self._integrity = integrity
        self._integrity_node = node

    def _record_fill(self, key, value) -> None:
        if self._integrity is None:
            return
        from ..integrity.checksum import checksum_of

        checksum = checksum_of(value)
        if checksum is not None:
            self._checksums[key] = checksum

    def _verified(self, key, value):
        """Return the cached value if it still matches its fill-time checksum.

        A mismatch counts a ``cache`` detection, drops the entry, and turns
        the hit into a miss — the caller re-fetches from verified storage, so
        a corrupted cache fill is never served.
        """
        if value is None or self._integrity is None:
            return value
        if self._integrity.verify_cached(
            self._checksums.get(key), value,
            site="cache", node=self._integrity_node, detail=key,
        ):
            return value
        self.store.invalidate(key)
        return None

    def _on_entry_removed(self, entry) -> None:
        self._checksums.pop(entry.key, None)
        relation = self._relation_of(entry.key)
        if relation is not None:
            remaining = self._relation_bytes.get(relation, 0) - entry.size
            if remaining > 0:
                self._relation_bytes[relation] = remaining
            else:
                self._relation_bytes.pop(relation, None)

    def _account_insert(self, key, size: int, inserted: bool) -> None:
        if not inserted:
            return
        relation = self._relation_of(key)
        if relation is not None:
            self._relation_bytes[relation] = self._relation_bytes.get(relation, 0) + size

    @property
    def stats(self) -> CacheStats:
        return self.store.stats

    @property
    def bytes_used(self) -> int:
        return self.store.bytes_used

    def clear(self) -> None:
        """Drop every entry (a crash-restarted node's cache memory is gone)."""
        self.store.clear()
        self._checksums.clear()

    # -- coordinator records ---------------------------------------------------

    def get_coordinator(self, relation: str, epoch: int) -> "CoordinatorRecord | None":
        key = (KIND_COORDINATOR, relation, epoch)
        return self._verified(key, self.store.get(key))

    def put_coordinator(self, record: "CoordinatorRecord") -> None:
        size = record.estimated_size()
        key = (KIND_COORDINATOR, record.relation, record.epoch)
        inserted = self.store.put(key, record, size, benefit=size + RPC_EXCHANGE_OVERHEAD)
        self._account_insert(key, size, inserted)
        if inserted:
            self._record_fill(key, record)

    # -- index pages -----------------------------------------------------------

    def get_page(self, page_id: "PageId") -> "IndexPage | None":
        key = (KIND_PAGE, page_id)
        return self._verified(key, self.store.get(key))

    def peek_page(self, page_id: "PageId") -> "IndexPage | None":
        """Page lookup without touching hit/miss counters or recency.

        Used when the page is served *to a remote peer* (the bytes still ship,
        so nothing is saved network-wise) rather than consumed locally.  Still
        verified: a corrupted cached copy must not be relayed to peers.
        """
        key = (KIND_PAGE, page_id)
        return self._verified(key, self.store.peek(key))

    def put_page(self, page: "IndexPage") -> None:
        size = page.estimated_size()
        key = (KIND_PAGE, page.page_id)
        inserted = self.store.put(key, page, size, benefit=size + RPC_EXCHANGE_OVERHEAD)
        self._account_insert(key, size, inserted)
        if inserted:
            self._record_fill(key, page)

    # -- per-page retrieval results (encoded tuple batches) --------------------

    def get_scan(self, page_id: "PageId") -> "EncodedScanBatch | None":
        key = (KIND_SCAN, page_id)
        return self._verified(key, self.store.get(key))

    def put_scan(self, page_id: "PageId", tuples: Sequence["VersionedTuple"]) -> None:
        batch = EncodedScanBatch.from_tuples(tuple(tuples))
        # Charged at the *actual* encoded payload size, so the byte budget
        # reflects what the entry really occupies and effective capacity grows
        # with the encoding win.
        size = batch.stored_size()
        key = (KIND_SCAN, page_id)
        # A hit saves the retrieve_page cast, the per-data-node tuple requests
        # and the shipped (encoded) tuple bytes; the dominant term is the
        # tuple bytes.
        inserted = self.store.put(key, batch, size, benefit=size + 2 * RPC_EXCHANGE_OVERHEAD)
        self._account_insert(key, size, inserted)
        if inserted:
            self._record_fill(key, batch)

    # -- epoch resolutions -----------------------------------------------------

    def get_resolution(self, relation: str, epoch: int) -> int | None:
        return self.store.get((KIND_RESOLVE, relation, epoch))

    def put_resolution(self, relation: str, epoch: int, resolved: int) -> None:
        self.store.put((KIND_RESOLVE, relation, epoch), resolved, 24,
                       benefit=24 + RPC_EXCHANGE_OVERHEAD)

    # -- invalidation ----------------------------------------------------------

    def note_publish(self, relation: str, epoch: int) -> int:
        """A new version of ``relation`` was published at ``epoch``.

        Resolutions whose requested epoch covers the publish can change and
        are dropped.  Version-keyed entries (coordinator records, pages, scan
        batches) are immutable *between distinct epochs*, but the driver API
        allows republishing a relation at an epoch that was already used —
        which rewrites that version in place — so entries of the relation at
        the published epoch (or later) are dropped too.  For the normal
        fresh-epoch publish nothing is cached at the new epoch yet and this
        is a no-op for those tiers, keeping shared-page hits intact.
        """

        def stale(key, _value) -> bool:
            kind = key[0]
            if kind == KIND_RESOLVE:
                return key[1] == relation and key[2] >= epoch
            if kind == KIND_COORDINATOR:
                return key[1] == relation and key[2] >= epoch
            if kind in (KIND_PAGE, KIND_SCAN):
                return key[1].relation == relation and key[1].epoch >= epoch
            return False

        return self.store.invalidate_where(stale)

    def note_epoch(self, epoch: int) -> int:
        """Gossip learnt of ``epoch``: conservatively drop covering resolutions.

        The gossip message carries no relation name, so every resolution whose
        requested epoch is ≥ the announced one is dropped; resolutions of
        strictly older epochs are immutable and survive.
        """
        return self.store.invalidate_where(
            lambda key, _value: key[0] == KIND_RESOLVE and key[2] >= epoch
        )

    # -- residency (optimizer input) -------------------------------------------

    def cached_bytes_for_relation(self, relation: str) -> int:
        """Tuple-batch bytes of ``relation`` currently resident (O(1))."""
        return self._relation_bytes.get(relation, 0)

    def residency(self) -> "CacheResidency":
        return CacheResidency(self)


class CacheResidency:
    """Snapshot interface the cost model consults (see optimizer/cost.py).

    Kept deliberately thin: the cost model asks "how many bytes of relation R
    are warm on the initiating node" and converts that into a fraction of the
    relation's total footprint using its own catalog statistics.
    """

    def __init__(self, cache: NodeCache) -> None:
        self._cache = cache

    def cached_bytes(self, relation: str) -> int:
        return self._cache.cached_bytes_for_relation(relation)
