"""Generic byte-budgeted cache store with pluggable eviction.

:class:`CacheStore` is the one cache implementation every tier of the
subsystem shares: the per-node page/tuple cache, the coordinator-record and
epoch-resolution tiers, and the initiator-side semantic result cache are all
``CacheStore`` instances with different key namespaces and benefit metrics.

Invariants the property tests pin down:

* the sum of entry sizes never exceeds ``byte_budget``, at any point, for any
  operation sequence;
* an entry larger than the whole budget is rejected outright (never inserted,
  never evicts anything);
* eviction order is fully delegated to the policy, which sees every insert,
  access and removal.

Keys are namespaced tuples whose first element names the entry *kind* (e.g.
``("page", page_id)``); the kind feeds the per-kind hit/miss breakdown and
lets :meth:`invalidate_where` target one tier without touching the others.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator

from .policies import EvictionPolicy, LruPolicy
from .stats import CacheStats


@dataclass
class CacheEntry:
    """One cached item plus the accounting the policy and stats need."""

    key: Hashable
    value: Any
    size: int
    #: Bytes that would cross the network if this entry had to be re-fetched;
    #: what a hit adds to ``bytes_saved`` and what GreedyDual weighs.
    benefit: float


def _kind_of(key: Hashable) -> str:
    if isinstance(key, tuple) and key and isinstance(key[0], str):
        return key[0]
    return "other"


class CacheStore:
    """A byte-budgeted key → value cache with pluggable eviction."""

    def __init__(
        self,
        byte_budget: int,
        policy: EvictionPolicy | None = None,
        name: str = "cache",
        on_remove: Callable[[CacheEntry], None] | None = None,
    ) -> None:
        if byte_budget < 0:
            raise ValueError("cache byte budget cannot be negative")
        self.name = name
        self.byte_budget = byte_budget
        self.policy = policy or LruPolicy()
        self.stats = CacheStats()
        #: Invoked for every entry leaving the store (eviction, invalidation
        #: or replacement); lets owners keep incremental aggregates in sync.
        self.on_remove = on_remove
        self._entries: dict[Hashable, CacheEntry] = {}
        self._bytes_used = 0

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def bytes_used(self) -> int:
        return self._bytes_used

    def entries(self) -> Iterator[CacheEntry]:
        return iter(list(self._entries.values()))

    # -- lookups ---------------------------------------------------------------

    def get(self, key: Hashable, record_miss: bool = True) -> Any | None:
        """Cached value for ``key``, or None; updates statistics and recency."""
        entry = self._entries.get(key)
        if entry is None:
            if record_miss:
                self.stats.record_miss(_kind_of(key))
            return None
        self.policy.record_access(key)
        self.stats.record_hit(_kind_of(key), entry.benefit)
        return entry.value

    def peek(self, key: Hashable) -> Any | None:
        """Value without touching statistics or recency (planner probes)."""
        entry = self._entries.get(key)
        return entry.value if entry is not None else None

    # -- updates ---------------------------------------------------------------

    def put(self, key: Hashable, value: Any, size: int, benefit: float | None = None) -> bool:
        """Insert (or replace) ``key``; returns False if the item is uncacheable.

        ``size`` is the entry's budget footprint; ``benefit`` defaults to the
        size (re-fetching ships roughly the entry itself over the network).
        """
        size = max(1, int(size))
        if size > self.byte_budget:
            self.stats.rejected += 1
            return False
        if key in self._entries:
            self._remove(key)
        self._evict_until_fits(size)
        entry = CacheEntry(key, value, size, float(benefit if benefit is not None else size))
        self._entries[key] = entry
        self._bytes_used += size
        self.policy.record_insert(key, size, entry.benefit)
        self.stats.insertions += 1
        return True

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it was present."""
        if key not in self._entries:
            return False
        self._remove(key)
        self.stats.invalidations += 1
        return True

    def invalidate_where(self, predicate: Callable[[Hashable, Any], bool]) -> int:
        """Drop every entry for which ``predicate(key, value)`` holds."""
        doomed = [key for key, entry in self._entries.items() if predicate(key, entry.value)]
        for key in doomed:
            self._remove(key)
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        for key in list(self._entries):
            self._remove(key)

    # -- internals -------------------------------------------------------------

    def _evict_until_fits(self, incoming_size: int) -> None:
        while self._entries and self._bytes_used + incoming_size > self.byte_budget:
            victim = self.policy.choose_victim()
            self._remove(victim)
            self.stats.evictions += 1

    def _remove(self, key: Hashable) -> None:
        entry = self._entries.pop(key)
        self._bytes_used -= entry.size
        self.policy.record_remove(key)
        if self.on_remove is not None:
            self.on_remove(entry)
