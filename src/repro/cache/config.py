"""Cluster-level cache configuration.

Caching is *opt-in per cluster*: the figure-reproduction benchmarks measure
cold executions (the regime the paper reports), so a cluster built without a
:class:`CacheConfig` behaves byte-for-byte like the cache-less system.  The
cache-traffic benchmarks, the examples and any long-lived deployment pass a
config to turn the subsystem on.
"""

from __future__ import annotations

from dataclasses import dataclass

from .node import NodeCache
from .policies import POLICY_GREEDY_DUAL, make_policy
from .result import SemanticResultCache


@dataclass(frozen=True)
class CacheConfig:
    """Byte budgets and eviction policy for every cache of a cluster."""

    #: Budget of each node's page/tuple/coordinator/resolution cache.
    node_budget_bytes: int = 32_000_000
    #: Budget of each node's initiator-side semantic result cache.
    result_budget_bytes: int = 16_000_000
    #: Eviction policy name ("lru" or "greedy-dual").
    policy: str = POLICY_GREEDY_DUAL
    #: Whether query initiators keep a semantic result cache at all.
    result_cache: bool = True

    def build_node_cache(self, address: str) -> NodeCache:
        return NodeCache(
            self.node_budget_bytes,
            policy=make_policy(self.policy),
            name=f"{address}/node-cache",
        )

    def build_result_cache(self, address: str) -> SemanticResultCache | None:
        if not self.result_cache:
            return None
        return SemanticResultCache(
            self.result_budget_bytes,
            policy=make_policy(self.policy),
            name=f"{address}/result-cache",
        )
