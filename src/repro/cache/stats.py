"""Hit/miss/byte-saved counters shared by every cache tier.

The counters deliberately mirror what the traffic benchmarks report: a *hit*
records the ``benefit`` of the entry — the bytes that would have crossed the
simulated network on a miss — so ``bytes_saved`` is directly comparable to
the :class:`~repro.net.simnet.TrafficMeter` deltas the figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Counters for one cache store (or an aggregate over several)."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    rejected: int = 0
    bytes_saved: int = 0
    #: Per-kind hit/miss breakdown, keyed by the entry-kind tag (the first
    #: element of namespaced cache keys: "coord", "page", "scan", ...).
    hits_by_kind: dict[str, int] = field(default_factory=dict)
    misses_by_kind: dict[str, int] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def record_hit(self, kind: str, benefit: float) -> None:
        self.hits += 1
        self.bytes_saved += int(benefit)
        self.hits_by_kind[kind] = self.hits_by_kind.get(kind, 0) + 1

    def record_miss(self, kind: str) -> None:
        self.misses += 1
        self.misses_by_kind[kind] = self.misses_by_kind.get(kind, 0) + 1

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Accumulate ``other`` into this instance (used for cluster totals)."""
        self.hits += other.hits
        self.misses += other.misses
        self.insertions += other.insertions
        self.evictions += other.evictions
        self.invalidations += other.invalidations
        self.rejected += other.rejected
        self.bytes_saved += other.bytes_saved
        for kind, count in other.hits_by_kind.items():
            self.hits_by_kind[kind] = self.hits_by_kind.get(kind, 0) + count
        for kind, count in other.misses_by_kind.items():
            self.misses_by_kind[kind] = self.misses_by_kind.get(kind, 0) + count
        return self

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "rejected": self.rejected,
            "bytes_saved": self.bytes_saved,
            "hits_by_kind": dict(self.hits_by_kind),
            "misses_by_kind": dict(self.misses_by_kind),
        }

    def to_dict(self) -> dict:
        """Common stats-serialization protocol (see :mod:`repro.obs.metrics`)."""
        return self.as_dict()

    def metric_series(self, tier: str = ""):
        """Registry samples: ``cache.hits{tier=...}``, per-kind breakdowns."""
        tags = {"tier": tier} if tier else {}
        samples = [
            ("cache.hits", dict(tags), self.hits),
            ("cache.misses", dict(tags), self.misses),
            ("cache.insertions", dict(tags), self.insertions),
            ("cache.evictions", dict(tags), self.evictions),
            ("cache.invalidations", dict(tags), self.invalidations),
            ("cache.rejected", dict(tags), self.rejected),
            ("cache.bytes_saved", dict(tags), self.bytes_saved),
        ]
        for kind in sorted(self.hits_by_kind):
            samples.append(
                ("cache.hits", {**tags, "kind": kind}, self.hits_by_kind[kind])
            )
        for kind in sorted(self.misses_by_kind):
            samples.append(
                ("cache.misses", {**tags, "kind": kind}, self.misses_by_kind[kind])
            )
        return samples
