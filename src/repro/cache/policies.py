"""Eviction policies for the version-keyed caches.

A policy only decides *which* entry to evict when the store is over its byte
budget; the :class:`~repro.cache.store.CacheStore` owns the entries, the byte
accounting and the statistics.  Two policies are provided:

* :class:`LruPolicy` — classic least-recently-used, the baseline every cache
  paper compares against.
* :class:`GreedyDualPolicy` — a GreedyDual-Size variant that weighs the
  *benefit* of an entry (the bytes that would cross the simulated network if
  the entry had to be re-fetched) against its footprint.  Entries are scored
  ``H = L + benefit / size`` where ``L`` is the running inflation value; on
  eviction ``L`` rises to the victim's score, so entries that have not been
  touched for a long time eventually lose to fresh ones even if their
  per-byte benefit is high.  This is the right shape for the paper's
  retrieval path, where a coordinator record is tiny but saves a whole
  round-trip while a tuple batch is large but saves proportionally many
  bytes.

Both policies are deterministic (ties break by insertion order), keeping the
discrete-event simulation reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Hashable, Iterable


class EvictionPolicy:
    """Interface the cache store drives; implementations keep their own index."""

    def record_insert(self, key: Hashable, size: int, benefit: float) -> None:
        raise NotImplementedError

    def record_access(self, key: Hashable) -> None:
        raise NotImplementedError

    def record_remove(self, key: Hashable) -> None:
        raise NotImplementedError

    def choose_victim(self) -> Hashable:
        """Key to evict next; only called when at least one entry exists."""
        raise NotImplementedError


class LruPolicy(EvictionPolicy):
    """Evict the least recently used entry (inserts count as uses)."""

    def __init__(self) -> None:
        # dict preserves insertion order; re-inserting moves a key to the end.
        self._recency: dict[Hashable, None] = {}

    def record_insert(self, key: Hashable, size: int, benefit: float) -> None:
        self._recency.pop(key, None)
        self._recency[key] = None

    def record_access(self, key: Hashable) -> None:
        if key in self._recency:
            del self._recency[key]
            self._recency[key] = None

    def record_remove(self, key: Hashable) -> None:
        self._recency.pop(key, None)

    def choose_victim(self) -> Hashable:
        return next(iter(self._recency))


class GreedyDualPolicy(EvictionPolicy):
    """GreedyDual-Size over network-bytes-saved.

    Every entry carries a score ``H = L + benefit / size``; the entry with the
    lowest score is evicted and ``L`` is raised to that score (the classic
    "inflation" trick that ages untouched entries without per-access decay).
    Accessing an entry refreshes its score with the current ``L``.  The heap
    holds lazily invalidated snapshots; ``_scores`` is authoritative.
    """

    def __init__(self) -> None:
        self.inflation = 0.0
        self._scores: dict[Hashable, float] = {}
        self._value_density: dict[Hashable, float] = {}
        self._heap: list[tuple[float, int, Hashable]] = []
        self._counter = itertools.count()

    def _score(self, key: Hashable) -> float:
        return self.inflation + self._value_density[key]

    def _push(self, key: Hashable) -> None:
        score = self._score(key)
        self._scores[key] = score
        heapq.heappush(self._heap, (score, next(self._counter), key))
        # Every access pushes a fresh snapshot and stale ones are normally
        # drained in choose_victim; a store running under its budget never
        # evicts, so compact here once the garbage dominates, keeping the
        # heap O(live entries) on hit-heavy steady-state workloads.
        if len(self._heap) > 64 and len(self._heap) > 4 * len(self._scores):
            self._heap = [
                (score, next(self._counter), key)
                for key, score in self._scores.items()
            ]
            heapq.heapify(self._heap)

    def record_insert(self, key: Hashable, size: int, benefit: float) -> None:
        self._value_density[key] = benefit / max(1, size)
        self._push(key)

    def record_access(self, key: Hashable) -> None:
        if key in self._value_density:
            self._push(key)

    def record_remove(self, key: Hashable) -> None:
        self._scores.pop(key, None)
        self._value_density.pop(key, None)

    def choose_victim(self) -> Hashable:
        while self._heap:
            score, _seq, key = self._heap[0]
            if self._scores.get(key) != score:
                heapq.heappop(self._heap)  # stale snapshot
                continue
            self.inflation = max(self.inflation, score)
            return key
        raise LookupError("choose_victim called on an empty policy")


#: Policy names accepted by :class:`~repro.cache.config.CacheConfig`.
POLICY_LRU = "lru"
POLICY_GREEDY_DUAL = "greedy-dual"


def make_policy(name: str) -> EvictionPolicy:
    """Instantiate an eviction policy from its configuration name."""
    if name == POLICY_LRU:
        return LruPolicy()
    if name == POLICY_GREEDY_DUAL:
        return GreedyDualPolicy()
    raise ValueError(f"unknown eviction policy {name!r}")


def policy_names() -> Iterable[str]:
    return (POLICY_LRU, POLICY_GREEDY_DUAL)
