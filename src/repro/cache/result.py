"""Initiator-side semantic result cache.

A distributed query's answer is fully determined by (a) the canonical shape
of its physical plan and (b) the exact relation-version epochs its scans
resolved to.  Published versions are immutable, so a cached result keyed by
``(plan fingerprint, requested epoch)`` whose recorded resolutions still hold
can be returned without touching the network at all — no plan dissemination,
no scans, no ship exchange.

Staleness has exactly one source: a *later* publish whose epoch is ≤ the
requested epoch would change what the scans resolve to.  Two hooks cover it:

* :meth:`note_publish` (exact) — invalidates entries that scanned the
  published relation at an older resolution and whose requested epoch covers
  the new version;
* :meth:`note_epoch` (conservative) — driven by the epoch gossip, which
  carries no relation name: every entry whose requested epoch is ≥ the newly
  announced epoch is dropped.  Entries pinned to strictly older epochs are
  immutable and survive, which is what keeps warm repeats hitting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from ..common.types import Value
from .policies import EvictionPolicy
from .stats import CacheStats
from .store import CacheStore

KIND_RESULT = "result"


def plan_fingerprint(plan) -> Hashable:
    """Canonical, hashable fingerprint of a physical plan's semantics.

    Two plans that produce the same rows for the same stored data map to the
    same fingerprint: operator ids, optimizer bookkeeping and object identity
    are excluded; expressions enter through their (deterministic) ``repr``.
    The tree shape is preserved by nesting, so a fingerprint collision would
    require structurally identical plans.
    """
    # Imported lazily: repro.query.service imports this module, so a
    # module-level import of repro.query.physical would be circular.
    from ..query.physical import (
        PhysAggregate,
        PhysHashJoin,
        PhysProject,
        PhysRehash,
        PhysScan,
        PhysSelect,
        PhysShip,
    )

    def visit(op) -> tuple:
        children = tuple(visit(child) for child in op.children())
        if isinstance(op, PhysScan):
            # The pushed predicates, the narrowed projection and the pruning
            # candidates are all part of the scan's semantics: two plans that
            # push different predicates (or prune different pages) must not
            # share a cached answer.
            descriptor = (
                "scan", op.schema.name, tuple(op.columns), op.epoch,
                repr(op.sargable), repr(op.residual), op.covering,
                tuple(op.prune_hashes) if op.prune_hashes is not None else None,
            )
        elif isinstance(op, PhysSelect):
            descriptor = ("select", repr(op.predicate))
        elif isinstance(op, PhysProject):
            descriptor = ("project", tuple((name, repr(expr)) for name, expr in op.outputs))
        elif isinstance(op, PhysHashJoin):
            descriptor = ("join", tuple(op.left_keys), tuple(op.right_keys))
        elif isinstance(op, PhysRehash):
            descriptor = ("rehash", tuple(op.keys))
        elif isinstance(op, PhysAggregate):
            descriptor = (
                "aggregate", tuple(op.group_by),
                tuple(repr(spec) for spec in op.aggregates), op.merge_partials,
            )
        elif isinstance(op, PhysShip):
            descriptor = (
                "ship", op.collector_mode, tuple(op.group_by),
                tuple(repr(spec) for spec in op.aggregates),
                tuple(op.order_by), op.limit,
            )
        else:  # forward-compatible: new operators fall back to their repr
            descriptor = (type(op).__name__, repr(op))
        return descriptor + (children,)

    return visit(plan.root)


@dataclass
class CachedResult:
    """One cached query answer plus the versions it was computed against."""

    attributes: tuple[str, ...]
    rows: tuple[tuple[Value, ...], ...]
    #: One triple per leaf scan: ``(relation, resolved epoch, pinned epoch)``.
    #: ``pinned`` is the epoch the plan hard-codes for that scan (None when
    #: the scan follows the query's requested epoch).  Each scan is kept
    #: separately — a hand-built plan may read the same relation at two
    #: different epochs.
    scans: tuple[tuple[str, int, int | None], ...]
    #: Requested epoch of the query that produced the entry.
    epoch: int
    #: Network bytes the cold execution shipped (= bytes a hit saves).
    cold_bytes: int

    def scan_bound(self, scan: tuple[str, int, int | None], epoch: int) -> int:
        """Newest publish epoch a scan would see for a query at ``epoch``."""
        _relation, _resolved, pinned = scan
        return pinned if pinned is not None else epoch

    def estimated_size(self) -> int:
        from ..common.types import estimate_values_size

        return 128 + sum(estimate_values_size(row) for row in self.rows)


class SemanticResultCache:
    """Plan-fingerprint → result cache for one query initiator."""

    def __init__(
        self,
        byte_budget: int,
        policy: EvictionPolicy | None = None,
        name: str = "result-cache",
    ) -> None:
        self.store = CacheStore(byte_budget, policy=policy, name=name,
                                on_remove=self._on_entry_removed)
        #: Secondary index fingerprint → cached requested epochs, so a lookup
        #: never scans unrelated entries (kept in sync through ``on_remove``).
        self._by_fingerprint: dict[Hashable, set[int]] = {}
        #: Publish epochs learnt per relation (via :meth:`note_publish`); the
        #: ground truth for deciding whether a cached entry still answers a
        #: given epoch.  Unbounded only by the number of distinct publishes.
        self._published: dict[str, list[int]] = {}
        self._attributed_epochs: set[int] = set()
        #: Epochs the gossip announced whose relation we never learnt: they
        #: must be assumed to affect *any* relation until attributed.
        self._wildcard_epochs: set[int] = set()
        #: Monotone counter bumped by every invalidation event (publish or
        #: newly learnt epoch).  The query service compares it across a
        #: query's lifetime to detect a publish racing the execution — a
        #: result whose scans may straddle the publish must not be cached.
        self.publish_seq = 0

    @property
    def stats(self) -> CacheStats:
        return self.store.stats

    def clear(self) -> None:
        """Drop every entry and all publish knowledge (crash-restart).

        ``publish_seq`` keeps counting monotonically so any comparison taken
        across the restart still reads as "something changed".
        """
        self.store.clear()
        self._by_fingerprint.clear()
        self._published.clear()
        self._attributed_epochs.clear()
        self._wildcard_epochs.clear()
        self.publish_seq += 1

    def _on_entry_removed(self, entry) -> None:
        epochs = self._by_fingerprint.get(entry.key[1])
        if epochs is not None:
            epochs.discard(entry.key[2])
            if not epochs:
                del self._by_fingerprint[entry.key[1]]

    # -- lookup / store --------------------------------------------------------

    def lookup(self, fingerprint: Hashable, epoch: int) -> CachedResult | None:
        """Best cached answer for the query ``fingerprint`` at ``epoch``.

        Every candidate — the exact ``(fingerprint, epoch)`` entry included —
        is validated against the publishes learnt so far, so entries whose
        scanned versions a later publish superseded are never served, while
        an entry cached at an *older* requested epoch keeps answering newer
        ones (a publish of an unrelated relation mints a fresh cluster epoch
        but must not turn every warm query cold).
        """
        for entry_epoch in sorted(
            (e for e in self._by_fingerprint.get(fingerprint, ()) if e <= epoch),
            reverse=True,
        ):
            key = (KIND_RESULT, fingerprint, entry_epoch)
            cached = self.store.peek(key)
            if cached is None:
                continue
            if self._is_current(cached, epoch):
                return self.store.get(key)
            if entry_epoch == epoch:
                # Stale at its own requested epoch: publishes only accumulate,
                # so this entry can never become valid again — drop it.
                self.store.invalidate(key)
        self.store.stats.record_miss(KIND_RESULT)
        return None

    def _is_current(self, cached: "CachedResult", epoch: int) -> bool:
        """Would a re-run at ``epoch`` resolve to the same scanned versions?"""
        for scan in cached.scans:
            _relation, resolved, _pinned = scan
            bound = cached.scan_bound(scan, epoch)
            for published in self._published.get(scan[0], ()):
                if resolved < published <= bound:
                    return False
            for wildcard in self._wildcard_epochs:
                if resolved < wildcard <= bound:
                    return False
        return True

    def contains(self, fingerprint: Hashable, epoch: int) -> bool:
        return (KIND_RESULT, fingerprint, epoch) in self.store

    def store_result(
        self,
        fingerprint: Hashable,
        epoch: int,
        attributes: Sequence[str],
        rows: Sequence[tuple[Value, ...]],
        scans: Iterable[tuple[str, int, int | None]],
        cold_bytes: int,
    ) -> bool:
        entry = CachedResult(
            attributes=tuple(attributes),
            rows=tuple(tuple(row) for row in rows),
            scans=tuple((relation, resolved, pinned) for relation, resolved, pinned in scans),
            epoch=epoch,
            cold_bytes=int(cold_bytes),
        )
        # A hit saves the entire cold execution's traffic, not just the result
        # bytes — that is the benefit GreedyDual weighs under pressure.
        stored = self.store.put(
            (KIND_RESULT, fingerprint, epoch),
            entry,
            entry.estimated_size(),
            benefit=max(entry.cold_bytes, entry.estimated_size()),
        )
        if stored:
            self._by_fingerprint.setdefault(fingerprint, set()).add(epoch)
        return stored

    # -- invalidation ----------------------------------------------------------

    def note_publish(self, relation: str, epoch: int) -> int:
        """Exact invalidation: ``relation`` gained a new version at ``epoch``.

        An entry goes stale iff it scanned that relation at a resolution older
        than ``epoch`` *and* the scan's epoch bound covers the new version — a
        re-run would now resolve the scan to the fresh epoch.  The publish is
        also recorded so :meth:`lookup` can keep reusing entries the publish
        does *not* affect at later epochs.
        """
        epochs = self._published.setdefault(relation, [])
        if epoch not in epochs:
            epochs.append(epoch)
        self.publish_seq += 1
        self._attributed_epochs.add(epoch)
        self._wildcard_epochs.discard(epoch)

        def stale(_key, entry: CachedResult) -> bool:
            # ``<=`` on the resolution side: republishing at the very epoch a
            # scan resolved to rewrites that version in place, so entries that
            # read it are stale too.  (Entries stored *after* this publish
            # resolve to the rewritten version and are created later, so the
            # event ordering of note_publish keeps them safe; the timeless
            # ``_is_current`` predicate stays strict for that reason.)
            return any(
                scan[0] == relation
                and scan[1] <= epoch <= entry.scan_bound(scan, entry.epoch)
                for scan in entry.scans
            )

        return self.store.invalidate_where(stale)

    def note_epoch(self, epoch: int) -> int:
        """Conservative gossip guard: drop entries covering the new epoch.

        Gossip carries no relation name, so until (unless) the publish is
        attributed through :meth:`note_publish` the epoch is remembered as a
        wildcard that blocks reuse of any entry it could affect.
        """
        if epoch not in self._attributed_epochs:
            self._wildcard_epochs.add(epoch)
        self.publish_seq += 1
        return self.store.invalidate_where(
            lambda _key, entry: any(
                scan[1] < epoch <= entry.scan_bound(scan, entry.epoch)
                for scan in entry.scans
            )
        )
