"""Version-keyed multi-tier caching subsystem.

Published relation versions are immutable: a new epoch creates new page
versions and *shares* unchanged ones, so anything addressed by
``(relation, epoch)`` or by a page version can be cached without a
coherence protocol.  This package exploits that across three tiers:

* :class:`~repro.cache.store.CacheStore` — the generic byte-budgeted store
  with pluggable eviction (:mod:`repro.cache.policies`: LRU and a cost-aware
  GreedyDual-Size policy weighing bytes-over-network saved);
* :class:`~repro.cache.node.NodeCache` — the per-node cache of coordinator
  records, index pages, per-page tuple batches and epoch resolutions used by
  the storage client/service (Algorithm 1's retrieval path);
* :class:`~repro.cache.result.SemanticResultCache` — the initiator-side
  query-result cache keyed by a canonical plan fingerprint plus the exact
  relation-version epochs the query scanned, invalidated precisely when a
  newer covering version is published.

:class:`~repro.cache.config.CacheConfig` wires all of it into a
:class:`~repro.cluster.Cluster`; :class:`~repro.cache.node.CacheResidency`
feeds cache residency into the optimizer's cost model.
"""

from .config import CacheConfig
from .node import CacheResidency, NodeCache
from .policies import (
    POLICY_GREEDY_DUAL,
    POLICY_LRU,
    EvictionPolicy,
    GreedyDualPolicy,
    LruPolicy,
    make_policy,
)
from .result import CachedResult, SemanticResultCache, plan_fingerprint
from .stats import CacheStats
from .store import CacheEntry, CacheStore

__all__ = [
    "CacheConfig",
    "CacheEntry",
    "CacheResidency",
    "CacheStats",
    "CacheStore",
    "CachedResult",
    "EvictionPolicy",
    "GreedyDualPolicy",
    "LruPolicy",
    "NodeCache",
    "POLICY_GREEDY_DUAL",
    "POLICY_LRU",
    "SemanticResultCache",
    "make_policy",
    "plan_fingerprint",
]
