"""Admission-controlled operation scheduler.

Serving heavy traffic means protecting the cluster from its own clients: an
unbounded number of concurrent queries would pile onto the participants'
CPUs and links until every operation's latency explodes.  The
:class:`Scheduler` bounds that with classic admission control:

* a cluster-wide cap on concurrently *running* operations
  (``max_in_flight_total``) plus a per-initiator cap
  (``max_in_flight_per_initiator``) so one tenant cannot monopolise the
  cluster;
* a bounded admission queue — submissions beyond the caps wait, and beyond
  ``queue_capacity`` they are rejected outright (load shedding);
* two dequeue policies: ``fifo`` (global arrival order) and ``fair``
  (round-robin across initiators, so a burst from one tenant does not starve
  the others);
* per-operation timeouts and best-effort cancellation.

The scheduler is event-driven like everything else: admission happens
synchronously at submission when a slot is free — which keeps the
single-operation path byte-identical to the pre-runtime blocking wrappers —
and otherwise inside the completion callback that frees a slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..net.simnet import Network
from .futures import (
    PENDING,
    QUEUED,
    RUNNING,
    AdmissionRejectedError,
    DeadlineExceededError,
    OpFuture,
    OpTimeoutError,
)

POLICY_FIFO = "fifo"
POLICY_FAIR = "fair"


@dataclass(frozen=True)
class SchedulerConfig:
    """Admission-control knobs for one :class:`Scheduler`."""

    #: Maximum operations running concurrently, cluster-wide.
    max_in_flight_total: int = 8
    #: Maximum operations running concurrently per initiating node.
    max_in_flight_per_initiator: int = 4
    #: Maximum operations waiting for admission; submissions beyond this are
    #: rejected with :class:`AdmissionRejectedError`.
    queue_capacity: int = 1024
    #: Dequeue policy: ``"fifo"`` or ``"fair"`` (round-robin per initiator).
    policy: str = POLICY_FIFO
    #: Brownout: with the admission queue at or beyond this depth the
    #: scheduler degrades gracefully — deadline-carrying submissions that
    #: cannot also cover the *expected queue wait* are shed at submission.
    #: ``0`` (the default) disables brownout entirely.
    brownout_queue_threshold: int = 0
    #: Queue depth at which brownout ends (defaults to half the entry
    #: threshold, giving the mode hysteresis instead of flapping).
    brownout_exit_threshold: int | None = None
    #: EWMA smoothing for the per-op-type service-time estimates that
    #: deadline shedding judges remaining budgets against.
    service_estimate_alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.max_in_flight_total < 1:
            raise ValueError("max_in_flight_total must be at least 1")
        if self.max_in_flight_per_initiator < 1:
            raise ValueError("max_in_flight_per_initiator must be at least 1")
        if self.queue_capacity < 0:
            raise ValueError("queue_capacity cannot be negative")
        if self.policy not in (POLICY_FIFO, POLICY_FAIR):
            raise ValueError(f"unknown admission policy {self.policy!r}")
        if self.brownout_queue_threshold < 0:
            raise ValueError("brownout_queue_threshold cannot be negative")
        if (
            self.brownout_exit_threshold is not None
            and not 0 <= self.brownout_exit_threshold <= self.brownout_queue_threshold
        ):
            raise ValueError(
                "brownout_exit_threshold must lie within [0, brownout_queue_threshold]"
            )
        if not 0.0 < self.service_estimate_alpha <= 1.0:
            raise ValueError("service_estimate_alpha must be within (0, 1]")

    @property
    def brownout_exit(self) -> int:
        if self.brownout_exit_threshold is not None:
            return self.brownout_exit_threshold
        return self.brownout_queue_threshold // 2


@dataclass
class SchedulerStats:
    """Counters for everything the scheduler decided."""

    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    cancelled: int = 0
    timed_out: int = 0
    #: Currently running / currently waiting operations.
    in_flight: int = 0
    queued: int = 0
    #: High-water marks, the quantities the admission caps are judged by.
    max_in_flight: int = 0
    peak_queued: int = 0
    #: Deadline-aware shedding: entries dropped because their remaining
    #: budget could not cover the estimated service time (``shed_deadline``)
    #: or, under brownout, the service time plus the expected queue wait
    #: (``shed_brownout``).  Both are sub-reasons of ``failed``.
    shed_deadline: int = 0
    shed_brownout: int = 0
    #: Times the scheduler entered brownout, and whether it is in it now.
    brownouts: int = 0
    brownout_active: bool = False
    admitted_by_initiator: dict[str, int] = field(default_factory=dict)

    @property
    def shed(self) -> int:
        return self.shed_deadline + self.shed_brownout

    def snapshot(self) -> dict:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "timed_out": self.timed_out,
            "in_flight": self.in_flight,
            "queued": self.queued,
            "max_in_flight": self.max_in_flight,
            "peak_queued": self.peak_queued,
            "shed_deadline": self.shed_deadline,
            "shed_brownout": self.shed_brownout,
            "brownouts": self.brownouts,
            "brownout_active": self.brownout_active,
            "admitted_by_initiator": dict(self.admitted_by_initiator),
        }

    def to_dict(self) -> dict:
        """Common stats-serialization protocol (see :mod:`repro.obs.metrics`)."""
        return self.snapshot()

    def metric_series(self):
        """Registry samples: ``scheduler.admitted{initiator=...}`` etc."""
        samples = [
            ("scheduler.submitted", {}, self.submitted),
            ("scheduler.admitted", {}, self.admitted),
            ("scheduler.completed", {}, self.completed),
            ("scheduler.failed", {}, self.failed),
            ("scheduler.rejected", {}, self.rejected),
            ("scheduler.cancelled", {}, self.cancelled),
            ("scheduler.timed_out", {}, self.timed_out),
            ("scheduler.in_flight", {}, self.in_flight),
            ("scheduler.queued", {}, self.queued),
            ("scheduler.max_in_flight", {}, self.max_in_flight),
            ("scheduler.peak_queued", {}, self.peak_queued),
            ("scheduler.shed", {"reason": "deadline"}, self.shed_deadline),
            ("scheduler.shed", {"reason": "brownout"}, self.shed_brownout),
            ("scheduler.brownouts", {}, self.brownouts),
            ("scheduler.brownout_active", {}, int(self.brownout_active)),
        ]
        for initiator in sorted(self.admitted_by_initiator):
            samples.append(
                (
                    "scheduler.admitted",
                    {"initiator": initiator},
                    self.admitted_by_initiator[initiator],
                )
            )
        return samples


@dataclass
class _QueuedOp:
    future: OpFuture
    launch: Callable[[], None]


class Scheduler:
    """Admission control over asynchronous cluster operations."""

    def __init__(
        self,
        network: Network,
        config: SchedulerConfig | None = None,
        metrics=None,
    ) -> None:
        self.network = network
        self.config = config or SchedulerConfig()
        self.stats = SchedulerStats()
        #: Virtual-time end-to-end latency histogram, one series per
        #: ``{kind, initiator}`` tag set — the scheduler is the one place
        #: every operation passes through, so it observes for all of them.
        self._op_latency = (
            metrics.histogram("op.latency") if metrics is not None else None
        )
        self._running: set[OpFuture] = set()
        self._running_per_initiator: dict[str, int] = {}
        #: FIFO queue (also the arrival-order ground truth for ``fair``'s
        #: per-initiator sub-queues, which are views keyed by initiator).
        self._queue: list[_QueuedOp] = []
        self._per_initiator_queues: dict[str, list[_QueuedOp]] = {}
        #: Round-robin cursor over initiator names for the fair policy.
        self._fair_cursor = 0
        #: EWMA service-time estimate per op type, fed by every resolved
        #: running operation; the basis for deadline-aware shedding.
        self._service_estimates: dict[str, float] = {}

    # -- deadline-aware shedding --------------------------------------------------

    def service_estimate(self, op_type: str) -> float | None:
        """Current smoothed service-time estimate for ``op_type`` (if any)."""
        return self._service_estimates.get(op_type)

    def _observe_service_time(self, future: OpFuture) -> None:
        # Runs inside ``_resolve`` before the future's ``completed_at`` is
        # stamped, so the sample is measured against the clock directly.
        if future.admitted_at is None:
            return
        sample = self.network.now - future.admitted_at
        current = self._service_estimates.get(future.op_type)
        if current is None:
            self._service_estimates[future.op_type] = sample
        else:
            alpha = self.config.service_estimate_alpha
            self._service_estimates[future.op_type] = current + alpha * (
                sample - current
            )

    def _update_brownout(self) -> None:
        threshold = self.config.brownout_queue_threshold
        if threshold <= 0:
            return
        if not self.stats.brownout_active and self.stats.queued >= threshold:
            self.stats.brownout_active = True
            self.stats.brownouts += 1
        elif self.stats.brownout_active and self.stats.queued <= self.config.brownout_exit:
            self.stats.brownout_active = False

    def _should_shed(self, future: OpFuture, queued_ahead: int) -> str | None:
        """Reason to shed ``future`` now, or None if its deadline is feasible.

        The base test sheds only the definitely-doomed: remaining budget
        below the estimated service time.  Brownout stiffens it with the
        expected queue wait (estimate x queue depth over the concurrency
        cap), trading borderline work away early to keep the rest inside
        their deadlines instead of timing everything out together.
        """
        if future.deadline is None:
            return None
        estimate = self._service_estimates.get(future.op_type)
        if estimate is None:
            return None  # nothing observed yet; admit and let the watchdog judge
        remaining = future.deadline - self.network.now
        if remaining < estimate:
            return "deadline"
        if self.stats.brownout_active:
            expected_wait = estimate * (
                queued_ahead / self.config.max_in_flight_total
            )
            if remaining < estimate + expected_wait:
                return "brownout"
        return None

    def _shed(self, future: OpFuture, reason: str) -> None:
        if reason == "deadline":
            self.stats.shed_deadline += 1
        else:
            self.stats.shed_brownout += 1
        self.stats.failed += 1
        self._resolve(
            future,
            lambda now: future._set_error(
                DeadlineExceededError(
                    f"{future.describe()} shed ({reason}): remaining deadline "
                    "budget cannot cover the estimated service time"
                ),
                now,
            ),
        )

    # -- submission -------------------------------------------------------------

    def submit(
        self,
        future: OpFuture,
        launch: Callable[[], None],
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> OpFuture:
        """Admit ``future`` (launching it) or queue it, by the configured caps.

        ``launch`` starts the underlying protocol; its completion callbacks
        must resolve the future through :meth:`complete` / :meth:`fail`.
        ``timeout`` (simulated seconds, measured from submission) fails the
        operation with :class:`OpTimeoutError` if it has not finished in time.
        ``deadline`` (also relative seconds) additionally opts the operation
        into deadline-aware shedding: if the remaining budget cannot cover
        the estimated service time — judged at submission and again at every
        admission — the operation fails immediately with
        :class:`DeadlineExceededError` instead of holding resources until the
        watchdog fires.  A deadline with no explicit timeout arms the
        watchdog at the deadline.
        """
        future._scheduler = self
        future._mark_submitted(self.network.now)
        self.stats.submitted += 1
        if deadline is not None:
            future.deadline = self.network.now + deadline
            if timeout is None:
                timeout = deadline
        if timeout is not None:
            future._timeout_event = self.network.schedule(
                timeout, lambda: self._on_timeout(future)
            )
        if self._has_slot_for(future.initiator):
            reason = self._should_shed(future, queued_ahead=0)
            if reason is not None:
                self._shed(future, reason)
                return future
            self._start(future, launch)
            return future
        self._update_brownout()
        reason = self._should_shed(future, queued_ahead=self.stats.queued)
        if reason is not None:
            self._shed(future, reason)
            return future
        if self.stats.queued >= self.config.queue_capacity:
            self.stats.rejected += 1
            future._set_error(
                AdmissionRejectedError(
                    f"admission queue full ({self.config.queue_capacity} waiting); "
                    f"{future.describe()} rejected"
                ),
                self.network.now,
            )
            return future
        entry = _QueuedOp(future, launch)
        future._mark_queued()
        self._queue.append(entry)
        self._per_initiator_queues.setdefault(future.initiator, []).append(entry)
        self.stats.queued += 1
        self.stats.peak_queued = max(self.stats.peak_queued, self.stats.queued)
        return future

    # -- resolution (called by the sessions' completion callbacks) --------------

    def complete(self, future: OpFuture, result: object) -> None:
        """Resolve ``future`` with ``result`` and free its admission slot.

        A completion arriving after the future already finished (timeout or
        cancellation won the race) is discarded — the slot was freed then.
        """
        if future.done():
            return
        self.stats.completed += 1
        self._resolve(future, lambda now: future._set_result(result, now))

    def fail(self, future: OpFuture, error: Exception) -> None:
        """Resolve ``future`` with ``error`` and free its admission slot."""
        if future.done():
            return
        self.stats.failed += 1
        self._resolve(future, lambda now: future._set_error(error, now))

    def _resolve(self, future: OpFuture, apply: Callable[[float], None]) -> None:
        """Free the future's admission slot, settle it, then admit the queue.

        The slot is freed *before* ``apply`` fires the done-callbacks so a
        closed-loop client chaining its next operation from the callback sees
        accurate in-flight accounting; queued operations are admitted after,
        preserving their arrival-order priority over anything the callbacks
        just submitted.
        """
        if future._timeout_event is not None:
            # The watchdog is moot now; cancelling it keeps the event loop
            # from idling the virtual clock out to the unused deadline.
            future._timeout_event.cancel()
        was_queued = future.state == QUEUED
        was_running = future in self._running
        if was_queued:
            self.stats.queued -= 1  # dead entries are skipped lazily on dequeue
        elif was_running:
            self._free_slot(future)
            self._admit_next()
        root_span = getattr(future, "_root_span", None)
        if root_span is not None and self.network.tracer is not None:
            self.network.tracer.end_span(root_span, self.network.now)
        if was_running:
            self._observe_service_time(future)
        if self._op_latency is not None and future.submitted_at is not None:
            self._op_latency.observe(
                self.network.now - future.submitted_at,
                kind=future.op_type,
                initiator=future.initiator,
            )
        apply(self.network.now)

    # -- timeouts / cancellation ------------------------------------------------

    def _on_timeout(self, future: OpFuture) -> None:
        if future.done():
            return
        self.stats.timed_out += 1
        self._resolve(
            future,
            lambda now: future._set_error(
                OpTimeoutError(f"{future.describe()} timed out"), now
            ),
        )

    def _cancel(self, future: OpFuture) -> bool:
        if future.done():
            return False
        self.stats.cancelled += 1
        self._resolve(future, lambda now: future._set_cancelled(now))
        return True

    def fail_initiator_ops(self, initiator: str, error: Exception) -> int:
        """Fail every queued or running operation initiated from ``initiator``.

        Called when the initiating node crashes: its client-side protocol
        state died with it, so the operations can never complete on their own
        — resolving them here is what keeps the conservation invariant (every
        submitted operation resolves exactly once) under crash-restart.
        Queued entries are failed first so freeing the running ops' slots does
        not launch doomed work from the same initiator.  Returns the number
        of operations failed.
        """
        queued = [
            entry.future
            for entry in self._queue
            if entry.future.initiator == initiator and entry.future.state == QUEUED
        ]
        running = [f for f in self._running if f.initiator == initiator]
        count = 0
        for future in queued + running:
            if future.done():
                continue
            count += 1
            self.fail(future, error)
        return count

    # -- internals --------------------------------------------------------------

    def _has_slot_for(self, initiator: str) -> bool:
        return (
            len(self._running) < self.config.max_in_flight_total
            and self._running_per_initiator.get(initiator, 0)
            < self.config.max_in_flight_per_initiator
        )

    def _start(self, future: OpFuture, launch: Callable[[], None]) -> None:
        self._running.add(future)
        self._running_per_initiator[future.initiator] = (
            self._running_per_initiator.get(future.initiator, 0) + 1
        )
        self.stats.admitted += 1
        self.stats.in_flight = len(self._running)
        self.stats.max_in_flight = max(self.stats.max_in_flight, self.stats.in_flight)
        by_initiator = self.stats.admitted_by_initiator
        by_initiator[future.initiator] = by_initiator.get(future.initiator, 0) + 1
        future._mark_running(self.network.now)
        tracer = self.network.tracer
        token = None
        if tracer is not None:
            # One operation = one trace.  The root span is opened fresh (not
            # parented on whatever message handler the submission happened to
            # run inside) so chained operations do not merge into one tree.
            name = f"{future.op_type}:{future.label}" if future.label else future.op_type
            span = tracer.start_trace(
                name,
                future.initiator,
                self.network.now,
                attrs={"kind": future.op_type, "initiator": future.initiator},
            )
            future._root_span = span
            future.trace_id = span.trace_id
            token = tracer.activate(span)
        try:
            try:
                launch()
            finally:
                if token is not None:
                    tracer.deactivate(token)
        except Exception as exc:
            # A launch that blows up synchronously must not leak its
            # admission slot (nor, when admitted from the queue inside
            # another op's completion, abort that drain): the error becomes
            # the operation's result.
            if future.done():
                raise
            self.fail(future, exc)

    def _free_slot(self, future: OpFuture) -> None:
        self._running.discard(future)
        remaining = self._running_per_initiator.get(future.initiator, 0) - 1
        if remaining > 0:
            self._running_per_initiator[future.initiator] = remaining
        else:
            self._running_per_initiator.pop(future.initiator, None)
        self.stats.in_flight = len(self._running)

    def _admit_next(self) -> None:
        while self.stats.queued > 0:
            entry = (
                self._pop_fair() if self.config.policy == POLICY_FAIR else self._pop_fifo()
            )
            if entry is None:
                return  # nothing admissible under the per-initiator caps
            self.stats.queued -= 1
            self._update_brownout()
            # Re-judge the deadline with the time actually spent queued: an
            # entry that became infeasible while waiting is shed here, and
            # the freed slot goes to the next queued operation instead.
            reason = self._should_shed(entry.future, queued_ahead=self.stats.queued)
            if reason is not None:
                # Already popped and accounted for: leave the QUEUED state
                # before resolving so ``_resolve`` does not decrement the
                # queue gauge a second time.
                entry.future.state = PENDING
                self._shed(entry.future, reason)
                continue
            self._start(entry.future, entry.launch)

    def _pop_fifo(self) -> _QueuedOp | None:
        """First live entry, in arrival order, whose initiator has a free slot."""
        index = 0
        while index < len(self._queue):
            entry = self._queue[index]
            if entry.future.state != QUEUED:
                # Cancelled or timed out while waiting: drop it in passing.
                del self._queue[index]
                self._drop_from_initiator_queue(entry)
                continue
            if self._has_slot_for(entry.future.initiator):
                del self._queue[index]
                self._drop_from_initiator_queue(entry)
                return entry
            index += 1
        return None

    def _pop_fair(self) -> _QueuedOp | None:
        """Next admissible entry by round-robin over the initiators."""
        initiators = sorted(self._per_initiator_queues.keys())
        if not initiators:
            return None
        start = self._fair_cursor % len(initiators)
        for offset in range(len(initiators)):
            initiator = initiators[(start + offset) % len(initiators)]
            queue = self._per_initiator_queues[initiator]
            while queue and queue[0].future.state != QUEUED:
                stale = queue.pop(0)
                self._drop_from_fifo_queue(stale)
            if not queue:
                self._per_initiator_queues.pop(initiator, None)
                continue
            if not self._has_slot_for(initiator):
                continue
            entry = queue.pop(0)
            if not queue:
                self._per_initiator_queues.pop(initiator, None)
            self._drop_from_fifo_queue(entry)
            # Advance the cursor past the initiator just served.
            self._fair_cursor = (start + offset + 1) % max(1, len(initiators))
            return entry
        return None

    def _drop_from_initiator_queue(self, entry: _QueuedOp) -> None:
        queue = self._per_initiator_queues.get(entry.future.initiator)
        if queue is None:
            return
        if entry in queue:
            queue.remove(entry)
        if not queue:
            self._per_initiator_queues.pop(entry.future.initiator, None)

    def _drop_from_fifo_queue(self, entry: _QueuedOp) -> None:
        if entry in self._queue:
            self._queue.remove(entry)

    # -- introspection ----------------------------------------------------------

    @property
    def in_flight(self) -> int:
        return len(self._running)

    @property
    def queue_depth(self) -> int:
        return self.stats.queued

    def running_ops(self) -> list[OpFuture]:
        return [f for f in self._running if f.state == RUNNING]
