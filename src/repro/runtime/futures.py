"""Futures for asynchronous cluster operations.

The engine has always been message-driven: every publish, retrieval and
query is a cascade of callbacks over the discrete-event network.  An
:class:`OpFuture` is the runtime layer's handle on one such in-flight
operation — it is resolved *by the event loop* (the completion callback of
the underlying protocol fires inside ``Network.run``), never by a thread.

Timestamps are simulated seconds.  An operation goes through up to four
stages: it is *submitted* to the scheduler, *admitted* (immediately, or
after waiting in the admission queue), *running* until the protocol's
completion callback fires, and finally *done* / *failed* / *cancelled*.
The queue delay and service time are the two latency components the
workload drivers report.
"""

from __future__ import annotations

from typing import Callable

from ..common.errors import ReproError

#: Lifecycle states of an :class:`OpFuture`.
PENDING = "pending"      #: created, not yet handed to a scheduler
QUEUED = "queued"        #: waiting in the admission queue
RUNNING = "running"      #: admitted; the underlying protocol is in flight
DONE = "done"            #: completed with a result
FAILED = "failed"        #: completed with an error
CANCELLED = "cancelled"  #: cancelled before (or while) running


class AdmissionRejectedError(ReproError):
    """The scheduler's admission queue was full when the op was submitted."""


class OpTimeoutError(ReproError):
    """The operation did not complete within its submission timeout."""


class DeadlineExceededError(OpTimeoutError):
    """The operation was shed: its deadline could not be met.

    Raised *proactively* by the scheduler's deadline-aware admission — the
    remaining budget could not cover the estimated service time (plus the
    expected queue wait, in brownout) — so the client learns immediately
    instead of holding a doomed slot until the watchdog fires.  Subclasses
    :class:`OpTimeoutError` so callers treating timeouts generically need no
    new handling.
    """


class OpCancelledError(ReproError):
    """The operation was cancelled; it has no result."""


class OpFuture:
    """Handle on one asynchronous cluster operation.

    Created by :class:`~repro.runtime.session.Session` submit methods and
    resolved by the event loop.  ``result()`` never blocks — driving the
    network (``cluster.run()`` / ``Runtime.drain``) is what makes progress —
    it raises if the future is not finished yet.
    """

    def __init__(self, op_type: str, initiator: str, label: str = "") -> None:
        self.op_type = op_type
        self.initiator = initiator
        self.label = label
        self.state = PENDING
        self.submitted_at: float | None = None
        self.admitted_at: float | None = None
        self.completed_at: float | None = None
        self._result: object = None
        self._error: Exception | None = None
        self._callbacks: list[Callable[[OpFuture], None]] = []
        #: Set by the scheduler so ``cancel()`` can be routed back to it.
        self._scheduler = None
        #: Message ``result()`` raises with when the op has not finished;
        #: sessions set an operation-specific one.
        self._incomplete: str | None = None
        #: Pending watchdog timer (cancelled by the scheduler on resolution).
        self._timeout_event = None
        #: Absolute simulated time by which the operation must finish; set by
        #: the scheduler when the submission carries a deadline, consulted by
        #: its deadline-aware shedding.
        self.deadline: float | None = None
        #: Trace identity, set by the scheduler when tracing is enabled: the
        #: operation's root span covers admission to resolution.
        self.trace_id: int | None = None
        self._root_span = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OpFuture({self.op_type}:{self.label} from {self.initiator}, {self.state})"

    def describe(self) -> str:
        return f"{self.op_type} {self.label!r}"

    # -- state queries ---------------------------------------------------------

    def done(self) -> bool:
        """True once the operation reached a terminal state."""
        return self.state in (DONE, FAILED, CANCELLED)

    def succeeded(self) -> bool:
        return self.state == DONE

    def cancelled(self) -> bool:
        return self.state == CANCELLED

    def result(self):
        """The operation's result; raises if it failed or is not finished."""
        if self.state == DONE:
            return self._result
        if self.state == FAILED:
            raise self._error
        if self.state == CANCELLED:
            raise OpCancelledError(f"{self.describe()} was cancelled")
        raise ReproError(self._incomplete or f"{self.describe()} did not complete")

    def exception(self) -> Exception | None:
        return self._error

    # -- latency components (simulated seconds) --------------------------------

    @property
    def queue_delay(self) -> float | None:
        """Time spent waiting for admission (0 when admitted immediately)."""
        if self.submitted_at is None or self.admitted_at is None:
            return None
        return self.admitted_at - self.submitted_at

    @property
    def service_time(self) -> float | None:
        """Time from admission to completion."""
        if self.admitted_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.admitted_at

    @property
    def latency(self) -> float | None:
        """End-to-end time from submission to completion."""
        if self.submitted_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    # -- callbacks -------------------------------------------------------------

    def add_done_callback(self, callback: Callable[["OpFuture"], None]) -> None:
        """Invoke ``callback(self)`` when the future finishes.

        If it already finished, the callback fires immediately (synchronously,
        in the caller's event context) — the closed-loop drivers rely on this
        to never miss a completion.
        """
        if self.done():
            callback(self)
        else:
            self._callbacks.append(callback)

    def cancel(self) -> bool:
        """Best-effort cancellation through the owning scheduler.

        A queued operation is removed from the admission queue and never
        launched.  A running operation cannot be recalled from the simulated
        network — it is marked cancelled, its admission slot is released and
        its eventual completion is discarded.  Returns False when the future
        already finished (or was never submitted).
        """
        if self._scheduler is None or self.done():
            return False
        return self._scheduler._cancel(self)

    # -- resolution (scheduler/session internal) -------------------------------

    def _mark_submitted(self, now: float) -> None:
        self.submitted_at = now

    def _mark_queued(self) -> None:
        self.state = QUEUED

    def _mark_running(self, now: float) -> None:
        self.state = RUNNING
        self.admitted_at = now

    def _finish(self, state: str, now: float) -> None:
        self.state = state
        self.completed_at = now
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _set_result(self, value: object, now: float) -> None:
        self._result = value
        self._finish(DONE, now)

    def _set_error(self, error: Exception, now: float) -> None:
        self._error = error
        self._finish(FAILED, now)

    def _set_cancelled(self, now: float) -> None:
        self._finish(CANCELLED, now)
