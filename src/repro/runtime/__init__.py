"""Concurrent runtime layer: sessions, admission control, workload drivers.

Everything below this package was already asynchronous — the storage and
query protocols are cascades of one-way messages over the discrete-event
simulator — but the public harness only ever drove them one operation at a
time.  This package is the missing top: futures resolved by the event loop
(:mod:`~repro.runtime.futures`), an admission-controlled scheduler with
per-initiator caps, bounded queueing, FIFO/fair policies, timeouts and
cancellation (:mod:`~repro.runtime.scheduler`), per-tenant sessions
(:mod:`~repro.runtime.session`) and open/closed-loop workload drivers that
measure throughput and latency percentiles under concurrent traffic
(:mod:`~repro.runtime.workload`).
"""

from .futures import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    QUEUED,
    RUNNING,
    AdmissionRejectedError,
    DeadlineExceededError,
    OpCancelledError,
    OpFuture,
    OpTimeoutError,
)
from .scheduler import (
    POLICY_FAIR,
    POLICY_FIFO,
    Scheduler,
    SchedulerConfig,
    SchedulerStats,
)
from .session import Runtime, Session
from .workload import (
    ClosedLoopDriver,
    OpenLoopDriver,
    OpRecord,
    WorkloadReport,
    percentile,
)

__all__ = [
    "AdmissionRejectedError",
    "CANCELLED",
    "ClosedLoopDriver",
    "DONE",
    "DeadlineExceededError",
    "FAILED",
    "OpCancelledError",
    "OpFuture",
    "OpRecord",
    "OpTimeoutError",
    "OpenLoopDriver",
    "PENDING",
    "POLICY_FAIR",
    "POLICY_FIFO",
    "QUEUED",
    "RUNNING",
    "Runtime",
    "Scheduler",
    "SchedulerConfig",
    "SchedulerStats",
    "Session",
    "WorkloadReport",
    "percentile",
]
