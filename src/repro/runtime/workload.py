"""Workload drivers: offered load, measured latency.

Two classic driver shapes over the session layer:

* :class:`ClosedLoopDriver` — a fixed number of clients, each with at most
  one operation outstanding: submit, wait for completion, think, repeat.
  Offered load adapts to the system (the paper's single-query measurements
  are the degenerate one-client case).
* :class:`OpenLoopDriver` — operations arrive on a Poisson process at a
  configured rate regardless of completions, the standard model for traffic
  from a large population of independent users.  Arrival times come from a
  seeded deterministic RNG, so runs are exactly reproducible.

Both record one :class:`OpRecord` per operation and return a
:class:`WorkloadReport` with aggregate throughput and latency percentiles —
the quantities a concurrency experiment sweeps offered load against.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from .futures import OpFuture
from .session import Runtime, Session

#: Signature of the operation factory both drivers call:
#: ``make_op(session, client_index, op_index) -> OpFuture``.
OpFactory = Callable[[Session, int, int], OpFuture]


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (``fraction`` in [0, 1]) of ``values``."""
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("percentile fraction must be within [0, 1]")
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


@dataclass
class OpRecord:
    """Measured outcome of one driven operation."""

    client: int
    op_index: int
    op_type: str
    label: str
    submitted_at: float
    admitted_at: float | None
    completed_at: float | None
    ok: bool
    error: str | None = None

    @property
    def latency(self) -> float | None:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    @property
    def queue_delay(self) -> float | None:
        if self.admitted_at is None:
            return None
        return self.admitted_at - self.submitted_at


@dataclass
class WorkloadReport:
    """Aggregate view of one driver run (simulated-time metrics)."""

    records: list[OpRecord]
    started_at: float
    finished_at: float
    scheduler: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.ok)

    @property
    def errors(self) -> int:
        return sum(1 for r in self.records if not r.ok)

    @property
    def throughput(self) -> float:
        """Completed operations per simulated second, over the whole run."""
        if self.duration <= 0:
            return 0.0
        return self.completed / self.duration

    def latencies(self) -> list[float]:
        return [r.latency for r in self.records if r.ok and r.latency is not None]

    @property
    def mean_latency(self) -> float:
        latencies = self.latencies()
        return sum(latencies) / len(latencies) if latencies else 0.0

    @property
    def p50_latency(self) -> float:
        return percentile(self.latencies(), 0.50)

    @property
    def p95_latency(self) -> float:
        return percentile(self.latencies(), 0.95)

    @property
    def p99_latency(self) -> float:
        return percentile(self.latencies(), 0.99)

    @property
    def mean_queue_delay(self) -> float:
        delays = [r.queue_delay for r in self.records if r.queue_delay is not None]
        return sum(delays) / len(delays) if delays else 0.0

    def summary(self) -> dict:
        """One row of driver metrics, ready for ``format_table``."""
        return {
            "ops": len(self.records),
            "completed": self.completed,
            "errors": self.errors,
            "duration_s": self.duration,
            "throughput_ops_s": self.throughput,
            "mean_latency_s": self.mean_latency,
            "p50_latency_s": self.p50_latency,
            "p95_latency_s": self.p95_latency,
            "p99_latency_s": self.p99_latency,
            "mean_queue_delay_s": self.mean_queue_delay,
        }


class _DriverBase:
    def __init__(self, runtime: Runtime, make_op: OpFactory,
                 initiators: Sequence[str] | None = None) -> None:
        self.runtime = runtime
        self.make_op = make_op
        self._initiators = list(initiators) if initiators else None
        self.records: list[OpRecord] = []
        self._started_at: float | None = None

    def _session_for(self, client: int) -> Session:
        addresses = self._initiators or self.runtime.cluster.live_addresses()
        if not addresses:
            from ..common.errors import ReproError

            raise ReproError("all cluster nodes have failed")
        return self.runtime.session(addresses[client % len(addresses)])

    def _submit(self, session: Session, client: int, op_index: int,
                on_done: Callable[[OpFuture], None] | None = None) -> OpFuture:
        if self._started_at is None:
            self._started_at = self.runtime.cluster.network.now
        future = self.make_op(session, client, op_index)
        record = OpRecord(
            client=client,
            op_index=op_index,
            op_type=future.op_type,
            label=future.label,
            submitted_at=future.submitted_at,
            admitted_at=None,
            completed_at=None,
            ok=False,
        )
        self.records.append(record)

        def finished(fut: OpFuture) -> None:
            record.admitted_at = fut.admitted_at
            record.completed_at = fut.completed_at
            record.ok = fut.succeeded()
            if not record.ok:
                error = fut.exception()
                record.error = repr(error) if error is not None else fut.state
            if on_done is not None:
                on_done(fut)

        future.add_done_callback(finished)
        return future

    def _report(self) -> WorkloadReport:
        network = self.runtime.cluster.network
        completed_times = [r.completed_at for r in self.records if r.completed_at is not None]
        return WorkloadReport(
            records=list(self.records),
            started_at=self._started_at if self._started_at is not None else network.now,
            finished_at=max(completed_times) if completed_times else network.now,
            scheduler=self.runtime.stats.snapshot(),
        )


class ClosedLoopDriver(_DriverBase):
    """``num_clients`` clients, one outstanding operation each.

    Every client runs on its own session; by default sessions are spread
    round-robin over the live nodes, so eight clients on an eight-node
    cluster model eight tenants initiating from eight different machines.
    """

    def __init__(
        self,
        runtime: Runtime,
        num_clients: int,
        make_op: OpFactory,
        ops_per_client: int,
        think_time: float = 0.0,
        initiators: Sequence[str] | None = None,
    ) -> None:
        super().__init__(runtime, make_op, initiators)
        if num_clients < 1:
            raise ValueError("a closed-loop workload needs at least one client")
        if ops_per_client < 1:
            raise ValueError("ops_per_client must be at least 1")
        self.num_clients = num_clients
        self.ops_per_client = ops_per_client
        self.think_time = think_time

    def run(self) -> WorkloadReport:
        """Drive all clients to completion; returns the aggregate report."""
        network = self.runtime.cluster.network

        def client_loop(session: Session, client: int, op_index: int) -> None:
            def next_op(_fut: OpFuture) -> None:
                if op_index + 1 >= self.ops_per_client:
                    return
                # Always continue through the event queue: a submission the
                # scheduler rejects synchronously fires its done-callback
                # inline, and chaining inline from it would recurse one stack
                # frame per shed operation.
                network.schedule(
                    self.think_time,
                    lambda: client_loop(session, client, op_index + 1),
                )

            self._submit(session, client, op_index, on_done=next_op)

        for client in range(self.num_clients):
            client_loop(self._session_for(client), client, 0)
        self.runtime.drain()
        return self._report()


class OpenLoopDriver(_DriverBase):
    """Poisson arrivals at ``arrival_rate`` operations per simulated second.

    Submissions do not wait for completions — under overload the admission
    queue (and then load shedding) is what protects the cluster, which is
    exactly the regime the scheduler statistics expose.
    """

    def __init__(
        self,
        runtime: Runtime,
        make_op: OpFactory,
        num_ops: int,
        arrival_rate: float,
        seed: int = 0,
        initiators: Sequence[str] | None = None,
    ) -> None:
        super().__init__(runtime, make_op, initiators)
        if num_ops < 1:
            raise ValueError("num_ops must be at least 1")
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        self.num_ops = num_ops
        self.arrival_rate = arrival_rate
        self.seed = seed

    def arrival_offsets(self) -> list[float]:
        """Deterministic Poisson arrival times, relative to the run start."""
        rng = random.Random(self.seed)
        offsets, elapsed = [], 0.0
        for _ in range(self.num_ops):
            elapsed += rng.expovariate(self.arrival_rate)
            offsets.append(elapsed)
        return offsets

    def run(self) -> WorkloadReport:
        network = self.runtime.cluster.network
        for op_index, offset in enumerate(self.arrival_offsets()):
            session = self._session_for(op_index)
            network.schedule(
                offset,
                lambda session=session, op_index=op_index: self._submit(
                    session, op_index, op_index
                ),
            )
        self.runtime.drain()
        return self._report()
