"""Sessions: the asynchronous, multi-tenant face of a cluster.

A :class:`Session` is one tenant's connection to the cluster, bound to the
node the tenant's operations initiate from.  Its ``submit_*`` methods start
a publish, retrieval or query *without driving the event loop* and return an
:class:`~repro.runtime.futures.OpFuture` that the loop resolves — so any
number of operations, from any number of sessions, can be in flight in the
same simulated time.  The :class:`Runtime` owns the shared admission
scheduler and hands out sessions.

The blocking convenience wrappers on :class:`~repro.cluster.Cluster` are
thin shims over this layer: submit one operation, drain the event loop,
return the future's result.  With the default scheduler configuration a
single operation is admitted and launched synchronously at submission, so
that path issues exactly the message sequence the pre-runtime wrappers did.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from ..common.errors import NodeFailedError
from ..common.types import RelationData, Value
from .futures import OpFuture
from .scheduler import Scheduler, SchedulerConfig

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..cluster import Cluster
    from ..storage.client import UpdateBatch


class Session:
    """One initiator's asynchronous operation interface."""

    def __init__(self, runtime: "Runtime", address: str) -> None:
        self.runtime = runtime
        self.address = address

    @property
    def cluster(self) -> "Cluster":
        return self.runtime.cluster

    @property
    def scheduler(self) -> Scheduler:
        return self.runtime.scheduler

    def _require_live_initiator(self) -> None:
        """Raise unless this session's node is up.

        Called inside the launch closures: an operation submitted while its
        initiating node is down must fail — cached state on the initiator
        could otherwise answer it without ever touching the network, silently
        resurrecting a dead process.  Raising here turns the launch into the
        operation's failure through the scheduler's normal error path.
        """
        if not self.cluster.network.node(self.address).alive:
            raise NodeFailedError(self.address, "operation initiated from a failed node")

    # -- publish ----------------------------------------------------------------

    def submit_publish(
        self,
        data: "UpdateBatch | RelationData",
        epoch: int | None = None,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> OpFuture:
        """Publish a batch asynchronously; the future resolves to the epoch.

        Publishes to the *same* relation are serialised: each one starts only
        after its predecessor in the per-relation chain resolved, so every
        version builds on the committed previous version (two interleaved
        publishes would otherwise both build on the same base, and whichever
        committed first would vanish from all later versions — a lost
        update).  Publishes to different relations still run concurrently.

        The epoch is assigned (and the optimizer catalog updated) when the
        publish actually starts — at admission for an unchained publish — so
        concurrent publishes receive distinct epochs in deterministic start
        order, while a publish the scheduler rejects, times out in the queue,
        or that is cancelled before starting leaves no phantom state behind
        (no catalog entry, no burned epoch).  On completion the new epoch is
        gossiped, every node's caches learn which relation changed, and the
        cluster's *durable* epoch advances — operations submitted afterwards
        see the new version by default.
        """
        from ..storage.client import UpdateBatch

        cluster = self.cluster
        if isinstance(data, RelationData):
            batch = UpdateBatch(schema=data.schema, inserts=list(data.rows))
        else:
            batch = data
        requested_epoch = epoch
        publisher = cluster.nodes[self.address]
        future = OpFuture("publish", self.address, label=batch.relation)
        future._incomplete = f"publish of {batch.relation!r} did not complete"

        def begin() -> None:
            if future.done():
                return  # timed out, cancelled, or its initiator crashed while chained
            # The immediate predecessor may have died *without starting* (its
            # initiator crashed while it waited in the chain); its resolution
            # releases this entry while an earlier publish of the relation is
            # still mid-flight.  Re-chain onto whatever is actually executing
            # — starting now would read a base the running publish is about
            # to supersede, and its batch would vanish from every later
            # version.
            running = cluster._publishing.get(batch.relation)
            if running is not None and running is not future and not running.done():
                running.add_done_callback(lambda _prev: begin())
                return
            cluster._publishing[batch.relation] = future
            try:
                start_publish()
            except Exception as exc:
                # A chained begin runs from the predecessor's done-callback,
                # deep inside the event loop: a synchronous failure (e.g. the
                # publisher crashed while waiting in the chain) must become
                # this operation's result, not an event-loop exception.
                self.scheduler.fail(future, exc)

        def start_publish() -> None:
            self._require_live_initiator()
            if isinstance(data, RelationData):
                cluster.catalog.register_relation(data)
            elif batch.relation not in cluster.catalog:
                cluster.catalog.register_relation(
                    RelationData(batch.schema, list(batch.inserts))
                )
            publish_epoch = (
                requested_epoch if requested_epoch is not None else cluster.next_epoch()
            )
            cluster.current_epoch = max(cluster.current_epoch, publish_epoch)
            future._incomplete = (
                f"publish of {batch.relation!r} at epoch {publish_epoch} did not complete"
            )

            def completed(_record) -> None:
                # Mirror the blocking wrapper's completion pipeline: gossip
                # the epoch, then exact-invalidate every cache (gossip only
                # carries the epoch number, so tell each cache *which*
                # relation changed; this also covers publishes at an epoch
                # the gossip already knew).
                publisher.gossip.announce(publish_epoch)
                cluster.note_publish(batch.relation, publish_epoch)
                cluster.durable_epoch = max(cluster.durable_epoch, publish_epoch)
                cluster._acked_epochs[batch.relation] = max(
                    cluster._acked_epochs.get(batch.relation, 0), publish_epoch
                )
                self.scheduler.complete(future, publish_epoch)

            publisher.storage_client.publish(
                batch, publish_epoch, on_complete=completed,
                previous_epoch_hint=cluster._acked_epochs.get(batch.relation),
            )

        def launch() -> None:
            predecessor = cluster._publish_tails.get(batch.relation)
            cluster._publish_tails[batch.relation] = future
            if predecessor is not None and not predecessor.done():
                predecessor.add_done_callback(lambda _prev: begin())
            else:
                begin()

        def release_chain(resolved: OpFuture) -> None:
            if cluster._publish_tails.get(batch.relation) is resolved:
                del cluster._publish_tails[batch.relation]
            if cluster._publishing.get(batch.relation) is resolved:
                del cluster._publishing[batch.relation]

        future.add_done_callback(release_chain)
        return self.scheduler.submit(future, launch, timeout=timeout, deadline=deadline)

    # -- retrieve ---------------------------------------------------------------

    def submit_retrieve(
        self,
        relation: str,
        epoch: int | None = None,
        key_predicate: Callable[[tuple[Value, ...]], bool] | None = None,
        timeout: float | None = None,
        deadline: float | None = None,
        predicate=None,
        columns: Sequence[str] | None = None,
    ) -> OpFuture:
        """Start an Algorithm-1 retrieval; the future resolves to its
        :class:`~repro.storage.client.RetrieveResult`.

        ``predicate`` (an :class:`~repro.query.expressions.Expression` over
        the relation's attributes, or a prebuilt
        :class:`~repro.query.pushdown.ScanPredicate`) and ``columns`` (a
        projection) are pushed to the data nodes and applied before any tuple
        crosses the simulated network; projected result tuples carry their
        values in ``columns`` order.
        """
        cluster = self.cluster
        requester = cluster.nodes[self.address]
        epoch = epoch if epoch is not None else cluster.durable_epoch
        future = OpFuture("retrieve", self.address, label=f"{relation}@{epoch}")
        future._incomplete = f"retrieval of {relation!r}@{epoch} did not complete"

        def build_pushdown():
            """Resolve predicate/columns against the catalog schema."""
            pushed, projection = predicate, None
            if predicate is not None or columns is not None:
                from ..query.expressions import Expression
                from ..query.pushdown import ScanPredicate, ScanProjection

                schema = cluster.catalog.schema(relation)
                if isinstance(predicate, Expression):
                    pushed = ScanPredicate(predicate, schema.attributes)
                if columns is not None:
                    projection = ScanProjection(schema.attributes, columns)
            return pushed, projection

        def launch() -> None:
            self._require_live_initiator()
            try:
                # Resolved inside the launch so an unknown relation or bad
                # projection fails the returned future — the same error
                # channel every other retrieval failure uses — instead of
                # raising synchronously out of submit_retrieve.
                pushed, projection = build_pushdown()
            except Exception as exc:
                self.scheduler.fail(future, exc)
                return
            requester.storage_client.retrieve(
                relation,
                epoch,
                on_complete=lambda result: self.scheduler.complete(future, result),
                key_predicate=key_predicate,
                on_error=lambda exc: self.scheduler.fail(future, exc),
                predicate=pushed,
                projection=projection,
            )

        return self.scheduler.submit(future, launch, timeout=timeout, deadline=deadline)

    # -- query ------------------------------------------------------------------

    def submit_query(
        self,
        query,
        epoch: int | None = None,
        options=None,
        planner_options=None,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> OpFuture:
        """Compile and start a distributed query; the future resolves to its
        :class:`~repro.query.service.QueryResult`.

        ``query`` may be a :class:`~repro.query.logical.LogicalQuery`
        (compiled with the cost-based optimizer against the cluster catalog),
        an already-compiled :class:`~repro.query.physical.PhysicalPlan`, or a
        SQL string.  Compilation happens synchronously at submission — only
        the distributed execution itself is admission-controlled.
        """
        from ..optimizer.cost import MachineProfile
        from ..optimizer.planner import compile_query
        from ..query.logical import LogicalQuery
        from ..query.physical import PhysicalPlan
        from ..query.service import QueryOptions

        cluster = self.cluster
        cluster.enable_query_processing()
        if isinstance(query, str):
            from ..query.sql import parse_query

            query = parse_query(query, cluster.catalog.schemas())
        if isinstance(query, LogicalQuery):
            initiator_cache = cluster.nodes[self.address].cache
            compiled = compile_query(
                query,
                cluster.catalog,
                machine=MachineProfile.for_cluster(cluster),
                options=planner_options,
                residency=initiator_cache.residency() if initiator_cache else None,
            )
            plan = compiled.plan
        elif isinstance(query, PhysicalPlan):
            plan = query
        else:
            raise TypeError(f"cannot execute query of type {type(query).__name__}")

        service = cluster.query_service(self.address)
        epoch = epoch if epoch is not None else cluster.durable_epoch
        options = options or QueryOptions()
        future = OpFuture("query", self.address, label=plan.name)
        future._incomplete = f"query {plan.name!r} did not complete"

        def launch() -> None:
            self._require_live_initiator()
            service.execute(
                plan,
                epoch,
                on_complete=lambda result: self.scheduler.complete(future, result),
                options=options,
                on_error=lambda exc: self.scheduler.fail(future, exc),
            )

        return self.scheduler.submit(future, launch, timeout=timeout, deadline=deadline)


class Runtime:
    """Shared concurrent-operation machinery of one cluster.

    Owns the admission :class:`Scheduler` and creates :class:`Session`
    objects.  One runtime per cluster; the cluster builds it lazily on first
    use (see :attr:`repro.cluster.Cluster.runtime`).
    """

    def __init__(self, cluster: "Cluster", config: SchedulerConfig | None = None) -> None:
        self.cluster = cluster
        self.scheduler = Scheduler(
            cluster.network, config, metrics=getattr(cluster, "metrics", None)
        )

    def session(self, address: str | None = None) -> Session:
        """A session initiating from ``address`` (default: first live node)."""
        return Session(self, address or self.cluster.first_live_address())

    def drain(self, until: float | None = None) -> float:
        """Drive the event loop until it is empty (or ``until``); returns the
        simulated time.  Every future submitted before (or during) the drain
        that can complete will have completed when it returns."""
        return self.cluster.network.run(until)

    @property
    def stats(self):
        return self.scheduler.stats
