"""Distributed, replicated, versioned relational storage (Section IV)."""

from .client import RetrieveResult, StorageClient, UpdateBatch, register_retrieve_handlers
from .localstore import BPlusTree, LocalStore
from .pages import (
    CoordinatorRecord,
    IndexPage,
    PageId,
    PageRef,
    catalog_key,
    choose_page_count,
    coordinator_key,
    initial_page_layout,
    inverse_key,
)
from .service import StorageService, storage_of

__all__ = [
    "BPlusTree",
    "CoordinatorRecord",
    "IndexPage",
    "LocalStore",
    "PageId",
    "PageRef",
    "RetrieveResult",
    "StorageClient",
    "StorageService",
    "UpdateBatch",
    "catalog_key",
    "choose_page_count",
    "coordinator_key",
    "initial_page_layout",
    "inverse_key",
    "register_retrieve_handlers",
    "storage_of",
]
