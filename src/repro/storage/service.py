"""Per-node storage service: the RPC surface of the versioned storage layer.

Every participant runs one :class:`StorageService`.  It owns the node's local
ordered store (:class:`~repro.storage.localstore.LocalStore`) and registers
the RPC methods that implement the four roles a node can play in Figure 3 of
the paper:

* **relation coordinator** — serves the list of index pages for a relation
  version (``store.put_coordinator`` / ``store.get_coordinator``), plus the
  small catalog record listing the epochs at which a relation was published;
* **index node** — stores index pages and answers scan requests by filtering
  the page's tuple IDs with a sargable predicate (``store.put_page`` /
  ``store.scan_page``);
* **data storage node** — stores full tuple versions keyed by tuple ID and
  serves point reads and scans (``store.put_tuples`` / ``store.get_tuples``);
* **inverse node** — maps a tuple key to the page currently holding its
  latest version, used when a tuple is modified (``store.put_inverse`` /
  ``store.get_inverse``).

The service is deliberately ignorant of *placement*: clients decide which node
to contact using a routing snapshot, and replicas receive the same ``put``
messages as the owner.  If a read misses (e.g. the ring moved after a failure
and this node only just inherited a range), the client — not the service —
falls back to the replicas, implementing the paper's "search other nodes
nearby in the system until it found a copy" behaviour.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from ..common.types import TupleId, VersionedTuple
from ..net.simnet import SimNode
from ..net.transport import RpcEndpoint, rpc_endpoint
from .localstore import LocalStore
from .pages import CoordinatorRecord, IndexPage, PageId

#: CPU cost (seconds) of processing one tuple ID during an index-page scan.
INDEX_SCAN_COST_PER_ID = 0.2e-6
#: CPU cost (seconds) of materialising one stored tuple during a data scan.
DATA_SCAN_COST_PER_TUPLE = 1.0e-6
#: CPU cost (seconds) of inserting one tuple version.
INSERT_COST_PER_TUPLE = 1.5e-6

_COORD_TREE = "coordinator"
_CATALOG_TREE = "catalog"
_PAGE_TREE = "pages"
_TUPLE_TREE = "tuples"
_INVERSE_TREE = "inverse"


class StorageService:
    """Storage RPC handlers and local state for a single simulated node."""

    def __init__(self, node: SimNode, cache=None, integrity=None) -> None:
        self.node = node
        self.rpc: RpcEndpoint = rpc_endpoint(node)
        self.store = LocalStore()
        #: Optional :class:`~repro.cache.node.NodeCache`.  Index pages are
        #: version-keyed and immutable, so a page this node cached while
        #: acting as a client can safely be served to peers after the ring
        #: moved, instead of failing over to replicas.
        self.cache = cache
        #: Optional :class:`~repro.integrity.NodeIntegrity`.  When set, every
        #: write records a content checksum beside the entry and every read
        #: re-verifies it; a mismatch quarantines the local copy so the
        #: caller's replica-failover path read-repairs it transparently.
        self.integrity = integrity
        #: Local observers notified when tuples are written (used by tests and
        #: by the background replicator's bookkeeping).
        self._write_listeners: list[Callable[[VersionedTuple], None]] = []
        self._register_handlers()
        node.services["storage"] = self

    # ------------------------------------------------------------------ setup

    def _register_handlers(self) -> None:
        self.rpc.register("store.put_coordinator", self._on_put_coordinator)
        self.rpc.register("store.get_coordinator", self._on_get_coordinator)
        self.rpc.register("store.put_catalog", self._on_put_catalog)
        self.rpc.register("store.get_catalog", self._on_get_catalog)
        self.rpc.register("store.put_page", self._on_put_page)
        self.rpc.register("store.get_page", self._on_get_page)
        self.rpc.register("store.scan_page", self._on_scan_page)
        self.rpc.register("store.put_tuples", self._on_put_tuples)
        self.rpc.register("store.get_tuples", self._on_get_tuples)
        self.rpc.register("store.put_inverse", self._on_put_inverse)
        self.rpc.register("store.get_inverse", self._on_get_inverse)

    def add_write_listener(self, listener: Callable[[VersionedTuple], None]) -> None:
        self._write_listeners.append(listener)

    # -------------------------------------------------------------- integrity

    def _record_checksum(self, tree: str, key, value) -> None:
        """Record the content checksum beside a fresh write (no-op when off)."""
        if self.integrity is not None:
            self.integrity.record(self.store, tree, key, value)

    def _verified(self, tree: str, key, value, site: str):
        """Return ``value`` if it passes verification, else None.

        A failed copy is quarantined and deleted by the guard, so to every
        caller the entry simply looks *missing* — which routes the read into
        the existing replica-failover paths, and the back-fill they perform
        becomes the read-repair.
        """
        if value is None or self.integrity is None:
            return value
        if self.integrity.verify(self.store, tree, key, value, site, node=self.node):
            return value
        return None

    # ------------------------------------------------------- coordinator role

    def _on_put_coordinator(self, _src: str, payload: Mapping[str, object], respond) -> None:
        record: CoordinatorRecord = payload["record"]
        self.store.put(
            _COORD_TREE,
            (record.relation, record.epoch),
            record,
            size=record.estimated_size(),
        )
        self._record_checksum(_COORD_TREE, (record.relation, record.epoch), record)
        respond({"ok": True}, size=8)

    def _on_get_coordinator(self, _src: str, payload: Mapping[str, object], respond) -> None:
        record = self.local_coordinator(payload["relation"], payload["epoch"])
        if record is None:
            respond({"missing": True}, size=8)
        else:
            respond({"record": record}, size=record.estimated_size())

    def _on_put_catalog(self, _src: str, payload: Mapping[str, object], respond) -> None:
        relation = payload["relation"]
        epochs: set[int] = set(self.store.get(_CATALOG_TREE, relation, default=()))
        epochs.update(payload["epochs"])
        self.store.put(_CATALOG_TREE, relation, tuple(sorted(epochs)), size=8 * len(epochs))
        respond({"ok": True}, size=8)

    def _on_get_catalog(self, _src: str, payload: Mapping[str, object], respond) -> None:
        epochs = self.store.get(_CATALOG_TREE, payload["relation"])
        if epochs is None:
            respond({"missing": True}, size=8)
        else:
            respond({"epochs": tuple(epochs)}, size=8 + 8 * len(epochs))

    # -------------------------------------------------------- index node role

    def _on_put_page(self, _src: str, payload: Mapping[str, object], respond) -> None:
        page: IndexPage = payload["page"]
        self.store.put(_PAGE_TREE, page.page_id, page, size=page.estimated_size())
        self._record_checksum(_PAGE_TREE, page.page_id, page)
        respond({"ok": True}, size=8)

    def _on_get_page(self, _src: str, payload: Mapping[str, object], respond) -> None:
        page = self.local_page(payload["page_id"])
        if page is None and self.cache is not None:
            # Serve a remote reader from the cache, but bypass the hit
            # counters: the page still crosses the network in the reply, so
            # counting its size as "bytes saved" would overstate the savings
            # (what is actually avoided is only the requester's failover
            # retry against the next replica).
            page = self.cache.peek_page(payload["page_id"])
        if page is None:
            respond({"missing": True}, size=8)
        else:
            respond({"page": page}, size=page.estimated_size())

    def _on_scan_page(self, _src: str, payload: Mapping[str, object], respond) -> None:
        """Filter a page's tuple IDs with an optional sargable predicate.

        The predicate is a callable over the tuple's *key values* (sargable in
        the paper's sense: evaluable from the index entry alone).
        """
        page = self.local_page(payload["page_id"], site="scan")
        if page is None:
            respond({"missing": True}, size=8)
            return
        predicate = payload.get("key_predicate")
        if predicate is not None and hasattr(predicate, "compile"):
            # Serializable ScanPredicate descriptor: compile it against its
            # attribute signature (duck-typed to keep the storage layer free
            # of query-package imports).
            predicate = predicate.compile()
        self.node.charge_cpu(INDEX_SCAN_COST_PER_ID * len(page.tuple_ids))
        if predicate is None:
            matching = list(page.tuple_ids)
        else:
            matching = [tid for tid in page.tuple_ids if predicate(tid.key_values)]
        respond({"tuple_ids": matching}, size=8 + 24 * len(matching))

    # ------------------------------------------------------ data storage role

    def _on_put_tuples(self, _src: str, payload: Mapping[str, object], respond) -> None:
        tuples: Iterable[VersionedTuple] = payload["tuples"]
        total = 0
        count = 0
        for tup in tuples:
            self.store.put(
                _TUPLE_TREE,
                (tup.relation, tup.hash_key, tup.tuple_id),
                tup,
                size=tup.estimated_size(),
            )
            self._record_checksum(_TUPLE_TREE, (tup.relation, tup.hash_key, tup.tuple_id), tup)
            total += tup.estimated_size()
            count += 1
            for listener in self._write_listeners:
                listener(tup)
        self.node.charge_cpu(INSERT_COST_PER_TUPLE * count)
        self.node.charge_disk_read(0)  # writes are asynchronous in the prototype
        respond({"ok": True, "count": count}, size=16)

    def _on_get_tuples(self, _src: str, payload: Mapping[str, object], respond) -> None:
        relation = payload["relation"]
        requested: Iterable[TupleId] = payload["tuple_ids"]
        found, missing = self.lookup_tuples(relation, requested)
        size = sum(t.estimated_size() for t in found) + 24 * len(missing)
        respond({"tuples": found, "missing": missing}, size=size)

    # ----------------------------------------------------------- inverse role

    def _on_put_inverse(self, _src: str, payload: Mapping[str, object], respond) -> None:
        relation = payload["relation"]
        for key_values, page_ref, epoch in payload["entries"]:
            self.store.put(
                _INVERSE_TREE,
                (relation, key_values),
                (page_ref, epoch),
                size=48,
            )
        respond({"ok": True}, size=8)

    def _on_get_inverse(self, _src: str, payload: Mapping[str, object], respond) -> None:
        entry = self.store.get(_INVERSE_TREE, (payload["relation"], payload["key_values"]))
        if entry is None:
            respond({"missing": True}, size=8)
        else:
            page_ref, epoch = entry
            respond({"page_ref": page_ref, "epoch": epoch}, size=56)

    # ------------------------------------------------------- local (in-process)

    def local_coordinator(self, relation: str, epoch: int) -> CoordinatorRecord | None:
        record = self.store.get(_COORD_TREE, (relation, epoch))
        return self._verified(_COORD_TREE, (relation, epoch), record, "coordinator")

    def local_catalog(self, relation: str) -> tuple[int, ...] | None:
        return self.store.get(_CATALOG_TREE, relation)

    def local_page(self, page_id: PageId, site: str = "page") -> IndexPage | None:
        page = self.store.get(_PAGE_TREE, page_id)
        return self._verified(_PAGE_TREE, page_id, page, site)

    def local_or_cached_page(self, page_id: PageId) -> IndexPage | None:
        """Page from the local store, falling back to the node cache.

        The one lookup policy every *local consumer* of a page shares (index
        scans, Algorithm-1 page handling): page versions are immutable, so a
        copy cached while this node acted as a client is as good as an owned
        one and saves the replica round-trip.  Peers asking over RPC are
        served through :meth:`_on_get_page`, which deliberately bypasses the
        hit counters (the bytes still ship).
        """
        page = self.local_page(page_id)
        if page is None and self.cache is not None:
            page = self.cache.get_page(page_id)
        return page

    def local_pages_for_relation(self, relation: str) -> list[IndexPage]:
        return [page for _key, page in self.store.items(_PAGE_TREE) if page.page_id.relation == relation]

    def lookup_tuples(
        self, relation: str, tuple_ids: Iterable[TupleId]
    ) -> tuple[list[VersionedTuple], list[TupleId]]:
        """Local point lookups; returns (found tuples, missing IDs)."""
        found: list[VersionedTuple] = []
        missing: list[TupleId] = []
        count = 0
        for tid in tuple_ids:
            tup = self.store.get(_TUPLE_TREE, (relation, tid.hash_key, tid))
            tup = self._verified(_TUPLE_TREE, (relation, tid.hash_key, tid), tup, "tuple")
            count += 1
            if tup is None:
                missing.append(tid)
            else:
                found.append(tup)
        self.node.charge_cpu(DATA_SCAN_COST_PER_TUPLE * count)
        self.node.charge_disk_read(sum(t.estimated_size() for t in found))
        return found, missing

    def store_tuple(self, tup: VersionedTuple) -> None:
        """Directly store a tuple locally (used by background replication)."""
        self.store.put(
            _TUPLE_TREE,
            (tup.relation, tup.hash_key, tup.tuple_id),
            tup,
            size=tup.estimated_size(),
        )
        self._record_checksum(_TUPLE_TREE, (tup.relation, tup.hash_key, tup.tuple_id), tup)

    def store_page(self, page: IndexPage) -> None:
        self.store.put(_PAGE_TREE, page.page_id, page, size=page.estimated_size())
        self._record_checksum(_PAGE_TREE, page.page_id, page)

    def store_coordinator(self, record: CoordinatorRecord) -> None:
        self.store.put(_COORD_TREE, (record.relation, record.epoch), record,
                       size=record.estimated_size())
        self._record_checksum(_COORD_TREE, (record.relation, record.epoch), record)

    def local_tuples_in_range(self, relation: str, hash_range) -> list[VersionedTuple]:
        """All locally stored tuple versions of ``relation`` within ``hash_range``."""
        result = []
        for (rel, hash_key, _tid), tup in self.store.items(_TUPLE_TREE):
            if rel == relation and hash_range.contains(hash_key):
                result.append(tup)
        return result

    def all_local_tuples(self, relation: str | None = None) -> list[VersionedTuple]:
        return [
            tup
            for (rel, _hash, _tid), tup in self.store.items(_TUPLE_TREE)
            if relation is None or rel == relation
        ]

    def tuple_count(self) -> int:
        return self.store.count(_TUPLE_TREE)

    # ------------------------------------------------------------ scrub surface

    #: Trees covered by the integrity scrubber's digest exchange.
    SCRUB_TREES = (_TUPLE_TREE, _PAGE_TREE, _COORD_TREE)

    def scrub_digests(self, tree: str, key_range) -> dict:
        """Digest lines for everything held in ``tree`` within ``key_range``.

        Checksums are *recomputed* from the bytes held now, paired with the
        checksum recorded at write time, so the scrubber can tell a locally
        rotted copy (fresh != stored) from a divergent-but-self-consistent
        one (both replicas verify, checksums differ across the group).
        """
        from ..integrity.checksum import checksum_of
        from ..integrity.scrubber import DigestEntry
        from .pages import coordinator_key

        entries: dict = {}
        for key, value in self.store.items(tree):
            if tree == _TUPLE_TREE:
                _rel, hash_key, tid = key
                placement, version = hash_key, tid.epoch
            elif tree == _PAGE_TREE:
                placement, version = value.ref.storage_key, key.epoch
            elif tree == _COORD_TREE:
                relation, epoch = key
                placement, version = coordinator_key(relation, epoch), epoch
            else:
                continue
            if not key_range.contains(placement):
                continue
            entries[key] = DigestEntry(
                version=version,
                checksum=checksum_of(value),
                stored=self.store.get_checksum(tree, key),
                size=value.estimated_size(),
            )
        return entries

    def scrub_fetch(self, tree: str, key):
        """Raw read for the scrubber's repair copy (no verification here:
        the digest exchange already established this copy self-verifies)."""
        return self.store.get(tree, key)

    def scrub_store(self, tree: str, key, value) -> int:
        """Back-fill one repaired entry; returns its size for accounting."""
        if tree == _TUPLE_TREE:
            self.store_tuple(value)
        elif tree == _PAGE_TREE:
            self.store_page(value)
        elif tree == _COORD_TREE:
            self.store_coordinator(value)
        else:
            raise ValueError(f"unscrubable tree {tree!r}")
        return value.estimated_size()

    def scrub_quarantine(self, tree: str, key) -> None:
        """Fail a corrupt/divergent copy loudly and remove it pending repair."""
        value = self.store.get(tree, key)
        if value is None:
            return
        if self.integrity is not None:
            self.integrity.stats.note_detected("scrub")
            self.integrity.stats.quarantined += 1
            self.integrity.quarantined.add((tree, key))
            self.integrity.detection_times.setdefault((tree, key), self.node.now)
            self.integrity._trace(self.node, "scrub", tree, key)
        self.store.delete(tree, key)


def storage_of(node: SimNode) -> StorageService:
    """Return the node's storage service (must exist)."""
    service = node.services.get("storage")
    if not isinstance(service, StorageService):
        raise LookupError(f"node {node.address!r} has no storage service")
    return service
