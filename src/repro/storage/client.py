"""Storage client: versioned publish and Algorithm-1 retrieval.

A :class:`StorageClient` runs on the node that initiates a storage operation
(a participant publishing its update log, or a node retrieving a relation
version).  It decides *placement* using a routing snapshot taken from the
node's membership view, talks to the per-node :class:`~repro.storage.service.
StorageService` instances over RPC, and implements the two protocols of
Section IV:

Publish
    Creating a new version of a relation.  New tuples are written to their
    data storage nodes (and replicas), affected index pages get new versions,
    unaffected pages are *shared* with the previous version, and a new
    relation coordinator record plus catalog entry is written for the epoch.

Retrieve (Algorithm 1)
    Look up the relation coordinator at ``h(⟨R, e⟩)``, fan scan requests out
    to the index nodes holding the pages, which filter tuple IDs with the
    sargable predicate and forward requests to the data storage nodes, which
    finally send the matching tuples directly back to the requester —
    bypassing the index node and coordinator, exactly as in Example 4.2.

Both protocols tolerate data that is not where the routing snapshot says it
should be (e.g. just after a membership change): reads fall back to the
replicas of the missing item before giving up, so stale data is never
returned and missing data is only reported when no replica holds it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from ..cache.node import NodeCache
from ..common.errors import EpochNotFoundError, RelationNotFoundError, TupleNotFoundError
from ..common.serialization import ENCODING_STATS, EncodedScanBatch
from ..common.types import Schema, TupleId, Value, VersionedTuple
from ..net.simnet import SimNode
from ..net.transport import RpcEndpoint, rpc_endpoint
from ..overlay.membership import MembershipView
from ..overlay.replication import replica_set
from ..overlay.routing import RoutingSnapshot, physical_address
from .pages import (
    CoordinatorRecord,
    IndexPage,
    PageId,
    PageRef,
    catalog_key,
    choose_page_count,
    coordinator_key,
    initial_page_layout,
)
from .service import INDEX_SCAN_COST_PER_ID, StorageService


@dataclass
class UpdateBatch:
    """One participant's published changes to a single relation.

    ``inserts`` and ``modifications`` carry full value tuples; a modification
    replaces the current version of the tuple with the same key values.
    ``deletes`` carries key-value tuples only.
    """

    schema: Schema
    inserts: list[tuple[Value, ...]] = field(default_factory=list)
    modifications: list[tuple[Value, ...]] = field(default_factory=list)
    deletes: list[tuple[Value, ...]] = field(default_factory=list)

    @property
    def relation(self) -> str:
        return self.schema.name

    def is_empty(self) -> bool:
        return not (self.inserts or self.modifications or self.deletes)

    def change_count(self) -> int:
        return len(self.inserts) + len(self.modifications) + len(self.deletes)


def _pushdown():
    """The descriptor/pruning helpers of :mod:`repro.query.pushdown`.

    Imported lazily: ``repro.query`` eagerly imports its service module,
    which imports this one, so a module-level import would be circular.
    """
    from ..query import pushdown

    return pushdown


def search_targets(
    snapshot: RoutingSnapshot,
    key: int,
    replication_factor: int,
    exclude: Iterable[str] = (),
) -> list[str]:
    """Nodes to try, in order, when looking for the item stored at ``key``.

    The item's replica set under ``snapshot`` comes first.  The remaining live
    nodes of the snapshot follow, because after a membership change data may
    legitimately sit outside the current replica set until background
    replication catches up — the paper's "proactively try to retrieve the
    missing state from other nearby nodes" fallback (Section IV).
    """
    excluded = set(exclude)
    ordered = [addr for addr in replica_set(snapshot, key, replication_factor)
               if addr not in excluded]
    for entry in snapshot.nodes:
        address = physical_address(entry)
        if address not in ordered and address not in excluded:
            ordered.append(address)
    return ordered


class _Completion:
    """Counts outstanding sub-operations and fires a callback when all finish."""

    def __init__(self, on_complete: Callable[[], None]) -> None:
        self._on_complete = on_complete
        self._outstanding = 0
        self._sealed = False
        self._fired = False

    def add(self, count: int = 1) -> None:
        self._outstanding += count

    def done(self, count: int = 1) -> None:
        self._outstanding -= count
        self._maybe_fire()

    def seal(self) -> None:
        self._sealed = True
        self._maybe_fire()

    def _maybe_fire(self) -> None:
        if self._sealed and self._outstanding <= 0 and not self._fired:
            self._fired = True
            self._on_complete()


@dataclass
class RetrieveResult:
    """Outcome of a retrieval: the matching tuples plus basic statistics."""

    relation: str
    epoch: int
    resolved_epoch: int
    tuples: list[VersionedTuple]
    pages_scanned: int = 0
    missing: list[TupleId] = field(default_factory=list)
    #: Pages whose tuple batch was served from the local version-keyed cache
    #: (no index/data-node traffic at all for those pages).
    pages_from_cache: int = 0

    def rows(self) -> list[tuple[Value, ...]]:
        return [t.values for t in self.tuples]


class StorageClient:
    """Publish and retrieve operations issued from one node."""

    def __init__(
        self,
        node: SimNode,
        membership: MembershipView,
        replication_factor: int = 3,
        page_capacity: int = 2048,
        cache: NodeCache | None = None,
    ) -> None:
        self.node = node
        self.rpc: RpcEndpoint = rpc_endpoint(node)
        self.membership = membership
        self.replication_factor = replication_factor
        self.page_capacity = page_capacity
        #: Optional version-keyed cache: coordinator records, index pages,
        #: per-page tuple batches and epoch resolutions are served from (and
        #: fill) it instead of re-crossing the simulated network.
        self.cache = cache
        self._retrievals: dict[int, "_RetrieveOperation"] = {}
        self._next_request_id = 0
        self.rpc.register("store.retrieve_manifest", self._on_retrieve_manifest)
        self.rpc.register("store.retrieve_result", self._on_retrieve_result)
        node.services["storage_client"] = self

    # ------------------------------------------------------------------ publish

    def publish(
        self,
        batch: UpdateBatch,
        epoch: int,
        on_complete: Callable[[CoordinatorRecord], None],
        snapshot: RoutingSnapshot | None = None,
        previous_epoch_hint: int | None = None,
    ) -> None:
        """Publish ``batch`` as the version of its relation at ``epoch``.

        ``previous_epoch_hint`` is a floor on the previous version: an epoch
        the caller *knows* was committed (the runtime remembers the last
        epoch it acknowledged per relation).  It protects against building on
        a stale base when every current catalog replica happens to miss the
        newest entry — possible right after a crash-restarted node, whose
        durable store predates that entry, reclaimed the catalog range.
        """
        snapshot = snapshot or self.membership.snapshot()
        operation = _PublishOperation(
            self, batch, epoch, snapshot, on_complete,
            previous_epoch_hint=previous_epoch_hint,
        )
        operation.start()

    # ----------------------------------------------------------------- retrieve

    def retrieve(
        self,
        relation: str,
        epoch: int,
        on_complete: Callable[[RetrieveResult], None],
        key_predicate: Callable[[tuple[Value, ...]], bool] | None = None,
        on_error: Callable[[Exception], None] | None = None,
        snapshot: RoutingSnapshot | None = None,
        predicate=None,
        projection=None,
    ) -> None:
        """Retrieve all tuples of ``relation`` visible at ``epoch`` (Algorithm 1).

        ``key_predicate`` filters at the *index* nodes (over tuple-ID key
        values); it may be an opaque callable (legacy API) or a serializable
        :class:`~repro.query.pushdown.ScanPredicate`.  ``predicate`` (a
        :class:`ScanPredicate` over the relation's full attribute signature)
        and ``projection`` (a :class:`~repro.query.pushdown.ScanProjection`)
        are pushed to the *data* nodes, which filter and project each tuple
        before it is shipped back — the storage-side half of the wire-traffic
        optimizer.  Projected result tuples carry their values in the
        projection's column order.
        """
        snapshot = snapshot or self.membership.snapshot()
        self._next_request_id += 1
        request_id = self._next_request_id
        operation = _RetrieveOperation(
            self, request_id, relation, epoch, key_predicate, snapshot, on_complete, on_error,
            predicate=predicate, projection=projection,
        )
        self._retrievals[request_id] = operation
        try:
            operation.start()
        except Exception:
            self._retrievals.pop(request_id, None)
            raise

    # -------------------------------------------------------- epoch resolution

    def fetch_catalog_epochs(
        self,
        relation: str,
        snapshot: RoutingSnapshot,
        on_epochs: Callable[[set[int]], None],
    ) -> None:
        """Collect the union of the relation's published epochs.

        The catalog entry is a *grow-only set* replicated by set-union writes,
        so after membership churn different replicas may hold different
        subsets — a node that just inherited the catalog range knows only the
        epochs published since, while the previous holders know the older
        ones.  Trusting any single reply can therefore silently hide a
        committed version (a retrieval resolves too far back; worse, a
        publisher builds the next version on a stale base and loses the
        intervening batch from every later version).  The whole current
        replica set is queried in parallel and the replies are unioned; only
        when every member is down or empty does the search extend, one node
        at a time, across the rest of the snapshot.  ``on_epochs`` receives
        the union (possibly empty for an unpublished relation).
        """
        targets = search_targets(snapshot, catalog_key(relation), self.replication_factor,
                                 exclude=())
        primary = targets[: self.replication_factor]
        rest = targets[self.replication_factor:]
        epochs: set[int] = set()
        outstanding = {"count": len(primary)}
        resilience = self.node.services.get("resilience")

        def extend(index: int) -> None:
            if index >= len(rest):
                on_epochs(set(epochs))
                return

            def handle(reply: Mapping[str, object]) -> None:
                if reply.get("missing"):
                    extend(index + 1)
                    return
                epochs.update(reply["epochs"])
                on_epochs(set(epochs))

            self.rpc.call(
                rest[index], "store.get_catalog", {"relation": relation}, 24,
                on_reply=handle,
                on_failure=lambda _addr: extend(index + 1),
            )

        def extend_resilient() -> None:
            def accept(_src: str, reply: Mapping[str, object]) -> bool:
                if reply.get("missing"):
                    return False
                epochs.update(reply["epochs"])
                on_epochs(set(epochs))
                return True

            resilience.chase_call(
                rest, "store.get_catalog", {"relation": relation}, 24,
                accept, on_exhausted=lambda: on_epochs(set(epochs)),
            )

        def conclude() -> None:
            if epochs:
                on_epochs(set(epochs))
            elif resilience is not None:
                extend_resilient()
            else:
                extend(0)

        def answered(reply: Mapping[str, object]) -> None:
            if not reply.get("missing"):
                epochs.update(reply["epochs"])
            outstanding["count"] -= 1
            if outstanding["count"] == 0:
                conclude()

        def failed(_addr: str) -> None:
            outstanding["count"] -= 1
            if outstanding["count"] == 0:
                conclude()

        if not primary:
            on_epochs(set())
            return
        for target in primary:
            # The union must wait for every replica-set member, so a slow one
            # is an unavoidable straggler unless the wait is bounded: with
            # resilience on, an adaptive timeout converts "degraded replica"
            # into the already-handled "unreachable replica" (conclude with
            # the union so far, extend the search only if it is empty).
            self.rpc.call(
                target, "store.get_catalog", {"relation": relation}, 24,
                on_reply=answered, on_failure=failed,
                timeout=(
                    resilience.call_timeout(target)
                    if resilience is not None else None
                ),
            )

    def resolve_epoch(
        self,
        relation: str,
        epoch: int,
        snapshot: RoutingSnapshot,
        on_resolved: Callable[[int], None],
        on_error: Callable[[Exception], None],
    ) -> None:
        """Find the newest publish epoch of ``relation`` that is ≤ ``epoch``."""
        if self.cache is not None:
            cached = self.cache.get_resolution(relation, epoch)
            if cached is not None:
                self.node.network.schedule(1e-6, lambda: on_resolved(cached))
                return

        def resolve(known: set[int]) -> None:
            if not known:
                on_error(RelationNotFoundError(f"relation {relation!r} is not published"))
                return
            usable = [e for e in known if e <= epoch]
            if not usable:
                on_error(EpochNotFoundError(
                    f"relation {relation!r} has no version at or before epoch {epoch}"))
                return
            resolved = max(usable)
            if self.cache is not None:
                self.cache.put_resolution(relation, epoch, resolved)
            on_resolved(resolved)

        self.fetch_catalog_epochs(relation, snapshot, resolve)

    def fetch_coordinator(
        self,
        relation: str,
        epoch: int,
        snapshot: RoutingSnapshot,
        on_record: Callable[[CoordinatorRecord], None],
        on_error: Callable[[Exception], None],
    ) -> None:
        """Fetch the coordinator record for ``relation``@``epoch`` with failover."""
        if self.cache is not None:
            cached = self.cache.get_coordinator(relation, epoch)
            if cached is not None:
                self.node.network.schedule(1e-6, lambda: on_record(cached))
                return
        targets = search_targets(snapshot, coordinator_key(relation, epoch),
                                 self.replication_factor, exclude=())

        def deliver(record: CoordinatorRecord) -> None:
            if self.cache is not None:
                self.cache.put_coordinator(record)
            on_record(record)

        def not_found() -> None:
            on_error(RelationNotFoundError(
                f"coordinator record for {relation!r}@{epoch} not found on any replica"))

        resilience = self.node.services.get("resilience")
        if resilience is not None:
            # Health-ranked, hedged, adaptively timed — the coordinator fetch
            # is an idempotent read, so a second in-flight attempt is safe.
            resilience.chase_call(
                targets, "store.get_coordinator",
                {"relation": relation, "epoch": epoch}, 32,
                accept=lambda _src, rep: (
                    False if rep.get("missing") else (deliver(rep["record"]) or True)
                ),
                on_exhausted=not_found,
            )
            return

        def attempt(index: int) -> None:
            if index >= len(targets):
                not_found()
                return
            self.rpc.call(
                targets[index],
                "store.get_coordinator",
                {"relation": relation, "epoch": epoch},
                32,
                on_reply=lambda rep: deliver(rep["record"]) if not rep.get("missing") else attempt(index + 1),
                on_failure=lambda _addr: attempt(index + 1),
            )

        attempt(0)

    # ----------------------------------------------- retrieve message handlers

    def _on_retrieve_manifest(self, _src: str, payload: Mapping[str, object], _respond) -> None:
        operation = self._retrievals.get(payload["request_id"])
        if operation is not None:
            operation.on_manifest(payload)

    def _on_retrieve_result(self, _src: str, payload: Mapping[str, object], _respond) -> None:
        operation = self._retrievals.get(payload["request_id"])
        if operation is not None:
            operation.on_result(payload)

    def _finish_retrieval(self, request_id: int) -> None:
        self._retrievals.pop(request_id, None)

    def reset_volatile(self) -> None:
        """Abandon all in-flight retrievals after a crash-restart.

        Their futures were failed when the node crashed; the operations'
        failure listeners must be unhooked too, or the next unrelated failure
        would resurrect them as zombies on the restarted node.
        """
        for operation in list(self._retrievals.values()):
            operation._finished = True
            self.node.remove_failure_listener(operation._on_peer_failure)
        self._retrievals.clear()

    def _rekey_retrieval(self, operation: "_RetrieveOperation") -> None:
        """Give a restarting retrieval a fresh request id.

        Results addressed to the old id find no operation and are dropped —
        that is what keeps a restarted retrieval duplicate-free even when
        data nodes from the aborted attempt are still pushing results.
        """
        self._retrievals.pop(operation.request_id, None)
        self._next_request_id += 1
        operation.request_id = self._next_request_id
        self._retrievals[operation.request_id] = operation


class _PublishOperation:
    """State machine for publishing one :class:`UpdateBatch` at one epoch."""

    def __init__(
        self,
        client: StorageClient,
        batch: UpdateBatch,
        epoch: int,
        snapshot: RoutingSnapshot,
        on_complete: Callable[[CoordinatorRecord], None],
        previous_epoch_hint: int | None = None,
    ) -> None:
        self.client = client
        self.batch = batch
        self.epoch = epoch
        self.snapshot = snapshot
        self.on_complete = on_complete
        self.relation = batch.relation
        self.previous_epoch_hint = previous_epoch_hint
        self._known_epochs: set[int] = set()
        self._previous_record: CoordinatorRecord | None = None
        self._previous_pages: dict[PageId, IndexPage] = {}

    # -- step 1: discover the previous version -------------------------------

    def start(self) -> None:
        # The previous version is looked up through the union of the catalog
        # replicas (see StorageClient.fetch_catalog_epochs): building on a
        # stale catalog subset would silently drop the unseen batches from
        # this and every later version.
        self.client.fetch_catalog_epochs(self.relation, self.snapshot, self._with_catalog)

    def _with_catalog(self, known_epochs: set) -> None:
        self._known_epochs = set(known_epochs)
        if self.previous_epoch_hint is not None:
            # The caller vouches for this epoch even if no reachable catalog
            # replica lists it; the coordinator record it points to is found
            # by exhaustive search.
            self._known_epochs.add(self.previous_epoch_hint)
        previous_epochs = [e for e in self._known_epochs if e < self.epoch]
        if not previous_epochs:
            self._build_first_version()
            return
        previous_epoch = max(previous_epochs)
        self.client.fetch_coordinator(
            self.relation,
            previous_epoch,
            self.snapshot,
            on_record=self._with_previous_record,
            on_error=lambda exc: self._build_first_version(),
        )

    def _with_previous_record(self, record: CoordinatorRecord) -> None:
        self._previous_record = record
        affected = self._affected_pages(record)
        if not affected:
            # No overlap with existing pages (can only happen for an empty
            # batch); simply reuse the old record under the new epoch.
            self._write_version(list(record.pages), [], [])
            return
        completion = _Completion(lambda: self._build_incremental_version(affected))
        cache = self.client.cache
        for ref in affected:
            if cache is not None:
                cached_page = cache.get_page(ref.page_id)
                if cached_page is not None:
                    # Page versions are immutable: a previously fetched copy of
                    # an affected page can seed the new version locally.
                    self._previous_pages[ref.page_id] = cached_page
                    continue
            completion.add()
            self._fetch_previous_page(ref, completion)
        completion.seal()

    def _fetch_previous_page(self, ref: PageRef, completion: _Completion) -> None:
        """Fetch one affected previous-version page, searching exhaustively.

        The new version of an affected page is built as *previous page ±
        changes*, so fetching the previous version is correctness-critical: a
        miss silently treated as an empty page would drop every unchanged
        tuple ID the page carried.  After a membership change the page may
        legitimately live outside its current replica set (the ring moved and
        background replication has not caught up), so a ``missing`` reply
        fails over to the next candidate exactly like a crashed one, across
        *all* live nodes of the snapshot — the paper's "search other nodes
        nearby in the system until it found a copy" rule.
        """
        targets = search_targets(
            self.snapshot, ref.storage_key, self.client.replication_factor,
            exclude=(self.client.node.address,),
        )
        local = self.client.node.services.get("storage")
        if local is not None:
            page = local.local_or_cached_page(ref.page_id)
            if page is not None:
                self._previous_pages[ref.page_id] = page
                completion.done()
                return

        resilience = self.client.node.services.get("resilience")
        if resilience is not None:
            resilience.chase_call(
                targets, "store.get_page", {"page_id": ref.page_id}, 32,
                accept=lambda _src, rep: (
                    False if rep.get("missing")
                    else (self._store_previous_page(ref, rep, completion) or True)
                ),
                on_exhausted=completion.done,
            )
            return

        def attempt(index: int) -> None:
            if index >= len(targets):
                # No live node holds the page: its tuples are unrecoverable
                # (the failure exceeded the replication factor).  Publishing
                # proceeds with an empty base rather than deadlocking.
                completion.done()
                return
            self.client.rpc.call(
                targets[index], "store.get_page", {"page_id": ref.page_id}, 32,
                on_reply=lambda rep: self._store_previous_page(ref, rep, completion)
                if not rep.get("missing") else attempt(index + 1),
                on_failure=lambda _addr: attempt(index + 1),
            )

        attempt(0)

    def _store_previous_page(self, ref: PageRef, reply: Mapping[str, object], completion: _Completion) -> None:
        self._previous_pages[ref.page_id] = reply["page"]
        if self.client.cache is not None:
            self.client.cache.put_page(reply["page"])
        completion.done()

    def _affected_pages(self, record: CoordinatorRecord) -> list[PageRef]:
        schema = self.batch.schema
        changed_hashes = [
            schema.tuple_id_for(values, 0).hash_key
            for values in list(self.batch.inserts) + list(self.batch.modifications)
        ] + [schema.tuple_id_for_key(key, 0).hash_key for key in self.batch.deletes]
        affected: dict[PageId, PageRef] = {}
        for hash_key in changed_hashes:
            ref = record.page_for_hash(hash_key)
            affected[ref.page_id] = ref
        return list(affected.values())

    # -- step 2: build the new version ----------------------------------------

    def _build_first_version(self) -> None:
        schema = self.batch.schema
        num_pages = choose_page_count(
            len(self.batch.inserts), len(self.snapshot.nodes), self.client.page_capacity
        )
        layout = initial_page_layout(self.relation, self.epoch, num_pages)
        pages = {ref.page_id: IndexPage(ref, []) for ref in layout}
        new_tuples: list[VersionedTuple] = []
        for values in self.batch.inserts:
            tid = schema.tuple_id_for(values, self.epoch)
            new_tuples.append(VersionedTuple(self.relation, tid, values))
            for ref in layout:
                if ref.hash_range.contains(tid.hash_key):
                    pages[ref.page_id].tuple_ids.append(tid)
                    break
        for page in pages.values():
            page.tuple_ids.sort(key=lambda tid: (tid.hash_key, tid.epoch))
        self._write_version(list(layout), list(pages.values()), new_tuples)

    def _build_incremental_version(self, affected: Sequence[PageRef]) -> None:
        schema = self.batch.schema
        record = self._previous_record
        assert record is not None
        new_tuples: list[VersionedTuple] = []
        inserts_by_page: dict[PageId, list[TupleId]] = {}
        removals_by_page: dict[PageId, list[TupleId]] = {}

        def page_of(hash_key: int) -> PageRef:
            return record.page_for_hash(hash_key)

        for values in self.batch.inserts:
            tid = schema.tuple_id_for(values, self.epoch)
            new_tuples.append(VersionedTuple(self.relation, tid, values))
            inserts_by_page.setdefault(page_of(tid.hash_key).page_id, []).append(tid)

        for values in self.batch.modifications:
            key_values = schema.key_of(values)
            tid = schema.tuple_id_for(values, self.epoch)
            new_tuples.append(VersionedTuple(self.relation, tid, values))
            ref = page_of(tid.hash_key)
            inserts_by_page.setdefault(ref.page_id, []).append(tid)
            old = self._find_current_id(ref, key_values)
            if old is not None:
                removals_by_page.setdefault(ref.page_id, []).append(old)

        for key in self.batch.deletes:
            key_values = tuple(key)
            hash_key = schema.tuple_id_for_key(key_values, 0).hash_key
            ref = page_of(hash_key)
            old = self._find_current_id(ref, key_values)
            if old is not None:
                removals_by_page.setdefault(ref.page_id, []).append(old)

        new_refs: list[PageRef] = []
        new_pages: list[IndexPage] = []
        sequence = 0
        for ref in record.pages:
            if ref.page_id not in inserts_by_page and ref.page_id not in removals_by_page:
                new_refs.append(ref)  # page shared with the previous version
                continue
            previous = self._previous_pages.get(ref.page_id, IndexPage(ref, []))
            new_page = previous.with_changes(
                self.epoch,
                sequence,
                inserts=inserts_by_page.get(ref.page_id, ()),
                removals=removals_by_page.get(ref.page_id, ()),
            )
            sequence += 1
            new_refs.append(new_page.ref)
            new_pages.append(new_page)
        self._write_version(new_refs, new_pages, new_tuples)

    def _find_current_id(self, ref: PageRef, key_values: tuple[Value, ...]) -> TupleId | None:
        page = self._previous_pages.get(ref.page_id)
        if page is None:
            return None
        candidates = [tid for tid in page.tuple_ids if tid.key_values == key_values]
        if not candidates:
            return None
        return max(candidates, key=lambda tid: tid.epoch)

    # -- step 3: write everything out -------------------------------------------

    def _write_version(
        self,
        refs: list[PageRef],
        new_pages: list[IndexPage],
        new_tuples: list[VersionedTuple],
    ) -> None:
        """Write the version out, with the catalog entry as the commit point.

        Tuples, inverse entries, index pages and the coordinator record fan
        out concurrently; the catalog entry — what epoch resolution consults —
        is written only once all of them are acknowledged (or failed over).
        A publisher that crashes mid-publish therefore leaves either a fully
        readable version or an invisible orphan: the torn state where a
        resolvable epoch points at half-written pages cannot occur, and the
        next publish of the relation builds on the last *committed* version.
        """
        record = CoordinatorRecord(self.relation, self.epoch, refs)
        completion = _Completion(lambda: self._commit(record))
        replication = self.client.replication_factor
        rpc = self.client.rpc

        # Tuples, batched by destination node.
        tuples_by_destination: dict[str, list[VersionedTuple]] = {}
        for tup in new_tuples:
            for destination in replica_set(self.snapshot, tup.hash_key, replication):
                tuples_by_destination.setdefault(destination, []).append(tup)
        for destination, tuples in tuples_by_destination.items():
            completion.add()
            size = sum(t.estimated_size() for t in tuples)
            rpc.call(
                destination, "store.put_tuples", {"tuples": tuples}, size,
                on_reply=lambda _rep: completion.done(),
                on_failure=lambda _addr: completion.done(),
            )

        # Inverse entries (tuple key → page holding its current version),
        # co-located with the tuples themselves.
        inverse_by_destination: dict[str, list[tuple]] = {}
        ref_by_page = {ref.page_id: ref for ref in refs}
        for page in new_pages:
            for tid in page.tuple_ids:
                if tid.epoch != self.epoch:
                    continue
                entry = (tid.key_values, ref_by_page[page.page_id], self.epoch)
                for destination in replica_set(self.snapshot, tid.hash_key, replication):
                    inverse_by_destination.setdefault(destination, []).append(entry)
        for destination, entries in inverse_by_destination.items():
            completion.add()
            rpc.call(
                destination, "store.put_inverse",
                {"relation": self.relation, "entries": entries}, 48 * len(entries),
                on_reply=lambda _rep: completion.done(),
                on_failure=lambda _addr: completion.done(),
            )

        # Index pages, placed at the midpoint of their hash range.
        for page in new_pages:
            for destination in replica_set(self.snapshot, page.ref.storage_key, replication):
                completion.add()
                rpc.call(
                    destination, "store.put_page", {"page": page}, page.estimated_size(),
                    on_reply=lambda _rep: completion.done(),
                    on_failure=lambda _addr: completion.done(),
                )

        # Relation coordinator record (the catalog entry follows in _commit).
        for destination in replica_set(
            self.snapshot, coordinator_key(self.relation, self.epoch), replication
        ):
            completion.add()
            rpc.call(
                destination, "store.put_coordinator", {"record": record},
                record.estimated_size(),
                on_reply=lambda _rep: completion.done(),
                on_failure=lambda _addr: completion.done(),
            )

        completion.seal()

    def _commit(self, record: CoordinatorRecord) -> None:
        """Write the catalog entries — the version becomes resolvable — then ack.

        The write carries every epoch this publish learnt of, not just its
        own: catalog entries are grow-only sets merged on write, so each
        publish doubles as an anti-entropy round that back-fills replicas
        (e.g. a crash-restarted node whose durable catalog predates recent
        versions) with the epochs they missed.
        """
        epochs = sorted(self._known_epochs | {self.epoch})
        completion = _Completion(lambda: self.on_complete(record))
        rpc = self.client.rpc
        for destination in replica_set(
            self.snapshot, catalog_key(self.relation), self.client.replication_factor
        ):
            completion.add()
            rpc.call(
                destination, "store.put_catalog",
                {"relation": self.relation, "epochs": epochs}, 8 + 8 * len(epochs),
                on_reply=lambda _rep: completion.done(),
                on_failure=lambda _addr: completion.done(),
            )
        completion.seal()


class _RetrieveOperation:
    """State machine for one Algorithm-1 retrieval."""

    def __init__(
        self,
        client: StorageClient,
        request_id: int,
        relation: str,
        epoch: int,
        key_predicate: Callable[[tuple[Value, ...]], bool] | None,
        snapshot: RoutingSnapshot,
        on_complete: Callable[[RetrieveResult], None],
        on_error: Callable[[Exception], None] | None,
        predicate=None,
        projection=None,
    ) -> None:
        self.client = client
        self.request_id = request_id
        self.relation = relation
        self.epoch = epoch
        self.key_predicate = key_predicate
        #: Full-tuple predicate descriptor pushed to the data nodes.
        self.predicate = predicate
        #: Projection descriptor pushed to the data nodes (None = full rows).
        self.projection = projection
        self.snapshot = snapshot
        self.on_complete = on_complete
        self.on_error = on_error or (lambda exc: (_ for _ in ()).throw(exc))
        self.resolved_epoch: int | None = None
        self._expected_pages = 0
        self._manifests: dict[PageId, int] = {}
        self._results_per_page: dict[PageId, int] = {}
        self._tuples: list[VersionedTuple] = []
        self._missing: list[TupleId] = []
        self._finished = False
        # Per-page tuple accumulation for the version-keyed batch cache; only
        # unfiltered, unprojected retrievals may *fill* it (the batch must be
        # the page's complete answer).  Filtered retrievals still *read* it:
        # a cached full batch is filtered/projected locally, shipping nothing.
        self._cacheable = (
            key_predicate is None and predicate is None and projection is None
            and client.cache is not None
        )
        self._page_tuples: dict[PageId, list[VersionedTuple]] = {}
        self._cached_pages: set[PageId] = set()
        self._unavailable_pages: set[PageId] = set()
        self._pages_from_cache = 0
        #: Bumped on every failure-driven restart; callbacks belonging to an
        #: earlier attempt are discarded when they fire late.
        self._attempt = 0
        self._restarts = 0

    #: Retrieval restarts tolerated before the operation gives up.  Each
    #: restart corresponds to (at least) one node failing mid-retrieval.
    MAX_RESTARTS = 3

    def start(self) -> None:
        # Algorithm 1's data flow is push-based (casts from index and data
        # nodes back to the requester), so a participant crashing mid-flight
        # would otherwise leave the retrieval waiting forever for results
        # that died with it.  The operation therefore watches the transport's
        # failure signal and restarts itself against a fresh snapshot.  The
        # listener is registered after the (synchronous) kick-off so a send
        # that raises — e.g. the requester itself is down — leaks nothing.
        self._begin()
        self.client.node.add_failure_listener(self._on_peer_failure)

    def _begin(self) -> None:
        attempt = self._attempt
        self.client.resolve_epoch(
            self.relation, self.epoch, self.snapshot,
            on_resolved=self._guarded(attempt, self._with_epoch),
            on_error=self._guarded(attempt, self._fail),
        )

    def _guarded(self, attempt: int, callback):
        """Wrap ``callback`` so it fires only for the current attempt."""

        def guarded(*args) -> None:
            if self._finished or attempt != self._attempt:
                return
            callback(*args)

        return guarded

    def _on_peer_failure(self, failed_address: str) -> None:
        """A node failed while this retrieval was in flight: restart it.

        By the time the failure signal fires, the membership view already
        removed the failed node (it registered its listener first), so the
        fresh snapshot routes every page to live owners, and the data-node
        fallback search covers tuples whose owner died.  The restart takes a
        new request id — results from the aborted attempt find no matching
        operation and are dropped, so the final tuple set carries no
        duplicates.
        """
        if self._finished:
            return
        # A node outside this attempt's snapshot cannot be serving any part
        # of it (every request and fallback search targets snapshot members),
        # so its failure must not burn the bounded restart budget.
        if not any(
            physical_address(entry) == failed_address
            for entry in self.snapshot.nodes
        ):
            return
        if not self._restart_attempt():
            self._fail(TupleNotFoundError(
                f"retrieval of {self.relation!r}@{self.epoch} restarted "
                f"{self.MAX_RESTARTS} times without completing"))

    def _restart_attempt(self) -> bool:
        """Reset per-attempt state and re-run against a fresh snapshot.

        Returns False (without restarting) once the restart budget is spent.
        """
        self._restarts += 1
        if self._restarts > self.MAX_RESTARTS:
            return False
        self._attempt += 1
        self.snapshot = self.client.membership.snapshot()
        self.resolved_epoch = None
        self._expected_pages = 0
        self._manifests.clear()
        self._results_per_page.clear()
        self._tuples.clear()
        self._missing.clear()
        self._page_tuples.clear()
        self._cached_pages.clear()
        self._unavailable_pages.clear()
        self._pages_from_cache = 0
        self.client._rekey_retrieval(self)
        self._begin()
        return True

    def _with_epoch(self, resolved_epoch: int) -> None:
        attempt = self._attempt
        self.resolved_epoch = resolved_epoch
        self.client.fetch_coordinator(
            self.relation, resolved_epoch, self.snapshot,
            on_record=self._guarded(attempt, self._with_record),
            on_error=self._guarded(attempt, self._fail),
        )

    def _apply_pushdown(self, batch) -> list[VersionedTuple]:
        """Filter/project a locally cached (encoded) full tuple batch.

        Applies the same predicate and projection the data nodes would have
        applied remotely, so a cache-served page produces byte-identical
        result tuples to a remotely scanned one — with zero wire traffic.
        Cache entries are :class:`~repro.common.serialization.EncodedScanBatch`
        objects: the key predicate runs over the (unencoded) tuple ids, the
        pushed predicate is evaluated directly over the encoded columns, and
        only surviving positions are decoded.  A batch the predicate provably
        rules out is skipped without decoding a single value.
        """
        if isinstance(batch, EncodedScanBatch):
            return self._apply_pushdown_encoded(batch)
        # Legacy path for plain tuple sequences (driver/test callers).
        pushdown = _pushdown()
        key_filter = pushdown.predicate_callable(self.key_predicate)
        row_filter = pushdown.predicate_callable(self.predicate)
        tuples = list(batch)
        if key_filter is not None:
            tuples = [t for t in tuples if key_filter(t.tuple_id.key_values)]
        if row_filter is not None:
            tuples = [t for t in tuples if row_filter(t.values)]
        if self.projection is not None:
            tuples = [
                VersionedTuple(t.relation, t.tuple_id, self.projection.apply(t.values))
                for t in tuples
            ]
        return tuples

    def _apply_pushdown_encoded(self, batch: EncodedScanBatch) -> list[VersionedTuple]:
        pushdown = _pushdown()
        key_filter = pushdown.predicate_callable(self.key_predicate)
        candidates: list[int] | None = None
        if key_filter is not None:
            candidates = [
                i for i, tid in enumerate(batch.tuple_ids)
                if key_filter(tid.key_values)
            ]
        residual_filter = None
        if isinstance(self.predicate, pushdown.ScanPredicate):
            positions, residual = pushdown.encoded_match_positions(
                self.predicate, batch.batch
            )
            if positions is not None:
                if candidates is None:
                    candidates = positions
                else:
                    position_set = set(positions)
                    candidates = [i for i in candidates if i in position_set]
            residual_filter = pushdown.conjunction_callable(
                residual, self.predicate.attributes
            )
        elif self.predicate is not None:
            # Opaque callable (legacy API): nothing is decidable on codes.
            residual_filter = pushdown.predicate_callable(self.predicate)
        if candidates is not None and not candidates:
            # Proved empty from tuple ids / encoded metadata alone.
            ENCODING_STATS.batches_skipped += 1
            return []
        if self.projection is not None and residual_filter is None:
            # Lazy column decode: only the projected columns of the surviving
            # positions are ever materialised.
            positions = (
                candidates if candidates is not None
                else list(range(len(batch.tuple_ids)))
            )
            columns = [
                batch.batch.columns[i].decode_positions(positions)
                for i in self.projection.positions()
            ]
            rows = list(zip(*columns)) if columns else [() for _ in positions]
            return [
                VersionedTuple(batch.relation, batch.tuple_ids[i], row)
                for i, row in zip(positions, rows)
            ]
        if candidates is None:
            tuples = batch.decode_tuples()
        else:
            tuples = batch.decode_tuples_at(candidates)
        if residual_filter is not None:
            tuples = [t for t in tuples if residual_filter(t.values)]
        if self.projection is not None:
            tuples = [
                VersionedTuple(t.relation, t.tuple_id, self.projection.apply(t.values))
                for t in tuples
            ]
        return tuples

    def _with_record(self, record: CoordinatorRecord) -> None:
        self._expected_pages = len(record.pages)
        if not record.pages:
            self._finish()
            return
        remote_refs = []
        for ref in record.pages:
            if self.client.cache is not None:
                batch = self.client.cache.get_scan(ref.page_id)
                if batch is not None:
                    # The whole page scan is warm: no index-node cast, no
                    # data-node requests, no tuples on the wire.  Unchanged
                    # pages shared with an older epoch hit here even when the
                    # relation has been republished since.  A pushed
                    # predicate/projection is applied to the cached full
                    # batch locally.
                    self._manifests[ref.page_id] = 0
                    self._tuples.extend(self._apply_pushdown(batch))
                    self._cached_pages.add(ref.page_id)
                    self._pages_from_cache += 1
                    continue
            remote_refs.append(ref)
        if not remote_refs:
            self._maybe_finish()
            return
        pushdown = _pushdown()
        descriptor_size = (
            pushdown.predicate_wire_size(self.key_predicate)
            + pushdown.predicate_wire_size(self.predicate)
            + (self.projection.estimated_size() if self.projection is not None else 0)
        )
        resilience = self.client.node.services.get("resilience")
        for ref in remote_refs:
            if resilience is None:
                index_node = physical_address(self.snapshot.owner_of(ref.storage_key))
            else:
                # Any page replica can run the index scan (the handler falls
                # back to its own replica chase when it lacks the page), so
                # route around suspected owners; all-healthy picks the
                # primary owner, matching the resilience-off routing.
                index_node = resilience.select_target(
                    replica_set(
                        self.snapshot, ref.storage_key, self.client.replication_factor
                    )
                )
            self.client.rpc.cast(
                index_node,
                "store.retrieve_page",
                {
                    "request_id": self.request_id,
                    "requester": self.client.node.address,
                    "relation": self.relation,
                    "page_ref": ref,
                    "key_predicate": self.key_predicate,
                    "predicate": self.predicate,
                    "projection": self.projection,
                    "snapshot": self.snapshot,
                    "replication_factor": self.client.replication_factor,
                },
                size=96 + descriptor_size,
            )

    # -- messages from index / data nodes -----------------------------------------

    def on_manifest(self, payload: Mapping[str, object]) -> None:
        page_id: PageId = payload["page_id"]
        self._manifests[page_id] = payload["data_requests"]
        if payload.get("missing"):
            self._unavailable_pages.add(page_id)
        self._maybe_finish()

    def on_result(self, payload: Mapping[str, object]) -> None:
        page_id: PageId = payload["page_id"]
        self._tuples.extend(payload["tuples"])
        self._missing.extend(payload.get("missing", ()))
        self._results_per_page[page_id] = self._results_per_page.get(page_id, 0) + 1
        if self._cacheable:
            self._page_tuples.setdefault(page_id, []).extend(payload["tuples"])
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self._finished or len(self._manifests) < self._expected_pages:
            return
        for page_id, expected in self._manifests.items():
            if self._results_per_page.get(page_id, 0) < expected:
                return
        self._finish()

    def _finish(self) -> None:
        if self._unavailable_pages and not self._missing:
            # A page no reachable node could produce: its rows would be
            # silently absent from the result, which must never happen —
            # retry against a fresh snapshot (the holder may have restarted),
            # then give up loudly.
            if self._restart_attempt():
                return
            self._fail(TupleNotFoundError(
                f"{len(self._unavailable_pages)} index page(s) of "
                f"{self.relation!r}@{self.epoch} are unavailable on every replica"))
            return
        self._finished = True
        self.client.node.remove_failure_listener(self._on_peer_failure)
        self.client._finish_retrieval(self.request_id)
        if self._missing:
            self.on_error(TupleNotFoundError(
                f"{len(self._missing)} tuple(s) of {self.relation!r} could not be "
                f"found on any replica"))
            return
        if self._cacheable:
            # Every remotely scanned page completed with nothing missing, so
            # each per-page batch is the page's full answer (an empty batch
            # for pages whose range holds no tuples); page versions are
            # immutable, so these entries can never go stale.  Pages no
            # replica could produce are the one thing that must not be
            # cached — absence here is not knowledge of emptiness.
            for page_id in self._manifests:
                if page_id in self._cached_pages or page_id in self._unavailable_pages:
                    continue
                self.client.cache.put_scan(page_id, self._page_tuples.get(page_id, ()))
        self.on_complete(
            RetrieveResult(
                relation=self.relation,
                epoch=self.epoch,
                resolved_epoch=self.resolved_epoch or self.epoch,
                tuples=self._tuples,
                pages_scanned=self._expected_pages,
                missing=self._missing,
                pages_from_cache=self._pages_from_cache,
            )
        )

    def _fail(self, exc: Exception) -> None:
        self._finished = True
        self.client.node.remove_failure_listener(self._on_peer_failure)
        self.client._finish_retrieval(self.request_id)
        self.on_error(exc)


def register_retrieve_handlers(service: StorageService, replication_factor: int = 3) -> None:
    """Register the index-node and data-node sides of the retrieve protocol.

    These handlers complement :class:`StorageService`'s request/response
    methods with the *push* messages of Algorithm 1: an index node receiving a
    ``store.retrieve_page`` cast filters the page's tuple IDs and forwards
    per-data-node ``store.retrieve_tuples`` casts; a data node receiving one
    looks the tuples up (fetching any that are missing from replicas first)
    and sends the results straight to the requester.
    """
    rpc = service.rpc
    node = service.node

    def on_retrieve_tuples(_src: str, payload: Mapping[str, object], _respond) -> None:
        snapshot: RoutingSnapshot = payload["snapshot"]
        relation = payload["relation"]
        requested: list[TupleId] = payload["tuple_ids"]
        requester = payload["requester"]
        request_id = payload["request_id"]
        page_id = payload["page_id"]
        replication_factor = payload["replication_factor"]
        row_filter = _pushdown().predicate_callable(payload.get("predicate"))
        projection = payload.get("projection")
        found, missing = service.lookup_tuples(relation, requested)

        def send_result(extra: list[VersionedTuple], still_missing: list[TupleId]) -> None:
            # Storage-side pushdown: the pushed predicate filters and the
            # pushed projection narrows each tuple *here*, before the result
            # is batched for the requester — only surviving, narrowed rows
            # ever cross the simulated network.
            tuples = found + extra
            if row_filter is not None:
                tuples = [t for t in tuples if row_filter(t.values)]
            if projection is not None:
                tuples = [
                    VersionedTuple(t.relation, t.tuple_id, projection.apply(t.values))
                    for t in tuples
                ]
            # Data nodes ship encoded columns: the charged size is the
            # compressed encoded batch (ids + columnar payload), not the sum
            # of raw per-tuple estimates.
            size = (
                EncodedScanBatch.from_tuples(tuples).stored_size()
                + 24 * len(still_missing)
            )
            rpc.cast(requester, "store.retrieve_result",
                     {"request_id": request_id, "page_id": page_id,
                      "tuples": tuples, "missing": still_missing}, size)

        if not missing:
            send_result([], [])
            return

        # Proactively fetch missing versions from replicas before answering,
        # so the requester never sees stale or incomplete data (Section IV).
        # Each missing tuple is chased across the replica/search list until a
        # copy is found; a replica replying without the tuple (it may simply
        # not hold that range yet) moves the search to the next candidate.
        recovered: list[VersionedTuple] = []
        still_missing: list[TupleId] = []
        pending = _CompletionCounter(len(missing), lambda: send_result(recovered, still_missing))
        resilience = node.services.get("resilience")
        for tid in missing:
            replicas = search_targets(
                snapshot, tid.hash_key, replication_factor, exclude=(node.address,)
            )

            if resilience is not None:

                def accept(_src, reply, tid=tid) -> bool:
                    fetched_tuples = [
                        t for t in reply.get("tuples", []) if t.tuple_id == tid
                    ]
                    if not fetched_tuples:
                        return False
                    service.store_tuple(fetched_tuples[0])
                    recovered.append(fetched_tuples[0])
                    pending.done()
                    return True

                def exhausted(tid=tid) -> None:
                    still_missing.append(tid)
                    pending.done()

                resilience.chase_call(
                    replicas, "store.get_tuples",
                    {"relation": relation, "tuple_ids": [tid]}, 48,
                    accept, on_exhausted=exhausted,
                )
                continue

            def attempt(index: int, tid=tid, replicas=replicas) -> None:
                if index >= len(replicas):
                    still_missing.append(tid)
                    pending.done()
                    return

                def handle(reply: Mapping[str, object]) -> None:
                    fetched_tuples = [t for t in reply.get("tuples", []) if t.tuple_id == tid]
                    if fetched_tuples:
                        service.store_tuple(fetched_tuples[0])
                        recovered.append(fetched_tuples[0])
                        pending.done()
                    else:
                        attempt(index + 1)

                rpc.call(
                    replicas[index], "store.get_tuples",
                    {"relation": relation, "tuple_ids": [tid]}, 48,
                    on_reply=handle,
                    on_failure=lambda _addr: attempt(index + 1),
                )

            attempt(0)

    def on_retrieve_page(_src: str, payload: Mapping[str, object], _respond) -> None:
        snapshot: RoutingSnapshot = payload["snapshot"]
        ref: PageRef = payload["page_ref"]
        requester: str = payload["requester"]
        request_id = payload["request_id"]
        relation = payload["relation"]
        pushdown = _pushdown()
        predicate = pushdown.predicate_callable(payload.get("key_predicate"))
        row_predicate = payload.get("predicate")
        projection = payload.get("projection")
        replication_factor = payload["replication_factor"]
        forwarded_size = (
            pushdown.predicate_wire_size(row_predicate)
            + (projection.estimated_size() if projection is not None else 0)
        )

        def scan_page(page: IndexPage) -> None:
            """Filter the page and forward per-data-node tuple requests."""
            node.charge_cpu(INDEX_SCAN_COST_PER_ID * len(page.tuple_ids))
            if predicate is None:
                matching = list(page.tuple_ids)
            else:
                matching = [tid for tid in page.tuple_ids if predicate(tid.key_values)]
            resilience = node.services.get("resilience")
            by_data_node: dict[str, list[TupleId]] = {}
            for tid in matching:
                if resilience is None:
                    owner = physical_address(snapshot.owner_of(tid.hash_key))
                else:
                    # Any replica can serve the tuple request (the handler
                    # recovers misses from its own replica chase), so prefer
                    # a healthy one; with every replica healthy this picks
                    # the primary owner, unchanged from the resilience-off
                    # routing.
                    owner = resilience.select_target(
                        replica_set(snapshot, tid.hash_key, replication_factor)
                    )
                by_data_node.setdefault(owner, []).append(tid)
            rpc.cast(requester, "store.retrieve_manifest",
                     {"request_id": request_id, "page_id": ref.page_id,
                      "data_requests": len(by_data_node)}, 48)
            for data_node, tids in by_data_node.items():
                rpc.cast(data_node, "store.retrieve_tuples",
                         {"request_id": request_id, "requester": requester,
                          "relation": relation, "tuple_ids": tids,
                          "page_id": ref.page_id, "snapshot": snapshot,
                          "predicate": row_predicate, "projection": projection,
                          "replication_factor": replication_factor},
                         size=24 * len(tids) + 64 + forwarded_size)

        def page_unavailable() -> None:
            # ``missing`` distinguishes "no replica holds this page" from a
            # successfully scanned page that simply matched nothing — only
            # the latter may enter the requester's scan cache.
            rpc.cast(requester, "store.retrieve_manifest",
                     {"request_id": request_id, "page_id": ref.page_id,
                      "data_requests": 0, "missing": True}, 48)

        page = service.local_or_cached_page(ref.page_id)
        if page is not None:
            scan_page(page)
            return
        # The page is not here (e.g. the ring moved since it was written):
        # fetch it from a replica, keep a local copy, then continue.  A
        # ``missing`` reply fails over to the next candidate exactly like a
        # crashed one — after membership churn the page may sit on any node
        # of the snapshot, and the first candidate answering "not here" says
        # nothing about the others.
        targets = search_targets(
            snapshot, ref.storage_key, replication_factor, exclude=(node.address,)
        )

        def attempt(index: int) -> None:
            if index >= len(targets):
                page_unavailable()
                return
            rpc.call(
                targets[index], "store.get_page", {"page_id": ref.page_id}, 32,
                on_reply=lambda reply: fetched(reply)
                if not reply.get("missing") else attempt(index + 1),
                on_failure=lambda _addr: attempt(index + 1),
            )

        def fetched(reply: Mapping[str, object]) -> None:
            service.store_page(reply["page"])
            scan_page(reply["page"])

        resilience = node.services.get("resilience")
        if resilience is not None:
            resilience.chase_call(
                targets, "store.get_page", {"page_id": ref.page_id}, 32,
                accept=lambda _src, reply: (
                    False if reply.get("missing") else (fetched(reply) or True)
                ),
                on_exhausted=page_unavailable,
            )
            return

        attempt(0)

    rpc.register("store.retrieve_page", on_retrieve_page)
    rpc.register("store.retrieve_tuples", on_retrieve_tuples)


class _CompletionCounter:
    """Fire a callback after N completions (helper for fan-out fetches)."""

    def __init__(self, outstanding: int, on_complete: Callable[[], None]) -> None:
        self._outstanding = outstanding
        self._on_complete = on_complete
        if outstanding == 0:
            on_complete()

    def done(self) -> None:
        self._outstanding -= 1
        if self._outstanding == 0:
            self._on_complete()

