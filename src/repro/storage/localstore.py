"""Per-node ordered storage: a B+-tree keyed store (BerkeleyDB JE substitute).

The paper's prototype uses BerkeleyDB Java Edition for persistent local
storage; each data storage node keeps a B+-tree mapping *tuple ID hash →
page ID* and a map *tuple ID → value* so that "the tuples from each index page
are stored nearby on disk, and are retrieved in a single pass through the hash
ID range for that page" (Table I, distributed scan).

:class:`BPlusTree` is a textbook in-memory B+-tree supporting point lookups,
ordered iteration and range scans over arbitrary orderable keys.
:class:`LocalStore` wraps one tree per named index and adds the small
convenience API (named trees, counters, size accounting) the storage service
needs.  Durability is irrelevant to the reproduced experiments, so nothing is
written to disk.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Iterable, Iterator

_DEFAULT_ORDER = 64


class _LeafNode:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.values: list[Any] = []
        self.next: "_LeafNode | None" = None


class _InnerNode:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.children: list[Any] = []


class BPlusTree:
    """An in-memory B+-tree with ordered range scans.

    ``order`` is the maximum number of children of an inner node (and the
    maximum number of entries in a leaf).  Keys must be mutually orderable.
    """

    def __init__(self, order: int = _DEFAULT_ORDER) -> None:
        if order < 4:
            raise ValueError("B+-tree order must be at least 4")
        self.order = order
        self._root: _LeafNode | _InnerNode = _LeafNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    # -- point operations ------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        leaf = self._find_leaf(key)
        index = self._position(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    def put(self, key: Any, value: Any) -> None:
        """Insert or replace the value stored under ``key``."""
        path = self._path_to_leaf(key)
        leaf = path[-1]
        index = self._position(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            leaf.values[index] = value
            return
        leaf.keys.insert(index, key)
        leaf.values.insert(index, value)
        self._size += 1
        if len(leaf.keys) >= self.order:
            self._split(path)

    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns whether it was present.

        Underflow is tolerated (nodes are not merged); the tree stays correct
        and the simplification is harmless for this workload, where deletes
        are rare compared to inserts.
        """
        leaf = self._find_leaf(key)
        index = self._position(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            leaf.keys.pop(index)
            leaf.values.pop(index)
            self._size -= 1
            return True
        return False

    # -- scans ------------------------------------------------------------------

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All entries in key order."""
        leaf = self._leftmost_leaf()
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    def range_scan(
        self,
        low: Any = None,
        high: Any = None,
        include_high: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """Entries with ``low <= key < high`` (or ``<= high`` if inclusive).

        ``None`` bounds mean unbounded on that side.
        """
        leaf = self._leftmost_leaf() if low is None else self._find_leaf(low)
        start = 0 if low is None else self._position(leaf.keys, low)
        while leaf is not None:
            for index in range(start, len(leaf.keys)):
                key = leaf.keys[index]
                if high is not None:
                    if include_high:
                        if key > high:
                            return
                    elif key >= high:
                        return
                yield key, leaf.values[index]
            leaf = leaf.next
            start = 0

    def first(self) -> tuple[Any, Any] | None:
        leaf = self._leftmost_leaf()
        while leaf is not None and not leaf.keys:
            leaf = leaf.next
        if leaf is None:
            return None
        return leaf.keys[0], leaf.values[0]

    # -- internals ----------------------------------------------------------------

    #: Leftmost insertion point for ``key`` — the C-level bisect is
    #: identical to the textbook binary search it replaces.
    _position = staticmethod(bisect_left)

    def _find_leaf(self, key: Any) -> _LeafNode:
        return self._path_to_leaf(key)[-1]

    def _path_to_leaf(self, key: Any) -> list[Any]:
        node = self._root
        path = [node]
        while isinstance(node, _InnerNode):
            index = self._position(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                index += 1
            node = node.children[index]
            path.append(node)
        return path

    def _leftmost_leaf(self) -> _LeafNode:
        node = self._root
        while isinstance(node, _InnerNode):
            node = node.children[0]
        return node

    def _split(self, path: list[Any]) -> None:
        node = path[-1]
        parents = path[:-1]
        while True:
            if isinstance(node, _LeafNode):
                sibling = _LeafNode()
                mid = len(node.keys) // 2
                sibling.keys = node.keys[mid:]
                sibling.values = node.values[mid:]
                node.keys = node.keys[:mid]
                node.values = node.values[:mid]
                sibling.next = node.next
                node.next = sibling
                push_key = sibling.keys[0]
            else:
                sibling = _InnerNode()
                mid = len(node.keys) // 2
                push_key = node.keys[mid]
                sibling.keys = node.keys[mid + 1 :]
                sibling.children = node.children[mid + 1 :]
                node.keys = node.keys[:mid]
                node.children = node.children[: mid + 1]

            if not parents:
                new_root = _InnerNode()
                new_root.keys = [push_key]
                new_root.children = [node, sibling]
                self._root = new_root
                return
            parent = parents.pop()
            index = self._position(parent.keys, push_key)
            parent.keys.insert(index, push_key)
            parent.children.insert(index + 1, sibling)
            if len(parent.keys) < self.order:
                return
            node = parent


class LocalStore:
    """A named collection of B+-trees modelling one node's local database.

    The storage service keeps several logical "databases" per node (relation
    coordinator records, index pages, tuple data, inverse entries); each is a
    separately named tree so scans never cross record types, mirroring how the
    prototype keeps separate BerkeleyDB databases.
    """

    def __init__(self, order: int = _DEFAULT_ORDER) -> None:
        self._order = order
        self._trees: dict[str, BPlusTree] = {}
        self.bytes_stored = 0
        #: Per-entry byte footprint, so replacing or deleting an entry
        #: adjusts ``bytes_stored`` instead of drifting it upward forever.
        self._entry_sizes: dict[tuple[str, Any], int] = {}
        #: Content checksums recorded beside entries when the integrity layer
        #: is on (CRC over the canonical serialized form, written at
        #: publish/replication time and compared on every read).
        self._checksums: dict[tuple[str, Any], int] = {}

    def tree(self, name: str) -> BPlusTree:
        if name not in self._trees:
            self._trees[name] = BPlusTree(self._order)
        return self._trees[name]

    def put(self, tree: str, key: Any, value: Any, size: int = 0) -> None:
        self.tree(tree).put(key, value)
        previous = self._entry_sizes.pop((tree, key), 0)
        self.bytes_stored += size - previous
        if size:
            self._entry_sizes[(tree, key)] = size

    def get(self, tree: str, key: Any, default: Any = None) -> Any:
        return self.tree(tree).get(key, default)

    def delete(self, tree: str, key: Any) -> bool:
        removed = self.tree(tree).delete(key)
        if removed:
            self.bytes_stored -= self._entry_sizes.pop((tree, key), 0)
            self._checksums.pop((tree, key), None)
        return removed

    # -- content checksums -------------------------------------------------------

    def set_checksum(self, tree: str, key: Any, checksum: int) -> None:
        """Record the content checksum stored beside ``(tree, key)``."""
        self._checksums[(tree, key)] = checksum

    def get_checksum(self, tree: str, key: Any) -> int | None:
        """The recorded checksum for ``(tree, key)``, or None if unchecked."""
        return self._checksums.get((tree, key))

    def contains(self, tree: str, key: Any) -> bool:
        return key in self.tree(tree)

    def range_scan(
        self, tree: str, low: Any = None, high: Any = None, include_high: bool = False
    ) -> Iterator[tuple[Any, Any]]:
        return self.tree(tree).range_scan(low, high, include_high)

    def items(self, tree: str) -> Iterable[tuple[Any, Any]]:
        return self.tree(tree).items()

    def count(self, tree: str) -> int:
        return len(self.tree(tree))

    def filter_items(self, tree: str, predicate: Callable[[Any, Any], bool]) -> list[tuple[Any, Any]]:
        return [(k, v) for k, v in self.tree(tree).items() if predicate(k, v)]
