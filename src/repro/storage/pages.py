"""Versioned index pages and relation coordinator records (Figure 3).

The versioned storage scheme tracks, for every relation and epoch, exactly
which tuple versions belong to that snapshot.  The bookkeeping is hierarchical:

* A **relation coordinator record**, addressed by ``h(⟨R, e⟩)``, lists the IDs
  of the index pages that make up relation ``R`` at epoch ``e``, along with
  each page's tuple-ID hash range.
* An **index page**, addressed by the ring position at the *middle* of its
  tuple-hash range (so that it is co-located with most of the tuples it
  references), lists the :class:`~repro.common.types.TupleId` of every tuple
  version live in that range at that epoch.
* **Inverse entries** map a tuple's key back to the page currently holding its
  ID, so that a modification can find and supersede the old version.

Pages are immutable once written; modifying a tuple produces a *new* page
version (a new :class:`PageId` carrying the epoch of the change) while
unaffected pages are shared between relation versions — the storage-reuse
property the paper borrows from CFS and log-structured filesystems.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..common.hashing import KEY_SPACE_SIZE, KeyRange, sha1_key
from ..common.types import TupleId


@dataclass(frozen=True, order=True)
class PageId:
    """Identifier of one version of one index page.

    Matches the paper's description (Example 4.1): the relation name, the
    epoch in which the page was last modified, and a unique identifier for
    that relation and epoch.  The ring position where the page is stored is a
    function of the page's hash range, exposed by :class:`PageRef`.
    """

    relation: str
    epoch: int
    sequence: int

    def __repr__(self) -> str:
        return f"Page({self.relation}@{self.epoch}#{self.sequence})"


@dataclass(frozen=True)
class PageRef:
    """Coordinator-side reference to a page: its ID plus its hash range."""

    page_id: PageId
    hash_range: KeyRange

    @property
    def storage_key(self) -> int:
        """Ring position where the page lives: the middle of its hash range.

        Storing the page at the midpoint of the tuple-key hash range it covers
        keeps the page on the same node as (most of) the tuples it references,
        which is the co-location optimisation Section IV relies on for
        performance.
        """
        return self.hash_range.midpoint()

    def estimated_size(self) -> int:
        return 64  # page id + two 160-bit range bounds + framing


@dataclass
class IndexPage:
    """One version of an index page: the tuple IDs live in its hash range."""

    ref: PageRef
    tuple_ids: list[TupleId] = field(default_factory=list)

    @property
    def page_id(self) -> PageId:
        return self.ref.page_id

    @property
    def hash_range(self) -> KeyRange:
        return self.ref.hash_range

    def min_hash(self) -> int:
        return self.hash_range.start

    def max_hash(self) -> int:
        return self.hash_range.end

    def estimated_size(self) -> int:
        # Each tuple ID costs roughly its key encoding plus an epoch.
        per_id = 24
        return 64 + per_id * len(self.tuple_ids)

    def with_changes(
        self,
        new_epoch: int,
        sequence: int,
        inserts: Iterable[TupleId] = (),
        removals: Iterable[TupleId] = (),
    ) -> "IndexPage":
        """A new page version with ``inserts`` added and ``removals`` dropped.

        ``removals`` identifies superseded versions (same key values, older
        epoch) or deleted tuples.  The new page carries ``new_epoch`` in its ID
        while keeping the same hash range.
        """
        removal_set = set(removals)
        kept = [tid for tid in self.tuple_ids if tid not in removal_set]
        kept.extend(inserts)
        kept.sort(key=lambda tid: (tid.hash_key, tid.epoch))
        new_ref = PageRef(
            PageId(self.page_id.relation, new_epoch, sequence), self.hash_range
        )
        return IndexPage(new_ref, kept)


@dataclass
class CoordinatorRecord:
    """The relation coordinator's state for one relation at one epoch."""

    relation: str
    epoch: int
    pages: list[PageRef] = field(default_factory=list)

    def estimated_size(self) -> int:
        return 32 + sum(page.estimated_size() for page in self.pages)

    def page_for_hash(self, hash_key: int) -> PageRef:
        """The page whose hash range covers ``hash_key``.

        Publishing resolves one page per changed tuple, so this lookup is
        O(pages) × O(tuples) on the hot path if done naively.  The ranges of
        a relation version tile the ring, so a bisect over the (sorted) range
        starts finds the only candidate; a linear scan remains as the
        fallback for records whose pages do not tile (never produced by the
        publish path, but tests construct them).
        """
        index = self.__dict__.get("_page_index")
        if index is None:
            ordered = sorted(self.pages, key=lambda ref: ref.hash_range.start)
            index = ([ref.hash_range.start for ref in ordered], ordered)
            self.__dict__["_page_index"] = index
        starts, ordered = index
        if ordered:
            position = bisect_right(starts, hash_key) - 1
            # A wrapping arc (start > end, spanning 0) sorts last and owns
            # keys below every start; position -1 selects exactly it.
            candidate = ordered[position]
            if candidate.hash_range.contains(hash_key):
                return candidate
        for page in self.pages:
            if page.hash_range.contains(hash_key):
                return page
        raise LookupError(
            f"no page of {self.relation}@{self.epoch} covers hash {hash_key}"
        )


def coordinator_key(relation: str, epoch: int) -> int:
    """Ring position of the relation coordinator for ``relation`` at ``epoch``."""
    return sha1_key(("relation-coordinator", relation, epoch))


def catalog_key(relation: str) -> int:
    """Ring position of the catalog record listing a relation's publish epochs."""
    return sha1_key(("relation-catalog", relation))


def inverse_key(relation: str, key_values: Sequence[object]) -> int:
    """Ring position of the inverse entry for a tuple key.

    The inverse entry shares the ring position of the tuple itself, so looking
    up "which page holds the current version of this tuple" is a local
    operation on the node that stores the tuple.
    """
    return TupleId(tuple(key_values), 0).hash_key


def initial_page_layout(relation: str, epoch: int, num_pages: int) -> list[PageRef]:
    """Partition the full hash ring into ``num_pages`` equal page ranges."""
    if num_pages < 1:
        raise ValueError("a relation needs at least one page")
    refs = []
    boundaries = [(KEY_SPACE_SIZE * i) // num_pages for i in range(num_pages + 1)]
    for sequence in range(num_pages):
        start = boundaries[sequence]
        end = boundaries[sequence + 1] % KEY_SPACE_SIZE
        full = num_pages == 1
        refs.append(
            PageRef(PageId(relation, epoch, sequence), KeyRange(start, end, full=full))
        )
    return refs


def choose_page_count(expected_tuples: int, num_nodes: int, page_capacity: int = 2048) -> int:
    """Pick how many pages a relation should have.

    At least one page per node (so scans parallelise over the whole cluster),
    enough pages that each holds at most ``page_capacity`` tuple IDs, and a
    multiple of the node count.  The last condition makes every page range
    nest exactly inside one node's range under the balanced allocation (both
    carve the ring at ``(2^160 * i) // count`` boundaries), so an index page
    and the tuples it references land on the same node — the co-location
    property Section IV relies on to keep tuple IDs off the network.
    """
    by_capacity = max(1, (expected_tuples + page_capacity - 1) // page_capacity)
    pages = max(num_nodes, by_capacity)
    if num_nodes > 0 and pages % num_nodes:
        pages += num_nodes - (pages % num_nodes)
    return pages
