"""Experiment harness: the parameter sweeps behind every figure of Section VI.

Each ``run_*`` function builds simulated clusters, loads a workload, executes
queries through the distributed engine and returns a list of result rows (one
dict per measured point) with the same quantities the paper plots:

* execution time — simulated seconds (the virtual clock of the network
  simulator), *not* wall-clock time of the benchmark process;
* network traffic — bytes recorded by the traffic meter, reported in MB;
* per-node traffic — total traffic divided by the number of participants.

The sweeps accept size parameters so the benchmark suite can run scaled-down
workloads by default (the full paper-scale sweeps take hours of simulation);
EXPERIMENTS.md records which scale each reported table used.  Results of a
sweep are memoised per-process so that figures sharing a sweep (e.g. Figures
7, 8 and 9) only pay for it once.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Sequence

from ..cache import CacheConfig
from ..cluster import Cluster
from ..net.profiles import EC2_LARGE, LAN_GIGABIT, NetworkProfile, wan_profile
from ..overlay.allocation import BalancedAllocation, PastryAllocation, allocation_imbalance
from ..query.service import (
    RECOVERY_INCREMENTAL,
    RECOVERY_RESTART,
    QueryOptions,
)
from ..workloads import stbenchmark, tpch

MB = 1_000_000.0


@dataclass
class MeasuredQuery:
    """One measured query execution."""

    label: str
    nodes: int
    execution_seconds: float
    total_bytes: int
    rows: int

    @property
    def total_mb(self) -> float:
        return self.total_bytes / MB

    @property
    def per_node_mb(self) -> float:
        return self.total_bytes / MB / max(1, self.nodes)


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None) -> str:
    """Plain-text table used by the benchmark output and the examples."""
    if not rows:
        return "(no results)"
    columns = list(columns or rows[0].keys())
    widths = {c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) for c in columns}
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    separator = "  ".join("-" * widths[c] for c in columns)
    lines = [header, separator]
    for row in rows:
        lines.append("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _measure(cluster: Cluster, query, label: str, options: QueryOptions | None = None) -> MeasuredQuery:
    result = cluster.query(query, options=options)
    return MeasuredQuery(
        label=label,
        nodes=result.statistics.participating_nodes,
        execution_seconds=result.statistics.execution_time,
        total_bytes=result.statistics.bytes_total,
        rows=len(result.rows),
    )


# ---------------------------------------------------------------------------
# STBenchmark sweeps (Figures 7, 8, 9, 13, 15)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _stb_point(scenario: str, num_nodes: int, tuples_per_relation: int, seed: int) -> MeasuredQuery:
    instance = stbenchmark.generate(scenario, tuples_per_relation, seed)
    cluster = Cluster(num_nodes, profile=LAN_GIGABIT)
    cluster.publish_relations(instance.relation_list())
    return _measure(cluster, instance.query, scenario)


def run_stb_node_sweep(
    node_counts: Iterable[int],
    tuples_per_relation: int,
    scenarios: Sequence[str] = stbenchmark.SCENARIOS,
    seed: int = 0,
) -> list[dict]:
    """Figures 7–9: STBenchmark scenarios, varying the number of nodes."""
    rows = []
    for scenario in scenarios:
        for num_nodes in node_counts:
            point = _stb_point(scenario, num_nodes, tuples_per_relation, seed)
            rows.append({
                "scenario": scenario,
                "nodes": num_nodes,
                "tuples_per_relation": tuples_per_relation,
                "execution_seconds": point.execution_seconds,
                "traffic_mb": point.total_mb,
                "per_node_mb": point.per_node_mb,
                "result_rows": point.rows,
            })
    return rows


def run_stb_data_sweep(
    tuple_counts: Iterable[int],
    num_nodes: int,
    scenarios: Sequence[str] = stbenchmark.SCENARIOS,
    seed: int = 0,
) -> list[dict]:
    """Figures 13 and 15: STBenchmark scenarios, varying tuples/relation."""
    rows = []
    for scenario in scenarios:
        for tuples_per_relation in tuple_counts:
            point = _stb_point(scenario, num_nodes, tuples_per_relation, seed)
            rows.append({
                "scenario": scenario,
                "nodes": num_nodes,
                "tuples_per_relation": tuples_per_relation,
                "execution_seconds": point.execution_seconds,
                "traffic_mb": point.total_mb,
                "per_node_mb": point.per_node_mb,
            })
    return rows


# ---------------------------------------------------------------------------
# TPC-H sweeps (Figures 10, 11, 12, 14, 16, 17, 18, 19, 20)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _tpch_cluster(num_nodes: int, scale_factor: float, profile_key: str,
                  bandwidth_kbps: float, latency_ms: float, seed: int,
                  scaling: float) -> tuple:
    """Build (and cache) a cluster loaded with a TPC-H instance."""
    if profile_key == "lan":
        profile: NetworkProfile = LAN_GIGABIT
    elif profile_key == "ec2":
        profile = EC2_LARGE
    elif profile_key == "wan":
        profile = wan_profile(bandwidth_kbps, latency_ms)
    elif profile_key == "lan-latency":
        profile = LAN_GIGABIT.with_latency(latency_ms / 1000.0)
    else:
        raise ValueError(f"unknown profile key {profile_key!r}")
    instance = tpch.generate(scale_factor, seed, scaling=scaling)
    cluster = Cluster(num_nodes, profile=profile)
    cluster.publish_relations(instance.relation_list())
    return cluster, instance


@lru_cache(maxsize=None)
def _tpch_point(query_name: str, num_nodes: int, scale_factor: float, profile_key: str,
                bandwidth_kbps: float, latency_ms: float, seed: int,
                scaling: float) -> MeasuredQuery:
    cluster, _instance = _tpch_cluster(
        num_nodes, scale_factor, profile_key, bandwidth_kbps, latency_ms, seed, scaling
    )
    return _measure(cluster, tpch.query(query_name), query_name)


def run_tpch_sweep(
    node_counts: Iterable[int],
    scale_factor: float,
    queries: Sequence[str] = tpch.QUERIES,
    profile_key: str = "lan",
    bandwidth_kbps: float = 0.0,
    latency_ms: float = 0.0,
    seed: int = 0,
    scaling: float = tpch.DEFAULT_SCALING,
) -> list[dict]:
    """TPC-H queries across a node-count sweep (Figures 10–12 and 18–20).

    ``scaling`` is the fraction of the official TPC-H cardinalities generated
    per unit scale factor.  The node-count sweeps run at a larger fraction
    than the default so that the per-query data volume stays much larger than
    the (fixed-size) control traffic, which is the regime the paper's cluster
    and EC2 experiments operate in.
    """
    rows = []
    for query_name in queries:
        for num_nodes in node_counts:
            point = _tpch_point(
                query_name, num_nodes, scale_factor, profile_key, bandwidth_kbps,
                latency_ms, seed, scaling,
            )
            rows.append({
                "query": query_name,
                "nodes": num_nodes,
                "scale_factor": scale_factor,
                "execution_seconds": point.execution_seconds,
                "traffic_mb": point.total_mb,
                "per_node_mb": point.per_node_mb,
                "result_rows": point.rows,
            })
    return rows


def run_tpch_data_sweep(
    scale_factors: Iterable[float],
    num_nodes: int,
    queries: Sequence[str] = tpch.QUERIES,
    seed: int = 0,
    scaling: float = tpch.DEFAULT_SCALING,
) -> list[dict]:
    """Figures 14 and 16: TPC-H queries, varying the database scale factor."""
    rows = []
    for query_name in queries:
        for scale_factor in scale_factors:
            point = _tpch_point(query_name, num_nodes, scale_factor, "lan", 0.0, 0.0, seed,
                                scaling)
            rows.append({
                "query": query_name,
                "nodes": num_nodes,
                "scale_factor": scale_factor,
                "execution_seconds": point.execution_seconds,
                "traffic_mb": point.total_mb,
                "per_node_mb": point.per_node_mb,
            })
    return rows


def run_bandwidth_sweep(
    bandwidths_kb_per_second: Iterable[float],
    num_nodes: int,
    scale_factor: float,
    queries: Sequence[str] = tpch.QUERIES,
    latency_ms: float = 20.0,
    seed: int = 0,
    scaling: float = tpch.DEFAULT_SCALING,
) -> list[dict]:
    """Figure 17: running time versus per-node bandwidth (HTB-shaped WAN)."""
    rows = []
    for query_name in queries:
        for bandwidth in bandwidths_kb_per_second:
            point = _tpch_point(
                query_name, num_nodes, scale_factor, "wan", bandwidth, latency_ms, seed,
                scaling,
            )
            rows.append({
                "query": query_name,
                "bandwidth_kb_per_s": bandwidth,
                "nodes": num_nodes,
                "scale_factor": scale_factor,
                "execution_seconds": point.execution_seconds,
                "traffic_mb": point.total_mb,
            })
    return rows


def run_latency_sweep(
    latencies_ms: Iterable[float],
    num_nodes: int,
    scale_factor: float,
    queries: Sequence[str] = ("Q3", "Q6"),
    seed: int = 0,
    scaling: float = tpch.DEFAULT_SCALING,
) -> list[dict]:
    """Section VI-C: added link latency has little impact on run time."""
    rows = []
    for query_name in queries:
        for latency in latencies_ms:
            point = _tpch_point(
                query_name, num_nodes, scale_factor, "lan-latency", 0.0, latency, seed,
                scaling,
            )
            rows.append({
                "query": query_name,
                "latency_ms": latency,
                "nodes": num_nodes,
                "execution_seconds": point.execution_seconds,
            })
    return rows


# ---------------------------------------------------------------------------
# Failure / recovery experiments (Figure 21 and the Section VI-E overhead)
# ---------------------------------------------------------------------------


def run_failure_recovery_experiment(
    failure_times: Iterable[float],
    num_nodes: int = 8,
    scale_factor: float = 2.0,
    queries: Sequence[str] = ("Q1", "Q10"),
    seed: int = 0,
    detection_delay: float = 0.002,
) -> list[dict]:
    """Figure 21: kill one node at varying offsets; compare restart with
    incremental recovery (plus the no-failure baseline)."""
    rows = []
    for query_name in queries:
        baseline_cluster, instance = _build_fresh_tpch_cluster(num_nodes, scale_factor, seed,
                                                               detection_delay)
        baseline = _measure(baseline_cluster, tpch.query(query_name), query_name)
        rows.append({
            "query": query_name,
            "failure_time": None,
            "mode": "no-failure",
            "execution_seconds": baseline.execution_seconds,
            "result_rows": baseline.rows,
        })
        for failure_time in failure_times:
            for mode in (RECOVERY_RESTART, RECOVERY_INCREMENTAL):
                cluster, _ = _build_fresh_tpch_cluster(num_nodes, scale_factor, seed,
                                                       detection_delay)
                cluster.enable_query_processing()
                victim = cluster.addresses[num_nodes // 2]
                cluster.fail_node(victim, at_time=cluster.now + failure_time)
                measured = _measure(
                    cluster, tpch.query(query_name), query_name,
                    options=QueryOptions(recovery_mode=mode),
                )
                rows.append({
                    "query": query_name,
                    "failure_time": failure_time,
                    "mode": mode,
                    "execution_seconds": measured.execution_seconds,
                    "result_rows": measured.rows,
                })
    return rows


def _build_fresh_tpch_cluster(num_nodes: int, scale_factor: float, seed: int,
                              detection_delay: float) -> tuple[Cluster, tpch.TpchInstance]:
    instance = tpch.generate(scale_factor, seed)
    cluster = Cluster(num_nodes, profile=LAN_GIGABIT)
    cluster.network.failure_detection_delay = detection_delay
    cluster.publish_relations(instance.relation_list())
    return cluster, instance


def run_recovery_overhead_experiment(
    num_nodes: int = 8,
    scale_factor: float = 1.0,
    queries: Sequence[str] = tpch.QUERIES,
    seed: int = 0,
) -> list[dict]:
    """Section VI-E: cost of carrying provenance tags / recovery support."""
    rows = []
    cluster, _instance = _build_fresh_tpch_cluster(num_nodes, scale_factor, seed, 0.05)
    for query_name in queries:
        with_support = _measure(
            cluster, tpch.query(query_name), query_name,
            options=QueryOptions(provenance_enabled=True),
        )
        without_support = _measure(
            cluster, tpch.query(query_name), query_name,
            options=QueryOptions(provenance_enabled=False),
        )
        time_overhead = (
            (with_support.execution_seconds - without_support.execution_seconds)
            / without_support.execution_seconds * 100.0
        )
        traffic_overhead = (
            (with_support.total_bytes - without_support.total_bytes)
            / max(1, without_support.total_bytes) * 100.0
        )
        rows.append({
            "query": query_name,
            "time_with_support_s": with_support.execution_seconds,
            "time_without_support_s": without_support.execution_seconds,
            "time_overhead_pct": time_overhead,
            "traffic_overhead_pct": traffic_overhead,
        })
    return rows


# ---------------------------------------------------------------------------
# Cache subsystem: cold vs. warm traffic (repro.cache)
# ---------------------------------------------------------------------------


def run_retrieval_cache_experiment(
    num_nodes: int = 8,
    tuples_per_relation: int = 800,
    scenario: str = "select",
    repeats: int = 3,
    policy: str = "greedy-dual",
    seed: int = 0,
) -> list[dict]:
    """Cold vs. warm Algorithm-1 retrieval of an STBenchmark relation.

    Run 1 is cold (every coordinator record, page scan and tuple batch crosses
    the simulated network); later runs are warm and are served from the
    version-keyed per-node cache.  One row per run with the traffic delta, the
    cache counters and how many pages were answered locally.
    """
    instance = stbenchmark.generate(scenario, tuples_per_relation, seed)
    cluster = Cluster(num_nodes, profile=LAN_GIGABIT,
                      cache_config=CacheConfig(policy=policy))
    cluster.publish_relations(instance.relation_list())
    relation = instance.relation_list()[0].schema.name
    rows = []
    for run in range(repeats):
        before_traffic = cluster.traffic_snapshot()
        before_stats = cluster.cache_statistics()["node"]
        result = cluster.retrieve(relation)
        traffic = before_traffic.delta(cluster.traffic_snapshot())
        after_stats = cluster.cache_statistics()["node"]
        rows.append({
            "run": "cold" if run == 0 else f"warm-{run}",
            "relation": relation,
            "nodes": num_nodes,
            "tuples": len(result.tuples),
            "traffic_bytes": traffic.total_bytes,
            "traffic_mb": traffic.total_bytes / MB,
            "pages_scanned": result.pages_scanned,
            "pages_from_cache": result.pages_from_cache,
            "cache_hits": after_stats.hits - before_stats.hits,
            "cache_bytes_saved": after_stats.bytes_saved - before_stats.bytes_saved,
        })
    return rows


def run_result_cache_experiment(
    queries: Sequence[str] = ("Q1", "Q6"),
    num_nodes: int = 8,
    scale_factor: float = 1.0,
    repeats: int = 2,
    policy: str = "greedy-dual",
    seed: int = 0,
) -> list[dict]:
    """Cold vs. warm TPC-H execution through the semantic result cache.

    Each query runs ``repeats`` times on one cluster; the first execution is
    cold, repeats hit the initiator's result cache (same plan fingerprint,
    same relation-version epochs) and ship zero bytes.
    """
    instance = tpch.generate(scale_factor, seed)
    cluster = Cluster(num_nodes, profile=LAN_GIGABIT,
                      cache_config=CacheConfig(policy=policy))
    cluster.publish_relations(instance.relation_list())
    rows = []
    for query_name in queries:
        for run in range(repeats):
            before_traffic = cluster.traffic_snapshot()
            saved_before = cluster.cache_statistics()["result"].bytes_saved
            result = cluster.query(tpch.query(query_name))
            traffic = before_traffic.delta(cluster.traffic_snapshot())
            saved = cluster.cache_statistics()["result"].bytes_saved - saved_before
            rows.append({
                "query": query_name,
                "run": "cold" if run == 0 else f"warm-{run}",
                "execution_seconds": result.statistics.execution_time,
                "traffic_bytes": traffic.total_bytes,
                "traffic_mb": traffic.total_bytes / MB,
                "result_rows": len(result.rows),
                "result_cache_hit": result.statistics.result_cache_hit,
                "result_cache_bytes_saved": saved,
            })
    return rows


# ---------------------------------------------------------------------------
# Concurrent traffic: throughput / latency under multi-tenant load (repro.runtime)
# ---------------------------------------------------------------------------


def _build_concurrency_cluster(
    num_nodes: int,
    tuples_per_relation: int,
    scenario: str,
    seed: int,
    scheduler_config,
    cache_config,
):
    """A cluster loaded with one STBenchmark instance plus its compiled plan.

    The query is compiled once and submitted as a physical plan, so the
    drivers measure distributed execution (the part that concurrency
    overlaps), not repeated plan compilation on the submitting client.
    """
    from ..optimizer.cost import MachineProfile
    from ..optimizer.planner import compile_query

    instance = stbenchmark.generate(scenario, tuples_per_relation, seed)
    cluster = Cluster(num_nodes, profile=LAN_GIGABIT,
                      scheduler_config=scheduler_config, cache_config=cache_config)
    cluster.publish_relations(instance.relation_list())
    plan = compile_query(
        instance.query, cluster.catalog, machine=MachineProfile.for_cluster(cluster)
    ).plan
    return cluster, plan


def run_concurrency_experiment(
    concurrency_levels: Iterable[int] = (1, 2, 4, 8),
    num_nodes: int = 8,
    tuples_per_relation: int = 400,
    scenario: str = "select",
    ops_per_client: int = 4,
    scheduler_config=None,
    cache_config=None,
    use_result_cache: bool = True,
    seed: int = 0,
) -> list[dict]:
    """Closed-loop concurrency sweep: N clients, one outstanding query each.

    Each level runs on a fresh cluster (same data, same plan); clients are
    spread round-robin over the nodes, so level 8 on an 8-node cluster is
    eight tenants querying from eight different machines.  One row per level
    with aggregate throughput and latency percentiles — the single-client
    row is the serial baseline every speedup is judged against.
    """
    from ..query.service import QueryOptions
    from ..runtime.workload import ClosedLoopDriver

    options = QueryOptions(use_result_cache=use_result_cache)
    rows = []
    for level in concurrency_levels:
        cluster, plan = _build_concurrency_cluster(
            num_nodes, tuples_per_relation, scenario, seed, scheduler_config,
            cache_config,
        )
        driver = ClosedLoopDriver(
            cluster.runtime,
            num_clients=level,
            make_op=lambda session, _client, _op: session.submit_query(
                plan, options=options
            ),
            ops_per_client=ops_per_client,
        )
        report = driver.run()
        stats = report.scheduler
        rows.append({
            "scenario": scenario,
            "nodes": num_nodes,
            "clients": level,
            "ops": len(report.records),
            "completed": report.completed,
            "errors": report.errors,
            "throughput_ops_s": report.throughput,
            "mean_latency_s": report.mean_latency,
            "p50_latency_s": report.p50_latency,
            "p99_latency_s": report.p99_latency,
            "mean_queue_delay_s": report.mean_queue_delay,
            "max_in_flight": stats["max_in_flight"],
            "peak_queued": stats["peak_queued"],
            "rejected": stats["rejected"],
        })
    return rows


def run_offered_load_experiment(
    arrival_rates: Iterable[float] = (200.0, 1000.0, 5000.0),
    num_ops: int = 32,
    num_nodes: int = 8,
    tuples_per_relation: int = 400,
    scenario: str = "select",
    scheduler_config=None,
    cache_config=None,
    use_result_cache: bool = True,
    seed: int = 0,
) -> list[dict]:
    """Open-loop sweep: Poisson arrivals at each offered load (queries/s).

    The open-loop driver submits on a schedule regardless of completions, so
    as the offered load crosses the cluster's capacity the admission queue
    grows and the queue delay — not the service time — comes to dominate
    p99 latency.  One row per offered load.
    """
    from ..query.service import QueryOptions
    from ..runtime.workload import OpenLoopDriver

    options = QueryOptions(use_result_cache=use_result_cache)
    rows = []
    for rate in arrival_rates:
        cluster, plan = _build_concurrency_cluster(
            num_nodes, tuples_per_relation, scenario, seed, scheduler_config,
            cache_config,
        )
        driver = OpenLoopDriver(
            cluster.runtime,
            make_op=lambda session, _client, _op: session.submit_query(
                plan, options=options
            ),
            num_ops=num_ops,
            arrival_rate=rate,
            seed=seed,
        )
        report = driver.run()
        stats = report.scheduler
        rows.append({
            "scenario": scenario,
            "nodes": num_nodes,
            "offered_ops_s": rate,
            "ops": len(report.records),
            "completed": report.completed,
            "errors": report.errors,
            "throughput_ops_s": report.throughput,
            "p50_latency_s": report.p50_latency,
            "p99_latency_s": report.p99_latency,
            "mean_queue_delay_s": report.mean_queue_delay,
            "max_in_flight": stats["max_in_flight"],
            "peak_queued": stats["peak_queued"],
            "rejected": stats["rejected"],
        })
    return rows


# ---------------------------------------------------------------------------
# Chaos scenarios: availability + recovery under fault mixes (repro.faults)
# ---------------------------------------------------------------------------

#: Named fault mixes for :func:`run_chaos_experiment`; each entry overrides
#: the :class:`~repro.faults.scenarios.ScenarioConfig` fault budget.
CHAOS_FAULT_MIXES = {
    "clean": dict(crashes=0, partitions=0, chaos_windows=0, slow_nodes=0),
    "crash-restart": dict(crashes=2, partitions=0, chaos_windows=0, slow_nodes=0),
    "partition": dict(crashes=0, partitions=2, chaos_windows=0, slow_nodes=0),
    "message-chaos": dict(crashes=0, partitions=0, chaos_windows=2, slow_nodes=0),
    "slow-node": dict(crashes=0, partitions=0, chaos_windows=0, slow_nodes=2),
    "combined": dict(crashes=1, partitions=1, chaos_windows=1, slow_nodes=1),
}


def run_chaos_experiment(
    fault_mixes: Sequence[str] = tuple(CHAOS_FAULT_MIXES),
    seeds: Sequence[int] = (0, 1, 2),
    num_nodes: int = 6,
    num_ops: int = 14,
    cache: bool = False,
) -> list[dict]:
    """Seeded chaos scenarios per fault mix: availability, latency, recovery.

    Every row is one deterministic scenario (mix + seed): the multi-tenant
    workload runs while the mix's faults fire, the cluster is healed and
    repaired, and the invariant checkers evaluate.  ``violations`` must be 0
    for every mix — a non-zero count is a correctness bug reproducible with
    ``python -m repro.faults.scenarios --seed <seed> ...``.  Availability is
    the fraction of submitted operations acknowledged (operations initiated
    *from* a node the mix crashed legitimately fail); recovery is the virtual
    time from the first fault until the cluster fully quiesced.
    """
    from dataclasses import replace

    from ..faults.scenarios import ScenarioConfig, run_scenario

    base = ScenarioConfig(num_nodes=num_nodes, num_ops=num_ops, cache=cache)
    rows = []
    for mix in fault_mixes:
        for seed in seeds:
            config = replace(base, **CHAOS_FAULT_MIXES[mix])
            report = run_scenario(seed, config)
            rows.append({
                "mix": mix,
                "seed": seed,
                "nodes": num_nodes,
                "ops": report.ops_submitted,
                "acked": report.ops_acked,
                "failed": report.ops_failed,
                "availability": report.availability,
                "mean_latency_s": report.mean_latency,
                "recovery_s": report.recovery_seconds,
                "retransmits": report.faults.get("retransmits", 0),
                "violations": len(report.violations),
            })
    return rows


# ---------------------------------------------------------------------------
# Gray failure: tail latency with one degraded (but live) node (repro.resilience)
# ---------------------------------------------------------------------------

#: Modes of :func:`run_gray_failure_experiment`: healthy baseline, degraded
#: cluster with the resilience layer on, degraded cluster without it.
GRAY_MODES = ("clean", "hedged-degraded", "unhedged-degraded")


def run_gray_failure_experiment(
    modes: Sequence[str] = GRAY_MODES,
    num_nodes: int = 8,
    tuples_per_relation: int = 400,
    num_ops: int = 90,
    op_interval: float = 0.001,
    slowdown: float = 10.0,
    seed: int = 11,
) -> list[dict]:
    """Tail latency of open-loop retrievals against a gray-failed node.

    One node is degraded — ``slowdown``x slower CPU and bandwidth — but stays
    up, answers pings, and keeps its coordinator role: the *gray* failure that
    crash detection never sees.  Retrievals of three relations are submitted
    open-loop (fixed ``op_interval`` pacing, regardless of completions), so a
    slow replica in the read path builds queues and the p99 amplifies far past
    the raw slowdown factor.  Three modes on otherwise identical clusters:

    * ``clean`` — resilience layer on, nobody degraded (the baseline);
    * ``hedged-degraded`` — resilience layer on: representative-work probes
      feed the latency estimators, the victim is suspected, and replica
      selection routes reads around it;
    * ``unhedged-degraded`` — resilience layer off: reads keep hitting the
      victim in primary-owner order.

    One row per mode with p50/p95/p99 (milliseconds) and the resilience
    counters; ``p99_vs_clean`` is the headline ratio the perf suite gates on
    (hedged stays within a few x of clean, unhedged blows past the slowdown
    factor itself).
    """
    from ..faults.injector import FaultInjector
    from ..resilience import ResilienceConfig

    rows = []
    clean_p99: float | None = None
    for mode in modes:
        if mode not in GRAY_MODES:
            raise ValueError(f"unknown gray-failure mode {mode!r}")
        config = None if mode == "unhedged-degraded" else ResilienceConfig()
        cluster = Cluster(num_nodes, profile=LAN_GIGABIT, resilience_config=config)
        injector = FaultInjector(cluster.network, seed=seed)
        cluster.publish_relations([
            _gray_relation(name, tuples_per_relation) for name in ("R", "S", "T")
        ])
        victim = cluster.live_addresses()[num_nodes // 2 - 1]
        if mode != "clean":
            injector.degrade_node(
                victim, cpu_slowdown=slowdown, bandwidth_slowdown=slowdown
            )
        if config is not None:
            # Warm the latency estimators, then keep the probe train running
            # through the measurement window: rehabilitation of a suspect must
            # be evidence-based (probes carrying representative work), not
            # decay-based (cheap control replies dragging its EWMA down).
            cluster.start_resilience_heartbeats(0.3)
            cluster.run()
            cluster.start_resilience_heartbeats(num_ops * op_interval + 0.05)
        session = cluster.session()
        futures: list = []
        names = ("R", "S", "T")
        base = cluster.now
        for i in range(num_ops):
            cluster.network.schedule_at(
                base + i * op_interval,
                lambda name=names[i % 3]: futures.append(session.submit_retrieve(name)),
            )
        cluster.run()
        latencies = sorted(f.latency for f in futures if f.succeeded())
        failed = sum(1 for f in futures if not f.succeeded())
        p50 = _quantile(latencies, 0.50)
        p95 = _quantile(latencies, 0.95)
        p99 = _quantile(latencies, 0.99)
        if mode == "clean":
            clean_p99 = p99
        stats = cluster.resilience_statistics() if config is not None else None
        hedges = stats.hedges if stats is not None else {}
        rows.append({
            "mode": mode,
            "nodes": num_nodes,
            "ops": num_ops,
            "failed": failed,
            "p50_ms": p50 * 1e3,
            "p95_ms": p95 * 1e3,
            "p99_ms": p99 * 1e3,
            "p99_vs_clean": (p99 / clean_p99) if clean_p99 else None,
            "hedges_won": hedges.get("won", 0),
            "retries": stats.retries if stats is not None else 0,
            "breaker_skips": stats.breaker_skips if stats is not None else 0,
        })
    return rows


def _gray_relation(name: str, rows: int):
    from ..common.types import RelationData, Schema

    data = RelationData(Schema(name, ["k", "grp", "v"], key=["k"]))
    for i in range(rows):
        data.add(f"{name}-{i:05d}", f"g{i % 7}", i)
    return data


# ---------------------------------------------------------------------------
# Silent-corruption detection / repair (data-integrity experiment)
# ---------------------------------------------------------------------------


def run_corruption_experiment(
    num_nodes: int = 8,
    tuples_per_relation: int = 300,
    corruptions: int = 12,
    num_ops: int = 60,
    op_interval: float = 0.001,
    seed: int = 17,
) -> dict:
    """End-to-end integrity under silent at-rest corruption.

    A cluster runs with the integrity layer on; ``corruptions`` seeded
    bit-flip events hit stored tuples, index pages and coordinator records
    during the first half of an open-loop retrieval window, so reads race
    the damage.  The experiment reports the three quantities the integrity
    design is judged on:

    * **serving correctness** — ``corrupt_rows_served`` (rows whose values
      differ from the published ground truth; must be 0: a failed checksum
      turns into a replica-failover read-repair, never a wrong answer);
    * **detection** — how many corruptions the read path surfaced during the
      window, the mean/max detection latency per event, and the total after
      scrubbing (must equal ``injected``: the digest exchange catches every
      copy reads never touched);
    * **repair convergence and cost** — scrub rounds until a round finds
      nothing to fix, and the digest+repair byte overhead relative to the
      bytes stored cluster-wide.
    """
    from ..faults.injector import FaultInjector
    from ..integrity import IntegrityConfig

    cluster = Cluster(num_nodes, profile=LAN_GIGABIT,
                      integrity_config=IntegrityConfig())
    injector = FaultInjector(cluster.network, seed=seed)
    names = ("R", "S", "T")
    cluster.publish_relations([
        _gray_relation(name, tuples_per_relation) for name in names
    ])
    expected = {
        name: {
            f"{name}-{i:05d}": (f"{name}-{i:05d}", f"g{i % 7}", i)
            for i in range(tuples_per_relation)
        }
        for name in names
    }
    session = cluster.session()
    futures: list = []
    base = cluster.now
    window = num_ops * op_interval
    # Corruptions land in the first half of the window so the open-loop
    # reads race them; whatever reads miss is left for the scrubber.
    for j in range(corruptions):
        cluster.network.schedule_at(
            base + (j + 0.5) * (window / 2) / corruptions,
            lambda: injector.corrupt_at_rest(),
        )
    for i in range(num_ops):
        cluster.network.schedule_at(
            base + i * op_interval,
            lambda name=names[i % 3]: futures.append(
                (name, session.submit_retrieve(name))
            ),
        )
    cluster.run()

    corrupt_rows_served = 0
    failed = 0
    latencies = []
    for name, future in futures:
        if not future.succeeded():
            failed += 1
            continue
        latencies.append(future.latency)
        for row in future.result().rows():
            if tuple(row) != expected[name][row[0]]:
                corrupt_rows_served += 1
    latencies.sort()

    injected = len(injector.corruption_events)
    detected_by_reads = cluster.integrity_statistics().detected_total

    scrub_rounds = 0
    scrub_bytes = 0
    for _ in range(cluster.integrity_config.max_scrub_rounds):
        report = cluster.run_scrub()
        scrub_rounds += 1
        scrub_bytes += report.total_bytes
        if not (report.corrupt_copies or report.divergent_keys or report.items_copied):
            break

    detection_latencies = []
    for event in injector.corruption_events:
        if event.tree is None:
            continue
        guard = cluster.nodes[event.address].integrity
        detected_at = guard.detection_times.get((event.tree, event.key))
        if detected_at is not None:
            detection_latencies.append(max(0.0, detected_at - event.at))

    stats = cluster.integrity_statistics()
    stored_bytes = sum(
        cluster.storage(address).store.bytes_stored
        for address in cluster.live_addresses()
    )
    return {
        "nodes": num_nodes,
        "ops": num_ops,
        "failed": failed,
        "injected": injected,
        "corrupt_rows_served": corrupt_rows_served,
        "detected_by_reads": detected_by_reads,
        "detected_total": stats.detected_total,
        "repaired_total": stats.repaired_total,
        "unrepairable": stats.unrepairable,
        "quarantine_leftover": sum(
            len(keys) for keys in cluster.quarantined_entries().values()
        ),
        "detection_ms_mean": (
            sum(detection_latencies) / len(detection_latencies) * 1e3
            if detection_latencies else 0.0
        ),
        "detection_ms_max": (
            max(detection_latencies) * 1e3 if detection_latencies else 0.0
        ),
        "scrub_rounds_to_converge": scrub_rounds,
        "scrub_bytes": scrub_bytes,
        "scrub_overhead_ratio": (scrub_bytes / stored_bytes) if stored_bytes else 0.0,
        "p50_ms": _quantile(latencies, 0.50) * 1e3,
        "p99_ms": _quantile(latencies, 0.99) * 1e3,
    }


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


# ---------------------------------------------------------------------------
# Range allocation balance (Figure 2 illustration)
# ---------------------------------------------------------------------------


def run_allocation_balance(node_counts: Iterable[int]) -> list[dict]:
    """Quantify Figure 2: key-space imbalance of Pastry-style vs. balanced
    allocation for small memberships."""
    rows = []
    for num_nodes in node_counts:
        addresses = [f"node-{i:03d}" for i in range(num_nodes)]
        pastry = allocation_imbalance(PastryAllocation().allocate(addresses))
        balanced = allocation_imbalance(BalancedAllocation().allocate(addresses))
        rows.append({
            "nodes": num_nodes,
            "pastry_imbalance": pastry,
            "balanced_imbalance": balanced,
        })
    return rows


def clear_caches() -> None:
    """Drop memoised sweep results (used between unrelated benchmark runs)."""
    _stb_point.cache_clear()
    _tpch_point.cache_clear()
    _tpch_cluster.cache_clear()
