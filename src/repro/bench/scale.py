"""Simulator scaling harness: Python cost of virtual time vs cluster size.

The figure benchmarks report *simulated* seconds and bytes; this harness
measures the simulator itself — how much real Python wall-clock one virtual
second costs as the membership grows — so that O(n) walls in the overlay,
gossip or query layers show up as a super-linear scaling curve long before
they make the figure sweeps unrunnable.  Each scale point runs two phases on
a fresh cluster:

* **workload** — publish a fixed-size TPC-H instance (the *same* data at
  every point, so only the membership scales) and run figure queries,
  recording events processed, virtual seconds, wire traffic and the p99
  virtual-time query latency;
* **churn** — a seeded elastic-churn scenario (join / graceful leave /
  crash-restart under sustained mixed load, see
  :meth:`repro.faults.scenarios.ScenarioConfig.churn_only`) whose invariants
  must all hold.

The committed trajectory lives in ``BENCH_scale.json``::

    PYTHONPATH=src python -m repro.bench.scale --output BENCH_scale.json

and the CI gate re-runs the suite and compares::

    PYTHONPATH=src python -m repro.bench.scale --check BENCH_scale.json

``--check`` fails (exit 1) when the scaling exponent — the log-log slope of
wall-clock per virtual second against the node count — reaches 2.0 (the
membership is a full one-hop ring, so per-event work may grow with n, but
quadratic growth means some per-event path scans the whole cluster), when the
deterministic counters (events processed, wire bytes) of any point drift from
the committed reference by more than ``--tolerance``, or when any churn
invariant is violated.  Wall-clock seconds themselves are *never* compared
across machines: the exponent is a within-run ratio, and the recorded
``calibration_seconds`` (the same fixed spin loop ``BENCH_perf.json`` uses)
lets a human normalise absolute times when reading the file.

CI knobs: ``SCALE_POINTS`` (comma-separated node counts) overrides the
default sweep, ``CHURN_SEEDS`` sets the seed-sweep width of ``--churn-sweep``.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
from dataclasses import replace
from typing import Callable, Sequence

from .perf import _time_best_of, bench_calibration_spin

#: Node counts of the committed sweep (the paper targets "up to a few hundred
#: participants"; 500 probes the headroom past that).
DEFAULT_POINTS = (8, 32, 100, 200, 500)

#: Figure queries of the workload phase: a wide aggregate (Q1), a join that
#: rehash-shuffles between every pair of participants (Q3) and a selective
#: scan (Q6).  The data volume is fixed, so growth comes from membership.
WORKLOAD_QUERIES = ("Q1", "Q3", "Q6")

#: TPC-H scale factor of the workload phase — fixed across every point.
WORKLOAD_SCALE_FACTOR = 2.0

#: Times each workload query runs (latency samples for the p99).
QUERY_ROUNDS = 3

#: The scaling gate: the log-log slope of wall-per-virtual-second (and of the
#: deterministic event count) against node count must stay below this.
EXPONENT_LIMIT = 2.0

#: Default drift tolerance for the deterministic counters under ``--check``.
DEFAULT_TOLERANCE = 0.05


# ---------------------------------------------------------------------------
# Phase metering
# ---------------------------------------------------------------------------


def _measure_phase(network, func: Callable[[], None]) -> dict:
    """Run ``func`` and attribute its wall-clock to the simulator's progress.

    ``events`` (heap events processed) and the traffic counters are exact and
    machine-independent; ``wall_seconds`` is this process's cost of producing
    them.
    """
    traffic_before = network.traffic.snapshot()
    events_before = network.events_processed
    virtual_before = network.now
    started = time.perf_counter()
    func()
    wall = time.perf_counter() - started
    traffic = traffic_before.delta(network.traffic.snapshot())
    events = network.events_processed - events_before
    virtual = network.now - virtual_before
    return {
        "wall_seconds": round(wall, 6),
        "virtual_seconds": round(virtual, 6),
        "events": events,
        "bytes": traffic.total_bytes,
        "messages": traffic.total_messages,
        "wall_per_virtual_second": round(wall / virtual, 6) if virtual > 0 else 0.0,
        "us_per_event": round(wall / events * 1e6, 3) if events else 0.0,
    }


def _quantile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank quantile (deterministic, no interpolation surprises)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


# ---------------------------------------------------------------------------
# Scale points
# ---------------------------------------------------------------------------


def _churn_config(nodes: int):
    from ..faults.scenarios import ScenarioConfig

    return ScenarioConfig(
        num_nodes=nodes,
        joins=1,
        leaves=1,
        restarts=1,
        num_ops=12,
    ).churn_only()


def run_scale_point(
    nodes: int,
    seed: int = 0,
    scale_factor: float = WORKLOAD_SCALE_FACTOR,
    queries: Sequence[str] = WORKLOAD_QUERIES,
    query_rounds: int = QUERY_ROUNDS,
    include_churn: bool = True,
) -> dict:
    """Measure one cluster size; returns the per-point document."""
    from ..cluster import Cluster
    from ..faults.scenarios import ScenarioRunner
    from ..net.profiles import LAN_GIGABIT
    from ..overlay.routing import RoutingSnapshot
    from ..query.service import QueryOptions
    from ..workloads import tpch

    # Generated outside the timed phases: the generator's cost is independent
    # of the node count and would flatten the fitted exponent.
    instance = tpch.generate(scale_factor, seed)
    snapshot_builds_before = RoutingSnapshot.build_count

    phases: dict[str, dict] = {}
    cluster_box: list = []

    def build() -> None:
        cluster = Cluster(nodes, profile=LAN_GIGABIT)
        cluster.publish_relations(instance.relation_list())
        cluster.enable_query_processing()
        cluster_box.append(cluster)

    started = time.perf_counter()
    build()
    cluster = cluster_box[0]
    phases["build"] = {
        "wall_seconds": round(time.perf_counter() - started, 6),
        "virtual_seconds": round(cluster.network.now, 6),
        "events": cluster.network.events_processed,
        "bytes": cluster.traffic_snapshot().total_bytes,
        "messages": cluster.traffic_snapshot().total_messages,
    }

    latencies: list[float] = []
    options = QueryOptions(use_result_cache=False)

    def run_queries() -> None:
        for _ in range(query_rounds):
            for name in queries:
                before = cluster.now
                cluster.query(tpch.query(name), options=options)
                latencies.append(cluster.now - before)

    phases["queries"] = _measure_phase(cluster.network, run_queries)

    point = {
        "nodes": nodes,
        "phases": phases,
        "p99_latency_s": round(_quantile(latencies, 0.99), 6),
        "snapshot_builds": RoutingSnapshot.build_count - snapshot_builds_before,
    }

    if include_churn:
        runner_box: list = []

        def run_churn() -> None:
            runner = ScenarioRunner(seed, _churn_config(nodes))
            report = runner.run()
            runner_box.append((runner, report))

        started = time.perf_counter()
        run_churn()
        runner, report = runner_box[0]
        network = runner.cluster.network
        phases["churn"] = {
            "wall_seconds": round(time.perf_counter() - started, 6),
            "virtual_seconds": round(network.now, 6),
            "events": network.events_processed,
            "bytes": network.traffic.total_bytes,
            "messages": network.traffic.total_messages,
        }
        point["churn_violations"] = list(report.violations)

    # The gated aggregate: total Python seconds per total virtual second,
    # with the deterministic totals alongside for the drift check.
    wall = sum(phase["wall_seconds"] for phase in phases.values())
    virtual = sum(phase["virtual_seconds"] for phase in phases.values())
    events = sum(phase["events"] for phase in phases.values())
    point["totals"] = {
        "wall_seconds": round(wall, 6),
        "virtual_seconds": round(virtual, 6),
        "events": events,
        "bytes": sum(phase["bytes"] for phase in phases.values()),
        "messages": sum(phase["messages"] for phase in phases.values()),
        "wall_per_virtual_second": round(wall / virtual, 6) if virtual > 0 else 0.0,
    }
    return point


# ---------------------------------------------------------------------------
# The suite and its scaling fit
# ---------------------------------------------------------------------------


def fit_exponent(points: Sequence[dict], metric: Callable[[dict], float]) -> float:
    """Least-squares slope of log(metric) against log(nodes)."""
    xs = [math.log(point["nodes"]) for point in points]
    ys = [math.log(max(metric(point), 1e-12)) for point in points]
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        return 0.0
    return sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / denominator


def _exponents(points: Sequence[dict]) -> dict:
    return {
        "wall_per_virtual": round(
            fit_exponent(points, lambda p: p["totals"]["wall_per_virtual_second"]), 4
        ),
        "wall_seconds": round(
            fit_exponent(points, lambda p: p["totals"]["wall_seconds"]), 4
        ),
        "events": round(fit_exponent(points, lambda p: p["totals"]["events"]), 4),
        "bytes": round(fit_exponent(points, lambda p: p["totals"]["bytes"]), 4),
    }


def run_scale_suite(
    points: Sequence[int] = DEFAULT_POINTS,
    seed: int = 0,
    include_churn: bool = True,
) -> dict:
    """Run every scale point; returns the BENCH_scale.json document."""
    calibration_seconds, _ops = _time_best_of(3, bench_calibration_spin)
    # Discarded warm-up point: pays the lazy imports (query engine, faults
    # harness) and bytecode warm-up once, so the smallest measured point's
    # wall-clock is not inflated relative to the larger ones.
    run_scale_point(4, seed=seed, query_rounds=1, include_churn=include_churn)
    measured = []
    for nodes in sorted(points):
        point = run_scale_point(nodes, seed=seed, include_churn=include_churn)
        measured.append(point)
        totals = point["totals"]
        print(
            f"scale.n{nodes:<4d} {totals['wall_seconds']:8.2f} s wall  "
            f"{totals['virtual_seconds']:8.3f} s virtual  "
            f"{totals['events']:>9,d} events  "
            f"{totals['bytes']:>12,d} B  "
            f"p99 {point['p99_latency_s'] * 1e3:7.2f} ms",
            file=sys.stderr,
        )
        violations = point.get("churn_violations", [])
        if violations:
            print(f"scale.n{nodes} churn violations: {violations}", file=sys.stderr)
    exponents = _exponents(measured) if len(measured) >= 2 else {}
    if exponents:
        print(f"scale.exponents {exponents}", file=sys.stderr)
    return {
        "meta": {
            "python": platform.python_version(),
            "seed": seed,
            "points": [point["nodes"] for point in measured],
            "scale_factor": WORKLOAD_SCALE_FACTOR,
            "queries": list(WORKLOAD_QUERIES),
            "query_rounds": QUERY_ROUNDS,
            "churn": include_churn,
            "calibration_seconds": round(calibration_seconds, 6),
        },
        "points": measured,
        "scaling": {"exponents": exponents, "exponent_limit": EXPONENT_LIMIT},
    }


# ---------------------------------------------------------------------------
# Regression check (CI scale-smoke)
# ---------------------------------------------------------------------------


def check_scaling(
    reference: dict, fresh: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Gate a fresh run against the committed reference; returns failures.

    * Churn invariants must hold at every fresh point.
    * The fresh scaling exponents (when the run has at least three points)
      must stay below :data:`EXPONENT_LIMIT`.
    * Deterministic counters (events, bytes) of every point present in both
      runs must agree within ``tolerance`` — they drift only when behaviour
      changed, never from machine speed.

    Wall-clock seconds are never compared across runs (machines differ); the
    exponent is the timing gate because it is a within-run ratio.
    """
    failures: list[str] = []
    fresh_points = {point["nodes"]: point for point in fresh.get("points", [])}
    reference_points = {point["nodes"]: point for point in reference.get("points", [])}

    for nodes, point in sorted(fresh_points.items()):
        for violation in point.get("churn_violations", []):
            failures.append(f"scale.n{nodes}: churn invariant violated: {violation}")

    if len(fresh_points) >= 3:
        exponents = _exponents(sorted(fresh_points.values(), key=lambda p: p["nodes"]))
        for name in ("wall_per_virtual", "events"):
            if exponents[name] >= EXPONENT_LIMIT:
                failures.append(
                    f"scaling exponent {name} = {exponents[name]:.3f} "
                    f">= limit {EXPONENT_LIMIT} (super-quadratic growth)"
                )

    for nodes, point in sorted(fresh_points.items()):
        committed = reference_points.get(nodes)
        if committed is None:
            continue
        for counter in ("events", "bytes"):
            old = committed["totals"][counter]
            new = point["totals"][counter]
            if old and abs(new - old) / old > tolerance:
                failures.append(
                    f"scale.n{nodes}: {counter} drifted {old:,d} -> {new:,d} "
                    f"({(new - old) / old:+.1%}, tolerance {tolerance:.0%})"
                )
    return failures


# ---------------------------------------------------------------------------
# Churn seed sweep
# ---------------------------------------------------------------------------


def run_churn_sweep(seeds: int, nodes: int = 100, first_seed: int = 0) -> list[str]:
    """Run the churn scenario over a seed range; returns violation strings."""
    from ..faults.scenarios import ScenarioRunner

    failures: list[str] = []
    config = _churn_config(nodes)
    for seed in range(first_seed, first_seed + seeds):
        report = ScenarioRunner(seed, config).run()
        status = "OK  " if report.ok else "FAIL"
        print(
            f"churn {status} seed={seed} nodes={nodes} "
            f"acked={report.ops_acked}/{report.ops_submitted} "
            f"recovery={report.recovery_seconds:.3f}s",
            file=sys.stderr,
        )
        for violation in report.violations:
            failures.append(f"churn seed {seed}: {violation}")
    return failures


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _parse_points(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.split(",") if part.strip())


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Simulator scaling benchmark (wall-clock per virtual second)."
    )
    parser.add_argument("--output", default=None, help="write BENCH_scale.json here")
    parser.add_argument(
        "--check", default=None,
        help="re-run and gate against this committed BENCH_scale.json",
    )
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--points",
        default=os.environ.get("SCALE_POINTS", ""),
        help="comma-separated node counts (default: env SCALE_POINTS or "
        + ",".join(str(point) for point in DEFAULT_POINTS) + ")",
    )
    parser.add_argument("--no-churn", action="store_true",
                        help="skip the per-point churn phase")
    parser.add_argument(
        "--churn-sweep", type=int, default=None, metavar="SEEDS",
        help="additionally sweep this many churn seeds (default: env "
        "CHURN_SEEDS when set) and fail on any invariant violation",
    )
    parser.add_argument("--churn-nodes", type=int, default=100,
                        help="cluster size of the churn sweep")
    parser.add_argument("--sweep-only", action="store_true",
                        help="run only the churn sweep, not the scale points")
    args = parser.parse_args(argv)

    points = _parse_points(args.points) if args.points else DEFAULT_POINTS
    churn_seeds = args.churn_sweep
    if churn_seeds is None and os.environ.get("CHURN_SEEDS"):
        churn_seeds = int(os.environ["CHURN_SEEDS"])

    if args.sweep_only:
        if not churn_seeds:
            parser.error("--sweep-only requires --churn-sweep (or CHURN_SEEDS)")
        failures = run_churn_sweep(churn_seeds, nodes=args.churn_nodes,
                                   first_seed=args.seed)
        if failures:
            print("CHURN VIOLATIONS:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        return 0

    document = run_scale_suite(
        points=points, seed=args.seed, include_churn=not args.no_churn
    )

    status = 0
    if args.check:
        with open(args.check, "r", encoding="utf-8") as handle:
            reference = json.load(handle)
        failures = check_scaling(reference, document, tolerance=args.tolerance)
        if failures:
            print("SCALING REGRESSIONS:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            status = 1
        else:
            print(f"scaling check passed against {args.check}", file=sys.stderr)

    if churn_seeds:
        failures = run_churn_sweep(churn_seeds, nodes=args.churn_nodes,
                                   first_seed=args.seed)
        if failures:
            print("CHURN VIOLATIONS:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            status = 1

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
    elif not args.check:
        json.dump(document, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    return status


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
