"""Benchmark harness: the parameter sweeps behind every evaluation figure."""

from .harness import (
    MeasuredQuery,
    clear_caches,
    format_table,
    run_allocation_balance,
    run_bandwidth_sweep,
    run_concurrency_experiment,
    run_failure_recovery_experiment,
    run_latency_sweep,
    run_offered_load_experiment,
    run_recovery_overhead_experiment,
    run_result_cache_experiment,
    run_retrieval_cache_experiment,
    run_stb_data_sweep,
    run_stb_node_sweep,
    run_tpch_data_sweep,
    run_tpch_sweep,
)

__all__ = [
    "MeasuredQuery",
    "clear_caches",
    "format_table",
    "run_allocation_balance",
    "run_bandwidth_sweep",
    "run_concurrency_experiment",
    "run_failure_recovery_experiment",
    "run_latency_sweep",
    "run_offered_load_experiment",
    "run_recovery_overhead_experiment",
    "run_result_cache_experiment",
    "run_retrieval_cache_experiment",
    "run_stb_data_sweep",
    "run_stb_node_sweep",
    "run_tpch_data_sweep",
    "run_tpch_sweep",
]
