"""Seeded performance microbenchmarks and the committed perf trajectory.

The paper's performance story (Section V-A) rests on the hot paths this module
measures: column-marshalled batch serialization, operator inner loops, and the
SHA-1 placement hashing behind every routing decision.  Each benchmark is a
deterministic, seeded workload timed with ``time.perf_counter`` — wall-clock
of *this process*, unlike the figure benchmarks, which report simulated time.

The suite also measures the quantity the paper's headline figures are made
of: **wire traffic**.  The traffic benchmarks publish a TPC-H instance into
a simulated cluster and run the figure queries twice — once with the
wire-traffic optimizer (predicate/projection pushdown + page pruning, the
default) and once with the evaluate-at-the-participant baseline
(``PlannerOptions(enable_pushdown=False)``) — recording bytes on the wire,
message counts and pruned-page counts per query.  Simulated byte counts are
exact and machine-independent (run under a pinned ``PYTHONHASHSEED``), so
the regression gate compares them with no variance floor.

Run it as a module::

    PYTHONPATH=src python -m repro.bench.perf --output BENCH_perf.json

and compare against a committed reference (the CI ``perf-smoke`` job)::

    PYTHONPATH=src python -m repro.bench.perf --check BENCH_perf.json

``--check`` re-runs the suite and fails (exit 1) when a timing benchmark
regressed by more than ``--tolerance`` (default 25%) against the committed
file, or when any query's pushdown traffic bytes grew beyond the same
tolerance.  To keep the timing check meaningful across machines of different
speeds, every file records a ``calibration.spin`` benchmark (a fixed
pure-Python loop); measured times are normalised by the calibration ratio
before comparison, and benchmarks faster than the variance floor (50 ms) are
never failed — CI timer noise on sub-50 ms loops is larger than any real
regression.  Traffic bytes are deterministic, so they get no floor.

The JSON layout is stable so future PRs can extend the trajectory::

    {
      "meta":   {"python": "...", "seed": 0, "repeat": 3, "scale": "default"},
      "benchmarks": {
        "<name>": {"seconds": <best-of-N wall seconds>,
                    "ops": <operations per run>,
                    "us_per_op": <seconds / ops * 1e6>}
      },
      "traffic": {
        "meta": {"nodes": ..., "scale_factor": ..., "seed": ...},
        "queries": {
          "<name>": {"bytes_pushdown": ..., "bytes_baseline": ...,
                      "reduction": ...,  # 1 - pushdown/baseline
                      "data_bytes_pushdown": ..., "data_bytes_baseline": ...,
                      "messages_pushdown": ..., "messages_baseline": ...,
                      "pages_total": ..., "pages_pruned": ...}
        }
      },
      "gray": {
        "meta": {"seed": ..., "modes": [...]},
        "modes": {
          "<mode>": {"p50_ms": ..., "p95_ms": ..., "p99_ms": ...,
                      "p99_vs_clean": ..., "failed": ...}
        }
      },
      "corruption": {
        "meta": {"nodes": ..., "corruptions": ..., "ops": ..., "seed": ...},
        "corrupt_rows_served": 0, "detected_total": ..., "repaired_total": ...,
        "unrepairable": 0, "detection_ms_mean": ..., "detection_ms_max": ...,
        "scrub_rounds_to_converge": ..., "scrub_bytes": ...,
        "scrub_overhead_ratio": ...
      }
    }

The ``gray`` section is the gray-failure headline (one node 10x degraded but
live): ``--check`` holds the hedged degraded p99 within 3x of clean and
requires the unhedged one to exceed 10x, on top of the drift tolerance.

The ``corruption`` section is the data-integrity headline (silent at-rest
bit rot under checksummed storage + scrubbing): ``--check`` requires zero
corrupt rows served, every injected corruption detected and repaired,
scrub convergence within the committed round bound, and holds the scrub
byte overhead within the drift tolerance.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from typing import Callable, Sequence

from ..common.hashing import sha1_key
from ..common.serialization import (
    ENCODING_STATS,
    EncodedTupleBatch,
    TupleBatch,
    decode_values,
    encode_values,
)
from ..common.types import TupleId, partition_hash

#: Benchmarks whose best-of-N time is below this floor are informational
#: only: ``--check`` never fails on them (timer noise dominates).
VARIANCE_FLOOR_SECONDS = 0.050

#: Default regression tolerance for ``--check`` (fraction of the reference).
DEFAULT_TOLERANCE = 0.25


# ---------------------------------------------------------------------------
# Workload generators (all seeded, all deterministic)
# ---------------------------------------------------------------------------


def _tpch_like_rows(count: int, seed: int) -> list[tuple]:
    """Mostly-numeric rows shaped like TPC-H lineitem slices."""
    rng = random.Random(seed)
    flags = ("A", "N", "R")
    statuses = ("F", "O")
    return [
        (
            rng.randrange(1, 200_000),
            rng.randrange(1, 10_000),
            rng.randrange(1, 7),
            float(rng.randrange(1, 50)),
            round(rng.uniform(900.0, 95_000.0), 2),
            round(rng.uniform(0.0, 0.1), 2),
            round(rng.uniform(0.0, 0.08), 2),
            rng.choice(flags),
            rng.choice(statuses),
            f"19{rng.randrange(92, 99)}-{rng.randrange(1, 13):02d}-{rng.randrange(1, 29):02d}",
        )
        for _ in range(count)
    ]


_TPCH_ATTRIBUTES = (
    "l_orderkey", "l_partkey", "l_quantity", "l_extendedprice_base",
    "l_extendedprice", "l_discount", "l_tax", "l_returnflag",
    "l_linestatus", "l_shipdate",
)


def _stb_like_rows(count: int, seed: int) -> list[tuple]:
    """String-heavy rows shaped like STBenchmark name/address tuples."""
    rng = random.Random(seed)
    streets = ("Walnut St", "Chestnut St", "Spruce St", "Market St", "Pine St")
    cities = ("Philadelphia", "Seattle", "Berkeley", "Ann Arbor")
    return [
        (
            f"person-{rng.randrange(count * 2):08d}",
            f"Given{rng.randrange(5000):04d}",
            f"Family{rng.randrange(5000):04d}",
            f"{rng.randrange(1, 9999)} {rng.choice(streets)}",
            rng.choice(cities),
            rng.randrange(10_000, 99_999),
        )
        for _ in range(count)
    ]


_STB_ATTRIBUTES = ("id", "first_name", "last_name", "street", "city", "zip")


def _mixed_value_tuples(count: int, seed: int) -> list[tuple]:
    """Mixed-type tuples covering every wire tag, including bigint edges."""
    rng = random.Random(seed)
    rows = []
    for index in range(count):
        rows.append((
            None,
            index % 2 == 0,
            rng.randrange(-(2 ** 40), 2 ** 40),
            rng.random() * 1e6,
            f"value-{rng.randrange(10_000)}",
            bytes([index % 251, (index * 7) % 251]),
            (rng.randrange(100), f"nested-{index % 17}"),
            # One-byte-length edge (254/255 bytes) and _TAG_BIGINT edge.
            (1 << 2030) + index if index % 64 == 0 else (1 << 2040) + index
            if index % 64 == 1 else index,
        ))
    return rows


# ---------------------------------------------------------------------------
# Timing machinery
# ---------------------------------------------------------------------------


def _time_best_of(runs: int, func: Callable[[], int]) -> tuple[float, int]:
    """Best-of-``runs`` wall time of ``func``; func returns its op count."""
    best = float("inf")
    ops = 0
    for _ in range(max(1, runs)):
        start = time.perf_counter()
        ops = func()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, max(1, ops)


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------


def bench_calibration_spin() -> int:
    """Fixed pure-Python loop used to normalise cross-machine comparisons."""
    total = 0
    for i in range(2_000_000):
        total += i & 1023
    return 2_000_000 if total else 2_000_000


def bench_serialization_encode_tpch(rows: Sequence[tuple], batch_rows: int) -> int:
    total = 0
    for start in range(0, len(rows), batch_rows):
        chunk = rows[start:start + batch_rows]
        TupleBatch.build(_TPCH_ATTRIBUTES, chunk)
        total += len(chunk)
    return total


def bench_serialization_encode_stb(rows: Sequence[tuple], batch_rows: int) -> int:
    total = 0
    for start in range(0, len(rows), batch_rows):
        chunk = rows[start:start + batch_rows]
        TupleBatch.build(_STB_ATTRIBUTES, chunk)
        total += len(chunk)
    return total


def bench_serialization_decode(payloads: Sequence[bytes]) -> int:
    total = 0
    for payload in payloads:
        batch = TupleBatch.unmarshal(payload)
        total += len(batch)
    return total


def bench_serialization_values_roundtrip(rows: Sequence[tuple]) -> int:
    for values in rows:
        payload = encode_values(values)
        decode_values(payload)
    return len(rows)


def bench_encoding_encode_tpch(rows: Sequence[tuple], batch_rows: int) -> int:
    """Columnar-encode TPC-H-like batches (dictionary/RLE/FOR selection)."""
    total = 0
    for start in range(0, len(rows), batch_rows):
        chunk = rows[start:start + batch_rows]
        EncodedTupleBatch.build(_TPCH_ATTRIBUTES, chunk)
        total += len(chunk)
    return total


def bench_encoding_decode_tpch(payloads: Sequence[bytes]) -> int:
    """Unmarshal encoded batches and decode every column."""
    total = 0
    for payload in payloads:
        batch = EncodedTupleBatch.unmarshal(payload, _TPCH_ATTRIBUTES)
        for column in batch.columns:
            column.decode()
        total += batch.count
    return total


def bench_encoding_predicate(batches: Sequence[EncodedTupleBatch]) -> int:
    """Predicate evaluation directly over encoded columns (no decode)."""
    rows = 0
    for batch in batches:
        for column in batch.columns:
            if column.match_positions(lambda v: v == "A") is None:
                column.min_max()
        rows += batch.count
    return max(1, rows)


def bench_hashing_partition(keys: Sequence[tuple], lookups: int) -> int:
    count = len(keys)
    for index in range(lookups):
        partition_hash(keys[index % count])
    return lookups


def bench_hashing_tuple_ids(tuple_ids: Sequence[TupleId], lookups: int) -> int:
    count = len(tuple_ids)
    for index in range(lookups):
        _ = tuple_ids[index % count].hash_key
    return lookups


def bench_hashing_sha1_identifiers(lookups: int) -> int:
    for index in range(lookups):
        sha1_key(("relation-coordinator", "lineitem", index % 64))
    return lookups


class _BenchContext:
    """Minimal FragmentContext for driving operators outside the simulator."""

    address = "bench-node"
    phase = 0
    failed_nodes: set = set()
    provenance_enabled = True
    eos_relay_enabled = False

    def __init__(self) -> None:
        self.rows_out = 0

    def charge_cpu(self, seconds: float) -> None:
        pass

    def destination_for(self, hash_key: int) -> str:
        return "bench-node"

    def participants(self) -> list[str]:
        return ["bench-node"]

    def initiator(self) -> str:
        return "bench-node"

    def send_rows(self, destination: str, exchange_id: int, rows: list) -> None:
        self.rows_out += len(rows)

    def send_eos(self, destination: str, exchange_id: int) -> None:
        pass

    def send_eos_summary(self, exchange_id: int, zero_destinations: list) -> None:
        pass


class _Sink:
    """Terminal operator counting what reaches it."""

    def __init__(self) -> None:
        self.rows = 0
        self.eos = 0

    def accept(self, rows, input_index: int = 0) -> None:
        self.rows += len(rows)

    def end_of_stream(self, input_index: int = 0) -> None:
        self.eos += 1


def _tagged_batches(attributes, rows, batch_rows: int, node: str = "bench-node"):
    """Pre-built operator input; constructed OUTSIDE the timed region so the
    operator benchmarks measure operator work, not test-data setup."""
    from ..query.provenance import tag_rows

    return [
        tag_rows(attributes, rows[start:start + batch_rows], node)
        for start in range(0, len(rows), batch_rows)
    ]


def bench_operators_select_project(batches: Sequence[list], total_rows: int) -> int:
    from ..query.expressions import col, lit
    from ..query.operators import ProjectOperator, SelectOperator
    from ..query.physical import PhysProject, PhysSelect

    context = _BenchContext()
    select = SelectOperator(context, PhysSelect(
        op_id=1, child=None, predicate=col("l_quantity").lt(lit(24.0)),
    ))
    project = ProjectOperator(context, PhysProject(
        op_id=2, child=None, outputs=[
            ("l_orderkey", col("l_orderkey")),
            ("l_returnflag", col("l_returnflag")),
            ("disc_price", col("l_extendedprice") * (lit(1.0) - col("l_discount"))),
        ],
    ))
    sink = _Sink()
    select.connect(project, 0)
    project.connect(sink, 0)  # type: ignore[arg-type]
    for batch in batches:
        select.accept(batch)
    return total_rows


def bench_operators_hash_join(
    probe_batches: Sequence[list], build_batches: Sequence[list], total_rows: int
) -> int:
    from ..query.operators import HashJoinOperator
    from ..query.physical import PhysHashJoin

    context = _BenchContext()
    join = HashJoinOperator(context, PhysHashJoin(
        op_id=1, left=None, right=None,
        left_keys=("l_partkey",), right_keys=("p_partkey",),
    ))
    sink = _Sink()
    join.connect(sink, 0)  # type: ignore[arg-type]
    for batch in build_batches:
        join.accept(batch, 1)
    for batch in probe_batches:
        join.accept(batch, 0)
    return total_rows


def bench_operators_aggregate(batches: Sequence[list], total_rows: int) -> int:
    from ..query.expressions import AggregateSpec, Avg, Count, Sum, col
    from ..query.operators import AggregateOperator
    from ..query.physical import PhysAggregate

    context = _BenchContext()
    aggregate = AggregateOperator(context, PhysAggregate(
        op_id=1, child=None,
        group_by=("l_returnflag", "l_linestatus"),
        aggregates=(
            AggregateSpec("sum_qty", Sum(), col("l_quantity")),
            AggregateSpec("sum_price", Sum(), col("l_extendedprice")),
            AggregateSpec("avg_disc", Avg(), col("l_discount")),
            AggregateSpec("count_order", Count(), col("l_orderkey")),
        ),
    ))
    sink = _Sink()
    aggregate.connect(sink, 0)  # type: ignore[arg-type]
    for batch in batches:
        aggregate.accept(batch)
    aggregate.end_of_stream(0)
    return total_rows


def bench_e2e_tpch(num_nodes: int, scale_factor: float, seed: int,
                   queries: Sequence[str]) -> int:
    """Representative end-to-end run: publish TPC-H, execute queries.

    Wall-clock of the whole simulated run — cluster construction, publishing
    every relation through the versioned storage protocol, then the listed
    queries through the distributed engine.  This is the number the figure
    benchmarks' own run time scales with.
    """
    from ..cluster import Cluster
    from ..net.profiles import LAN_GIGABIT
    from ..workloads import tpch

    instance = tpch.generate(scale_factor, seed)
    cluster = Cluster(num_nodes, profile=LAN_GIGABIT)
    cluster.publish_relations(instance.relation_list())
    rows = 0
    for query_name in queries:
        result = cluster.query(tpch.query(query_name))
        rows += len(result.rows)
    return max(1, rows)


# ---------------------------------------------------------------------------
# Wire-traffic benchmarks (simulated bytes: deterministic, machine-independent)
# ---------------------------------------------------------------------------


#: Figure queries measured by the traffic suite, plus one key-selective query
#: that exercises page pruning (the figure queries filter non-key attributes,
#: so their sargable part is empty and pruning cannot trigger on them).
TRAFFIC_QUERIES = ("Q1", "Q3", "Q5", "Q6", "Q10", "PRUNE")

#: Key-selective query for the pruning point: equality on the partition key
#: bounds the candidate hash set to one ring position, so every index page
#: whose range misses it is never requested.
PRUNE_SQL = "SELECT o_orderkey, o_totalprice FROM orders WHERE o_orderkey = 42"


def run_traffic_suite(seed: int = 0, nodes: int = 8,
                      scale_factor: float = 5.0) -> dict:
    """Measure per-query wire traffic with and without the optimizer.

    Builds one cluster, publishes TPC-H once, then runs every query in
    :data:`TRAFFIC_QUERIES` twice: with the wire-traffic optimizer (pushdown
    + pruning, the planner default) and with the evaluate-at-the-participant
    baseline.  The result cache is disabled so both runs execute for real.
    All numbers are simulated bytes/messages — exact, not timed.
    """
    from ..cluster import Cluster
    from ..net.profiles import LAN_GIGABIT
    from ..optimizer.planner import PlannerOptions
    from ..query.service import QueryOptions
    from ..query.sql import parse_query
    from ..workloads import tpch

    instance = tpch.generate(scale_factor, seed)
    cluster = Cluster(nodes, profile=LAN_GIGABIT)
    cluster.publish_relations(instance.relation_list())
    options = QueryOptions(use_result_cache=False)
    baseline_planner = PlannerOptions(enable_pushdown=False)

    def build(name: str):
        if name == "PRUNE":
            return parse_query(PRUNE_SQL, tpch.SCHEMAS)
        return tpch.query(name)

    queries = {}
    for name in TRAFFIC_QUERIES:
        encoding_before = ENCODING_STATS.snapshot()
        pushed = cluster.query(build(name), options=options)
        encoding_after = ENCODING_STATS.snapshot()
        baseline = cluster.query(build(name), options=options,
                                 planner_options=baseline_planner)
        # Sanity guard, not the equivalence suite (that is
        # tests/query/test_pushdown_equivalence.py): coarse float rounding
        # because the two plans sum aggregates in different orders.
        from ..query.reference import normalise

        if normalise(pushed.rows, float_digits=2) != normalise(baseline.rows, float_digits=2):
            raise AssertionError(
                f"traffic benchmark {name}: pushdown and baseline rows differ"
            )
        stats, base = pushed.statistics, baseline.statistics
        queries[name] = {
            "bytes_pushdown": stats.bytes_total,
            "bytes_baseline": base.bytes_total,
            "reduction": round(1.0 - stats.bytes_total / max(1, base.bytes_total), 4),
            "data_bytes_pushdown": stats.data_bytes,
            "data_bytes_baseline": base.data_bytes,
            "messages_pushdown": stats.messages_total,
            "messages_baseline": base.messages_total,
            "pages_total": stats.scan_pages_total,
            "pages_pruned": stats.scan_pages_pruned,
            # Per-codec encoded column bytes of the pushdown run (the
            # baseline run encodes too, but the pushdown numbers are what
            # the committed targets gate).
            "encoded_bytes": {
                codec: encoding_after["encoded_bytes"][codec]
                - encoding_before["encoded_bytes"][codec]
                for codec in sorted(encoding_after["encoded_bytes"])
            },
            "encoded_batches": encoding_after["batches_encoded"]
            - encoding_before["batches_encoded"],
        }
        print(f"traffic.{name:6s} {stats.bytes_total:>10,d} B pushed  "
              f"{base.bytes_total:>10,d} B baseline  "
              f"(-{queries[name]['reduction']:.1%}, "
              f"{stats.scan_pages_pruned}/{stats.scan_pages_total} pages pruned)",
              file=sys.stderr)

    # One extra traced run, *after* every measured query so the numbers above
    # stay byte-identical to untraced runs, attributing the wire bytes of a
    # figure query to protocol phases from its span tree.
    spans_section = _traced_span_summary(cluster, build("Q3"), options)
    print(f"traffic.spans  Q3: {spans_section['span_count']} spans, "
          f"{spans_section['coverage']:.1%} byte coverage", file=sys.stderr)

    return {
        "meta": {"nodes": nodes, "scale_factor": scale_factor, "seed": seed,
                 "queries": list(TRAFFIC_QUERIES)},
        "queries": queries,
        "spans": spans_section,
    }


#: Protocol phase each span kind belongs to in the ``spans`` summary.
def _span_phase(kind: str) -> str:
    if kind.startswith("store.") or kind == "rpc.response":
        return "storage"
    if kind.startswith("query.scan"):
        return "scan"
    if kind in ("query.data", "query.eos", "query.eos_summary"):
        return "exchange"
    return "control"  # query.start/abort/recover, op root spans, gossip


def _traced_span_summary(cluster, query, options) -> dict:
    """Run ``query`` with tracing on; summarise its span tree per phase."""
    tracer = cluster.enable_tracing()
    before = cluster.network.traffic.snapshot()
    traced = cluster.query(query, options=options)
    metered = before.delta(cluster.network.traffic.snapshot())
    trace_id = traced.statistics.trace_id
    spans = tracer.spans_of(trace_id)
    phases: dict[str, dict[str, int]] = {}
    for span in spans:
        bucket = phases.setdefault(_span_phase(span.name), {"spans": 0, "bytes": 0})
        bucket["spans"] += 1
        bucket["bytes"] += span.bytes
    span_bytes = sum(span.bytes for span in spans)
    cluster.disable_tracing()
    return {
        "query": "Q3",
        "trace_id": trace_id,
        "span_count": len(spans),
        "span_bytes": span_bytes,
        "metered_bytes": metered.total_bytes,
        "coverage": round(span_bytes / max(1, metered.total_bytes), 4),
        "phases": {name: phases[name] for name in sorted(phases)},
    }


# ---------------------------------------------------------------------------
# Gray-failure benchmark (simulated latencies: deterministic, machine-independent)
# ---------------------------------------------------------------------------

#: Acceptance thresholds for the gray-failure point: with the resilience
#: layer on, the degraded p99 stays within this multiple of the clean p99 …
GRAY_HEDGED_MAX_RATIO = 3.0
#: … and without it, the degraded p99 must blow past the raw slowdown factor
#: (queue buildup amplifies the tail) — otherwise the experiment lost its
#: teeth and the hedged number proves nothing.
GRAY_UNHEDGED_MIN_RATIO = 10.0


def run_gray_suite(seed: int = 11) -> dict:
    """One gray-failure point: p50/p99 per mode plus the headline ratios.

    Simulated latencies of :func:`~repro.bench.harness.run_gray_failure_experiment`
    — exact and machine-independent under a pinned ``PYTHONHASHSEED``, so the
    regression gate compares them with no calibration and no variance floor.
    """
    from .harness import run_gray_failure_experiment

    rows = run_gray_failure_experiment(seed=seed)
    modes = {}
    for row in rows:
        modes[row["mode"]] = {
            "p50_ms": round(row["p50_ms"], 4),
            "p95_ms": round(row["p95_ms"], 4),
            "p99_ms": round(row["p99_ms"], 4),
            "p99_vs_clean": round(row["p99_vs_clean"], 4)
            if row["p99_vs_clean"] is not None else None,
            "failed": row["failed"],
        }
        print(f"gray.{row['mode']:18s} p50={row['p50_ms']:7.3f} ms  "
              f"p99={row['p99_ms']:7.3f} ms  "
              f"(x{row['p99_vs_clean']:.2f} vs clean)", file=sys.stderr)
    return {
        "meta": {"seed": seed, "modes": [row["mode"] for row in rows]},
        "modes": modes,
    }


def check_gray_regressions(reference: dict, fresh: dict,
                           tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Gate the gray-failure point: absolute thresholds plus drift.

    Two absolute invariants (the experiment's reason to exist): the hedged
    degraded p99 stays within :data:`GRAY_HEDGED_MAX_RATIO` of clean, and the
    unhedged one exceeds :data:`GRAY_UNHEDGED_MIN_RATIO` — if the latter
    collapses, the injected degradation no longer hurts and the hedged number
    is vacuous.  On top of that, the hedged p99 may not drift more than
    ``tolerance`` above the committed reference (simulated time: exact).
    """
    ref_modes = reference.get("gray", {}).get("modes", {})
    new_modes = fresh.get("gray", {}).get("modes", {})
    if ref_modes and not new_modes:
        # Section skipped wholesale (--no-gray): nothing to compare.
        return []
    failures = []
    for mode in ref_modes:
        if mode not in new_modes:
            failures.append(f"gray.{mode}: present in reference but not in this run")
    if failures or not new_modes:
        return failures
    hedged = new_modes.get("hedged-degraded", {})
    unhedged = new_modes.get("unhedged-degraded", {})
    hedged_ratio = hedged.get("p99_vs_clean")
    if hedged_ratio is not None and hedged_ratio > GRAY_HEDGED_MAX_RATIO:
        failures.append(
            f"gray.hedged-degraded: p99 is {hedged_ratio:.2f}x clean "
            f"(must stay <= {GRAY_HEDGED_MAX_RATIO:.0f}x — the resilience "
            f"layer stopped routing around the gray node)"
        )
    unhedged_ratio = unhedged.get("p99_vs_clean")
    if unhedged_ratio is not None and unhedged_ratio <= GRAY_UNHEDGED_MIN_RATIO:
        failures.append(
            f"gray.unhedged-degraded: p99 is only {unhedged_ratio:.2f}x clean "
            f"(must exceed {GRAY_UNHEDGED_MIN_RATIO:.0f}x — the degradation "
            f"no longer bites, so the hedged number proves nothing)"
        )
    for mode, ref in ref_modes.items():
        new = new_modes[mode]
        ref_p99, new_p99 = ref.get("p99_ms"), new.get("p99_ms")
        if ref_p99 and new_p99 and new_p99 > ref_p99 * (1.0 + tolerance):
            failures.append(
                f"gray.{mode}: p99 {new_p99:.3f} ms vs reference "
                f"{ref_p99:.3f} ms (tolerance {tolerance:.0%}, simulated "
                f"latencies are deterministic)"
            )
        if new.get("failed"):
            failures.append(f"gray.{mode}: {new['failed']} operations failed")
    return failures


# ---------------------------------------------------------------------------
# Corruption benchmark (simulated detection/repair: deterministic)
# ---------------------------------------------------------------------------

#: The scrubber must converge (one clean round after the last repair) within
#: this many rounds for the committed corruption point — matches the
#: default ``IntegrityConfig.max_scrub_rounds``.
CORRUPTION_MAX_SCRUB_ROUNDS = 4


def run_corruption_suite(seed: int = 17) -> dict:
    """One silent-corruption point: detection, repair convergence, overhead.

    Simulated results of :func:`~repro.bench.harness.run_corruption_experiment`
    — exact and machine-independent under a pinned ``PYTHONHASHSEED``, so the
    regression gate applies absolute invariants (zero corrupt rows served,
    full detection and repair) with no variance floor.
    """
    from .harness import run_corruption_experiment

    result = run_corruption_experiment(seed=seed)
    section = {
        "meta": {"nodes": result["nodes"], "ops": result["ops"],
                 "corruptions": result["injected"], "seed": seed},
        "failed": result["failed"],
        "corrupt_rows_served": result["corrupt_rows_served"],
        "detected_by_reads": result["detected_by_reads"],
        "detected_total": result["detected_total"],
        "repaired_total": result["repaired_total"],
        "unrepairable": result["unrepairable"],
        "quarantine_leftover": result["quarantine_leftover"],
        "detection_ms_mean": round(result["detection_ms_mean"], 4),
        "detection_ms_max": round(result["detection_ms_max"], 4),
        "scrub_rounds_to_converge": result["scrub_rounds_to_converge"],
        "scrub_bytes": result["scrub_bytes"],
        "scrub_overhead_ratio": round(result["scrub_overhead_ratio"], 4),
        "p50_ms": round(result["p50_ms"], 4),
        "p99_ms": round(result["p99_ms"], 4),
    }
    print(f"corruption.detect  {section['detected_total']}/{section['meta']['corruptions']} "
          f"detected ({section['detected_by_reads']} by reads), "
          f"mean latency {section['detection_ms_mean']:.1f} ms", file=sys.stderr)
    print(f"corruption.repair  {section['repaired_total']} repaired, "
          f"{section['unrepairable']} unrepairable, "
          f"{section['corrupt_rows_served']} corrupt rows served, "
          f"converged in {section['scrub_rounds_to_converge']} scrub rounds "
          f"({section['scrub_bytes']:,d} scrub bytes, "
          f"x{section['scrub_overhead_ratio']:.2f} of stored)", file=sys.stderr)
    return section


def check_corruption_regressions(reference: dict, fresh: dict,
                                 tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Gate the corruption point: absolute integrity invariants plus drift.

    The absolute invariants are the experiment's reason to exist: no acked
    row is ever served corrupted, every injected corruption is detected and
    repaired, nothing is left unrepairable or quarantined, and the scrubber
    converges within :data:`CORRUPTION_MAX_SCRUB_ROUNDS`.  On top of that the
    scrub byte overhead may not drift more than ``tolerance`` above the
    committed reference (simulated bytes: exact).
    """
    ref_section = reference.get("corruption", {})
    new_section = fresh.get("corruption", {})
    if ref_section and not new_section:
        # Section skipped wholesale (--no-corruption): nothing to compare.
        return []
    if not new_section:
        return []
    failures = []
    if new_section.get("corrupt_rows_served", 0):
        failures.append(
            f"corruption: {new_section['corrupt_rows_served']} corrupted rows "
            f"served to clients (must be 0 — verification stopped catching "
            f"checksum mismatches on the read path)"
        )
    if new_section.get("failed", 0):
        failures.append(
            f"corruption: {new_section['failed']} operations failed (repair "
            f"should make every injected corruption transparent to readers)"
        )
    injected = new_section.get("meta", {}).get("corruptions", 0)
    detected = new_section.get("detected_total", 0)
    if detected < injected:
        failures.append(
            f"corruption: only {detected}/{injected} injected corruptions "
            f"detected — the scrubber or read verification lost coverage"
        )
    repaired = new_section.get("repaired_total", 0)
    if repaired < detected:
        failures.append(
            f"corruption: only {repaired}/{detected} detected corruptions "
            f"repaired — read-repair or scrub back-fill stopped converging"
        )
    if new_section.get("unrepairable", 0):
        failures.append(
            f"corruption: {new_section['unrepairable']} entries unrepairable "
            f"(every corruption has a clean replica in this experiment)"
        )
    if new_section.get("quarantine_leftover", 0):
        failures.append(
            f"corruption: {new_section['quarantine_leftover']} entries still "
            f"quarantined after scrubbing — repair did not drain the quarantine"
        )
    rounds = new_section.get("scrub_rounds_to_converge", 0)
    if rounds > CORRUPTION_MAX_SCRUB_ROUNDS:
        failures.append(
            f"corruption: scrubber took {rounds} rounds to converge "
            f"(bound {CORRUPTION_MAX_SCRUB_ROUNDS})"
        )
    ref_overhead = ref_section.get("scrub_overhead_ratio")
    new_overhead = new_section.get("scrub_overhead_ratio")
    if ref_overhead and new_overhead and new_overhead > ref_overhead * (1.0 + tolerance):
        failures.append(
            f"corruption: scrub byte overhead x{new_overhead:.2f} of stored "
            f"bytes vs reference x{ref_overhead:.2f} (tolerance "
            f"{tolerance:.0%}, simulated bytes are deterministic)"
        )
    return failures


# ---------------------------------------------------------------------------
# Suite assembly
# ---------------------------------------------------------------------------


#: Scale presets: (micro row count, e2e nodes, e2e scale factor).
SCALES = {
    "smoke": (2_000, 4, 0.2),
    "default": (20_000, 4, 0.5),
}

E2E_QUERIES = ("Q1", "Q3", "Q6")
BATCH_ROWS = 256


#: Cluster shape of the traffic suite per scale preset: (nodes, scale factor).
TRAFFIC_SCALES = {
    "smoke": (5, 0.5),
    "default": (8, 5.0),
}


def run_suite(seed: int = 0, repeat: int = 3, scale: str = "default",
              include_e2e: bool = True, include_traffic: bool = True,
              include_gray: bool = True, include_corruption: bool = True) -> dict:
    """Run every benchmark; returns the BENCH_perf.json document."""
    micro_rows, e2e_nodes, e2e_sf = SCALES[scale]
    tpch_rows = _tpch_like_rows(micro_rows, seed)
    stb_rows = _stb_like_rows(micro_rows, seed + 1)
    mixed_rows = _mixed_value_tuples(max(512, micro_rows // 4), seed + 2)
    decode_payloads = [
        TupleBatch.build(
            _TPCH_ATTRIBUTES, tpch_rows[start:start + BATCH_ROWS]
        ).compressed_payload()
        for start in range(0, len(tpch_rows), BATCH_ROWS)
    ]
    # Encoded-batch inputs are pre-built (outside the timed region) for the
    # decode and predicate benchmarks; the encode benchmark rebuilds its own.
    encoded_batches = [
        EncodedTupleBatch.build(_TPCH_ATTRIBUTES, tpch_rows[start:start + BATCH_ROWS])
        for start in range(0, len(tpch_rows), BATCH_ROWS)
    ]
    encoded_payloads = [batch.compressed_payload() for batch in encoded_batches]
    hash_keys = [(f"customer-{index % 512}",) for index in range(2048)]
    tuple_ids = [
        TupleId((f"order-{index % 512}", index % 16), epoch=1)
        for index in range(2048)
    ]
    hash_lookups = micro_rows * 5
    # Operator inputs are pre-built so the operator benchmarks time operator
    # work only (fresh operators are constructed inside each timed run).
    tpch_batches = _tagged_batches(_TPCH_ATTRIBUTES, tpch_rows, BATCH_ROWS)
    join_build_rows = [
        (values[1], f"part-{values[1] % 4096}") for values in tpch_rows[::4]
    ]
    join_build_batches = _tagged_batches(
        ("p_partkey", "p_name"), join_build_rows, BATCH_ROWS
    )
    join_total = len(tpch_rows) + len(join_build_rows)

    benchmarks: list[tuple[str, Callable[[], int]]] = [
        ("calibration.spin", bench_calibration_spin),
        ("serialization.encode_tpch",
         lambda: bench_serialization_encode_tpch(tpch_rows, BATCH_ROWS)),
        ("serialization.encode_stb",
         lambda: bench_serialization_encode_stb(stb_rows, BATCH_ROWS)),
        ("serialization.decode_tpch",
         lambda: bench_serialization_decode(decode_payloads)),
        ("serialization.values_roundtrip",
         lambda: bench_serialization_values_roundtrip(mixed_rows)),
        ("encoding.encode_tpch",
         lambda: bench_encoding_encode_tpch(tpch_rows, BATCH_ROWS)),
        ("encoding.decode_tpch",
         lambda: bench_encoding_decode_tpch(encoded_payloads)),
        ("encoding.predicate_over_encoded",
         lambda: bench_encoding_predicate(encoded_batches)),
        ("hashing.partition_hash",
         lambda: bench_hashing_partition(hash_keys, hash_lookups)),
        ("hashing.tuple_id_hash_key",
         lambda: bench_hashing_tuple_ids(tuple_ids, hash_lookups)),
        ("hashing.sha1_identifiers",
         lambda: bench_hashing_sha1_identifiers(hash_lookups // 5)),
        ("operators.select_project",
         lambda: bench_operators_select_project(tpch_batches, len(tpch_rows))),
        ("operators.hash_join",
         lambda: bench_operators_hash_join(
             tpch_batches, join_build_batches, join_total)),
        ("operators.aggregate",
         lambda: bench_operators_aggregate(tpch_batches, len(tpch_rows))),
    ]
    if include_e2e:
        benchmarks.append((
            "e2e.tpch",
            lambda: bench_e2e_tpch(e2e_nodes, e2e_sf, seed, E2E_QUERIES),
        ))

    results = {}
    for name, func in benchmarks:
        seconds, ops = _time_best_of(repeat, func)
        results[name] = {
            "seconds": round(seconds, 6),
            "ops": ops,
            "us_per_op": round(seconds / ops * 1e6, 6),
        }
        print(f"{name:36s} {seconds * 1e3:10.2f} ms  "
              f"{seconds / ops * 1e6:10.3f} us/op  ({ops} ops)",
              file=sys.stderr)

    document = {
        "meta": {
            "python": platform.python_version(),
            "seed": seed,
            "repeat": repeat,
            "scale": scale,
            "batch_rows": BATCH_ROWS,
            "e2e": {"nodes": e2e_nodes, "scale_factor": e2e_sf,
                    "queries": list(E2E_QUERIES)} if include_e2e else None,
        },
        "benchmarks": results,
    }
    if include_traffic:
        traffic_nodes, traffic_sf = TRAFFIC_SCALES[scale]
        document["traffic"] = run_traffic_suite(
            seed=seed, nodes=traffic_nodes, scale_factor=traffic_sf
        )
    if include_gray:
        document["gray"] = run_gray_suite()
    if include_corruption:
        document["corruption"] = run_corruption_suite()
    return document


# ---------------------------------------------------------------------------
# Regression check (CI perf-smoke)
# ---------------------------------------------------------------------------


def check_traffic_regressions(reference: dict, fresh: dict,
                              tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Compare the wire-traffic section against a committed reference.

    Traffic bytes are *simulated* — exact and machine-independent under a
    pinned ``PYTHONHASHSEED`` — so unlike the timing check there is no
    calibration and no variance floor: any query whose pushdown bytes grew
    beyond ``tolerance`` fails, as does a pushdown plan that lost its edge
    over the committed baseline run (reduction collapsing to less than half
    the recorded one signals the optimizer stopped pushing).
    """
    ref_traffic = reference.get("traffic", {}).get("queries", {})
    new_traffic = fresh.get("traffic", {}).get("queries", {})
    if ref_traffic and not new_traffic:
        # The whole section is absent: the fresh run skipped traffic
        # intentionally (--no-traffic); only an *individually* missing query
        # signals a silently dropped benchmark.
        return []
    failures = []
    for name, ref in ref_traffic.items():
        new = new_traffic.get(name)
        if new is None:
            failures.append(f"traffic.{name}: present in reference but not in this run")
            continue
        ref_bytes = ref["bytes_pushdown"]
        new_bytes = new["bytes_pushdown"]
        if new_bytes > ref_bytes * (1.0 + tolerance):
            failures.append(
                f"traffic.{name}: {new_bytes:,d} B on the wire vs reference "
                f"{ref_bytes:,d} B (tolerance {tolerance:.0%}, byte counts are "
                f"deterministic)"
            )
        ref_reduction = ref.get("reduction", 0.0)
        new_reduction = new.get("reduction", 0.0)
        if ref_reduction > 0.1 and new_reduction < ref_reduction / 2:
            failures.append(
                f"traffic.{name}: pushdown reduction fell to {new_reduction:.1%} "
                f"(reference {ref_reduction:.1%}) — the optimizer stopped pushing"
            )
    return failures


def check_regressions(reference: dict, fresh: dict,
                      tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Compare a fresh run against a committed reference document.

    Times are normalised by the ``calibration.spin`` ratio so that a slower
    (or faster) CI machine does not read as a regression (or mask one);
    traffic bytes are exact and compared without a floor
    (:func:`check_traffic_regressions`).  Returns human-readable failure
    strings; empty means the check passed.
    """
    ref_benches = reference.get("benchmarks", {})
    new_benches = fresh.get("benchmarks", {})
    if ref_benches and not new_benches:
        # Timing section skipped wholesale (--traffic-only): compare only
        # the sections the fresh run actually produced.
        ref_benches = {}
    ref_calibration = ref_benches.get("calibration.spin", {}).get("seconds")
    new_calibration = new_benches.get("calibration.spin", {}).get("seconds")
    if ref_calibration and new_calibration:
        machine_ratio = new_calibration / ref_calibration
    else:
        machine_ratio = 1.0
    failures = []
    for name, ref in ref_benches.items():
        if name == "calibration.spin":
            continue
        new = new_benches.get(name)
        if new is None:
            failures.append(f"{name}: present in reference but not in this run")
            continue
        ref_seconds = ref["seconds"] * machine_ratio
        if max(ref_seconds, new["seconds"]) < VARIANCE_FLOOR_SECONDS:
            continue  # below the variance floor: informational only
        if new["seconds"] > ref_seconds * (1.0 + tolerance):
            failures.append(
                f"{name}: {new['seconds']:.3f}s vs reference "
                f"{ref['seconds']:.3f}s (machine-normalised "
                f"{ref_seconds:.3f}s, tolerance {tolerance:.0%})"
            )
    failures.extend(check_traffic_regressions(reference, fresh, tolerance))
    failures.extend(check_gray_regressions(reference, fresh, tolerance))
    failures.extend(check_corruption_regressions(reference, fresh, tolerance))
    return failures


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perf",
        description="Seeded perf microbenchmarks; emits BENCH_perf.json.",
    )
    parser.add_argument("--output", default=None,
                        help="write results JSON to this path")
    parser.add_argument("--check", default=None, metavar="REFERENCE",
                        help="compare against a committed BENCH json; "
                             "exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed slowdown fraction for --check "
                             "(default 0.25)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeat", type=int, default=3,
                        help="best-of-N runs per benchmark (default 3)")
    parser.add_argument("--scale", choices=sorted(SCALES), default="default")
    parser.add_argument("--no-e2e", action="store_true",
                        help="skip the end-to-end TPC-H benchmark")
    parser.add_argument("--no-traffic", action="store_true",
                        help="skip the wire-traffic benchmarks")
    parser.add_argument("--no-gray", action="store_true",
                        help="skip the gray-failure benchmark")
    parser.add_argument("--no-corruption", action="store_true",
                        help="skip the silent-corruption benchmark")
    parser.add_argument("--traffic-only", action="store_true",
                        help="run only the wire-traffic benchmarks (emits a "
                             "document with a traffic section and no timings)")
    parser.add_argument("--gray-only", action="store_true",
                        help="run only the gray-failure experiment (emits a "
                             "document with a gray section and no timings)")
    parser.add_argument("--corruption-only", action="store_true",
                        help="run only the silent-corruption experiment "
                             "(emits a document with a corruption section "
                             "and no timings)")
    args = parser.parse_args(argv)

    if args.corruption_only:
        # Like --gray-only: no other sections at all, so --check compares
        # only the corruption section (the nightly scrub-smoke job's gate).
        # The corruption suite keeps its own fixed seed (the committed
        # point), exactly as in a full run.
        document = {
            "meta": {"python": platform.python_version(),
                     "corruption_only": True},
            "corruption": run_corruption_suite(),
        }
    elif args.gray_only:
        # Like --traffic-only: no "benchmarks"/"traffic" keys at all, so
        # --check compares only the gray section (the nightly gray-smoke
        # job's gate) instead of reporting every unmeasured timing as
        # vanished.
        # The gray suite keeps its own fixed seed (the committed point),
        # exactly as in a full run.
        document = {
            "meta": {"python": platform.python_version(),
                     "gray_only": True},
            "gray": run_gray_suite(),
        }
    elif args.traffic_only:
        # No "benchmarks" key at all: an empty section would read as "every
        # timing benchmark vanished"; a missing one means "not measured" and
        # --check skips the timing comparison entirely.
        nodes, scale_factor = TRAFFIC_SCALES[args.scale]
        document = {
            "meta": {"python": platform.python_version(), "seed": args.seed,
                     "scale": args.scale, "traffic_only": True},
            "traffic": run_traffic_suite(seed=args.seed, nodes=nodes,
                                         scale_factor=scale_factor),
        }
    else:
        document = run_suite(seed=args.seed, repeat=args.repeat, scale=args.scale,
                             include_e2e=not args.no_e2e,
                             include_traffic=not args.no_traffic,
                             include_gray=not args.no_gray,
                             include_corruption=not args.no_corruption)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        json.dump(document, sys.stdout, indent=2, sort_keys=True)
        print()

    if args.check:
        with open(args.check, encoding="utf-8") as handle:
            reference = json.load(handle)
        failures = check_regressions(reference, document, args.tolerance)
        if failures:
            print("PERF REGRESSIONS DETECTED:", file=sys.stderr)
            for line in failures:
                print(f"  - {line}", file=sys.stderr)
            return 1
        print("perf check passed: no benchmark regressed beyond "
              f"{args.tolerance:.0%}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
