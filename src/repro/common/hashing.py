"""The 160-bit SHA-1 key space used by the overlay and storage layers.

The paper (Section III-A) uses 160-bit unsigned integers as the key space,
matching the output of SHA-1, and visualises the space as a ring starting at 0
and wrapping around at ``2**160 - 1``.  Every placement decision in the system
— which node owns a tuple, where an index page lives, which node coordinates a
relation version — is made by hashing some identifier into this space and
looking up the owner of the resulting point.

This module provides:

* :data:`KEY_SPACE_BITS` / :data:`KEY_SPACE_SIZE` — the ring geometry.
* :func:`sha1_key` — hash arbitrary values onto the ring.
* :func:`node_id_for` — the DHT identifier of a node (hash of its address).
* :class:`KeyRange` — a half-open, possibly wrapping arc of the ring, with the
  membership, splitting and midpoint operations the storage layer relies on
  (index pages are placed at the *middle* of the range of tuple keys they
  cover; see Section IV).
* :func:`ring_distance` helpers for clockwise arithmetic.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator

KEY_SPACE_BITS = 160
KEY_SPACE_SIZE = 1 << KEY_SPACE_BITS
KEY_SPACE_MASK = KEY_SPACE_SIZE - 1

#: Upper bound of the :func:`sha1_key` memo.  Placement lookups re-hash the
#: same identifiers constantly (tuple keys during routing, page ids during
#: scans, relation-version coordinates during resolution); the bound keeps
#: long chaos sweeps from growing memory without limit while the working set
#: of any single workload stays comfortably inside it.
SHA1_CACHE_MAX = 1 << 16

_sha1_cache: dict[object, int] = {}


def _cache_key(value: object) -> object:
    """An injective, hashable cache key for a hash input.

    Python equality conflates values that :func:`_to_bytes` deliberately
    distinguishes (``1 == True == 1.0``, ``-0.0 == 0.0``), so the raw value
    cannot key the memo.  Scalars are paired with their exact type (floats
    with their ``repr``, which is what gets hashed), and sequences map to
    tuples of child keys — lists and tuples share one digest in
    ``_to_bytes``, so they may share one cache key too.
    """
    kind = type(value)
    if kind is str or kind is bytes:
        return value
    if kind is tuple or kind is list:
        # Strings are by far the most common element; test them inline so
        # the common flat-tuple-of-strings key costs one comprehension.
        return tuple([
            item if type(item) is str else _cache_key(item) for item in value
        ])
    if kind is float:
        return (float, repr(value))
    return (kind, value)


def _to_bytes(value: object) -> bytes:
    """Encode a hash input deterministically.

    Tuples and lists are encoded element-wise with length prefixes so that
    ``("ab", "c")`` and ``("a", "bc")`` hash differently, mirroring how the
    Java implementation hashes composite keys field by field.
    """
    if isinstance(value, bytes):
        return b"B" + len(value).to_bytes(8, "big") + value
    if isinstance(value, str):
        encoded = value.encode("utf-8")
        return b"S" + len(encoded).to_bytes(8, "big") + encoded
    if isinstance(value, bool):
        return b"L" + (b"\x01" if value else b"\x00")
    if isinstance(value, int):
        encoded = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        return b"I" + len(encoded).to_bytes(8, "big") + encoded
    if isinstance(value, float):
        encoded = repr(value).encode("ascii")
        return b"F" + len(encoded).to_bytes(8, "big") + encoded
    if value is None:
        return b"N"
    if isinstance(value, (tuple, list)):
        parts = [b"T", len(value).to_bytes(8, "big")]
        parts.extend(_to_bytes(item) for item in value)
        return b"".join(parts)
    raise TypeError(f"cannot hash value of type {type(value).__name__}")


def sha1_key(value: object) -> int:
    """Hash ``value`` onto the 160-bit ring.

    Accepts strings, bytes, ints, floats, booleans, ``None`` and (nested)
    tuples/lists of those.  The result is an unsigned integer in
    ``[0, 2**160)``.

    Results are memoised in a bounded cache (:data:`SHA1_CACHE_MAX` entries,
    oldest half evicted in bulk when the bound is hit — recency bookkeeping
    per hit would cost more than the amortised eviction): every placement
    decision in the system funnels through this function with a heavily
    repeating identifier population, so the common case is one dict hit
    instead of an encode + SHA-1.
    """
    cache = _sha1_cache
    try:
        key = _cache_key(value)
        cached = cache.get(key)
    except TypeError:
        # Unhashable input (e.g. a dict buried in a tuple): _to_bytes raises
        # the caller-visible TypeError exactly as it always did.
        digest = hashlib.sha1(_to_bytes(value)).digest()
        return int.from_bytes(digest, "big")
    if cached is not None:
        return cached
    digest = hashlib.sha1(_to_bytes(value)).digest()
    result = int.from_bytes(digest, "big")
    if len(cache) >= SHA1_CACHE_MAX:
        # Bulk-evict the oldest half (dicts iterate in insertion order).
        for stale in list(cache)[: SHA1_CACHE_MAX // 2]:
            del cache[stale]
    cache[key] = result
    return result


def sha1_cache_size() -> int:
    """Current number of memoised digests (bounded by SHA1_CACHE_MAX)."""
    return len(_sha1_cache)


def clear_sha1_cache() -> None:
    """Drop the memo (tests; never required for correctness)."""
    _sha1_cache.clear()


def node_id_for(address: str) -> int:
    """Return the ring position of a node, i.e. the SHA-1 hash of its address.

    This mirrors Pastry/Chord assigning each node an ID by hashing its IP
    address (Section III-A).
    """
    return sha1_key(("node", address))


def ring_add(point: int, delta: int) -> int:
    """Move ``delta`` positions clockwise around the ring (modulo 2**160)."""
    return (point + delta) & KEY_SPACE_MASK


def ring_distance(start: int, end: int) -> int:
    """Clockwise distance from ``start`` to ``end`` on the ring."""
    return (end - start) & KEY_SPACE_MASK


def format_key(key: int, digits: int = 8) -> str:
    """Human-readable hex prefix of a key, used in logs and test output."""
    return f"0x{key:040x}"[: 2 + digits] + "..."


@dataclass(frozen=True)
class KeyRange:
    """A half-open arc ``[start, end)`` of the key ring.

    The arc may wrap around zero (``start > end``).  A range with
    ``start == end`` is interpreted as the *full* ring when ``full`` is true
    and as the empty range otherwise; both cases appear in practice (a single
    node owns the whole ring; an empty range results from splitting a
    zero-width arc).
    """

    start: int
    end: int
    full: bool = False

    def __post_init__(self) -> None:
        if not (0 <= self.start < KEY_SPACE_SIZE):
            raise ValueError(f"range start {self.start} outside the key space")
        if not (0 <= self.end < KEY_SPACE_SIZE):
            raise ValueError(f"range end {self.end} outside the key space")
        if self.full and self.start != self.end:
            raise ValueError("a full range must have start == end")

    @classmethod
    def full_ring(cls, start: int = 0) -> "KeyRange":
        """The range covering the entire key space, anchored at ``start``."""
        return cls(start, start, full=True)

    @classmethod
    def empty(cls, start: int = 0) -> "KeyRange":
        return cls(start, start, full=False)

    # -- predicates ---------------------------------------------------------

    def is_empty(self) -> bool:
        return self.start == self.end and not self.full

    def contains(self, key: int) -> bool:
        """Whether ``key`` falls inside the half-open arc."""
        key &= KEY_SPACE_MASK
        if self.start == self.end:
            return self.full
        if self.start < self.end:
            return self.start <= key < self.end
        return key >= self.start or key < self.end

    def overlaps(self, other: "KeyRange") -> bool:
        if self.is_empty() or other.is_empty():
            return False
        if self.full or other.full:
            return True
        return (
            self.contains(other.start)
            or other.contains(self.start)
        )

    # -- measurements -------------------------------------------------------

    def size(self) -> int:
        """Number of keys covered by the arc."""
        if self.start == self.end:
            return KEY_SPACE_SIZE if self.full else 0
        return ring_distance(self.start, self.end)

    def fraction(self) -> float:
        """Fraction of the whole ring covered, in ``[0, 1]``."""
        return self.size() / KEY_SPACE_SIZE

    def midpoint(self) -> int:
        """The key at the middle of the arc.

        Index pages are stored at the midpoint of the hash range of the tuple
        keys they reference, so that the index entry and the referenced tuples
        are co-located on the same node (Section IV).
        """
        if self.is_empty():
            return self.start
        return ring_add(self.start, self.size() // 2)

    # -- construction of sub-ranges ----------------------------------------

    def split(self, pieces: int) -> list["KeyRange"]:
        """Split the arc into ``pieces`` contiguous sub-arcs of near-equal size."""
        if pieces <= 0:
            raise ValueError("pieces must be positive")
        if self.is_empty():
            return [KeyRange.empty(self.start) for _ in range(pieces)]
        total = self.size()
        boundaries = [ring_add(self.start, (total * i) // pieces) for i in range(pieces)]
        boundaries.append(self.end if not self.full else self.start)
        result = []
        for i in range(pieces):
            start, end = boundaries[i], boundaries[i + 1]
            full = self.full and pieces == 1
            result.append(KeyRange(start, end, full=full))
        return result

    def keys_sample(self, count: int) -> Iterator[int]:
        """Yield ``count`` evenly spaced keys inside the arc (for tests)."""
        if self.is_empty() or count <= 0:
            return
        total = self.size()
        for i in range(count):
            yield ring_add(self.start, (total * i) // count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.full:
            return "KeyRange(<full ring>)"
        return f"KeyRange({format_key(self.start)}, {format_key(self.end)})"


def ranges_partition_ring(ranges: Iterable[KeyRange]) -> bool:
    """Check that a collection of ranges exactly partitions the ring.

    Used by tests and by :mod:`repro.overlay.allocation` assertions: the
    balanced allocator must always hand out ranges that tile the ring with no
    gaps and no overlaps.
    """
    ranges = [r for r in ranges if not r.is_empty()]
    if not ranges:
        return False
    if any(r.full for r in ranges):
        return len(ranges) == 1
    total = sum(r.size() for r in ranges)
    if total != KEY_SPACE_SIZE:
        return False
    # Starting points must chain: sort by start and check each range ends where
    # the next one begins (with wrap-around for the last).
    ordered = sorted(ranges, key=lambda r: r.start)
    for i, current in enumerate(ordered):
        nxt = ordered[(i + 1) % len(ordered)]
        if current.end != nxt.start:
            return False
    return True
