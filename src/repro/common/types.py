"""Core data model shared by the storage, query and CDSS layers.

The paper stores *relational* data: every relation has a schema with a set of
key attributes, and each stored tuple is identified by a :class:`TupleId`
consisting of the tuple's key attribute values plus the epoch in which the
tuple was last modified (Section IV, Example 4.1: ``⟨f, 1⟩`` identifies the
version of ``R(f, ...)`` written in epoch 1).  The hash key used to place a
tuple on the ring is derived from the key attributes only, so that a tuple can
always be located given its ID.

Types defined here:

* :class:`Schema` — relation name, attribute names, key attributes.
* :class:`TupleId` — key values + epoch, hashable and orderable.
* :class:`VersionedTuple` — a stored tuple: its ID plus all attribute values.
* :class:`Row` — a light-weight mapping view used by the query engine for
  intermediate results (attribute name → value).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .errors import SchemaError
from .hashing import sha1_key

#: Attribute values are restricted to types with deterministic hashing and
#: serialization.  ``None`` models SQL NULL.
Value = object


def partition_hash(values: Sequence[Value]) -> int:
    """Ring position derived from a tuple's partition-key values.

    This is the *single* hash function used for data placement everywhere in
    the system: base tuples are stored at ``partition_hash`` of their
    partition-key values, and the rehash operator routes intermediate tuples
    with the same function, so a rehash on a join key co-locates the stream
    with base data partitioned on that key.
    """
    return sha1_key(("tuple", tuple(values)))


@dataclass(frozen=True)
class Schema:
    """Schema of a stored relation.

    Parameters
    ----------
    name:
        Relation name, unique within a CDSS instance.
    attributes:
        Ordered attribute names.
    key:
        Names of the (unique) key attributes — a subset of ``attributes``.
        Together with the epoch they form the tuple ID.
    partition_key:
        The prefix of ``key`` used for hash partitioning.  Defaults to the
        first key attribute, matching the paper's "partitioning on their key
        attribute (first key attribute, if more than one attribute was
        present)"; relations whose natural partitioning spans several
        attributes (e.g. a value-correspondence table) can override it.
    """

    name: str
    attributes: tuple[str, ...]
    key: tuple[str, ...]
    partition_key: tuple[str, ...]

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        key: Sequence[str] | None = None,
        partition_key: Sequence[str] | None = None,
    ):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", tuple(attributes))
        if not self.attributes:
            raise SchemaError(f"schema {name!r} must have at least one attribute")
        object.__setattr__(self, "key", tuple(key) if key is not None else (self.attributes[0],))
        object.__setattr__(
            self,
            "partition_key",
            tuple(partition_key) if partition_key is not None else (self.key[0],),
        )
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(f"duplicate attribute names in schema {name!r}")
        missing = [k for k in self.key if k not in self.attributes]
        if missing:
            raise SchemaError(f"key attributes {missing} not present in schema {name!r}")
        if self.partition_key != self.key[: len(self.partition_key)]:
            raise SchemaError(
                f"partition key {self.partition_key} must be a prefix of the key "
                f"{self.key} in schema {name!r}"
            )

    # -- helpers -------------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def index_of(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(f"attribute {attribute!r} not in schema {self.name!r}") from None

    def key_indexes(self) -> tuple[int, ...]:
        # Schemas are immutable; the key positions are computed once and
        # reused by every publish/lookup on the relation (hot path).
        cached = self.__dict__.get("_key_indexes")
        if cached is None:
            cached = tuple(self.index_of(a) for a in self.key)
            object.__setattr__(self, "_key_indexes", cached)
        return cached

    def key_of(self, values: Sequence[Value]) -> tuple[Value, ...]:
        """Extract the key attribute values from a full value tuple."""
        if len(values) != self.arity:
            raise SchemaError(
                f"relation {self.name!r} expects {self.arity} values, got {len(values)}"
            )
        return tuple(values[i] for i in self.key_indexes())

    def tuple_id_for(self, values: Sequence[Value], epoch: int) -> "TupleId":
        """Tuple ID (key values + epoch) of a full value tuple at ``epoch``."""
        return TupleId(self.key_of(values), epoch, partition_width=len(self.partition_key))

    def tuple_id_for_key(self, key_values: Sequence[Value], epoch: int) -> "TupleId":
        """Tuple ID built from key values only (used for deletes)."""
        if len(key_values) != len(self.key):
            raise SchemaError(
                f"relation {self.name!r} expects {len(self.key)} key values, "
                f"got {len(key_values)}"
            )
        return TupleId(tuple(key_values), epoch, partition_width=len(self.partition_key))

    def partition_hash_of(self, values: Sequence[Value]) -> int:
        """Ring position of a full value tuple."""
        return self.tuple_id_for(values, 0).hash_key

    def project(self, attributes: Sequence[str], new_name: str | None = None) -> "Schema":
        """Schema of a projection onto ``attributes`` (key becomes all attributes)."""
        return Schema(new_name or self.name, tuple(attributes), tuple(attributes)[:1])

    def rename(self, new_name: str) -> "Schema":
        return Schema(new_name, self.attributes, self.key)


@dataclass(frozen=True, order=True)
class TupleId:
    """Unique identifier of a stored tuple version: key values + epoch.

    The ID hash (``hash_key``) is derived from the tuple's *partition-key*
    values — a prefix of the key values — so two versions of the same logical
    tuple land on the same ring position and a tuple can be fetched knowing
    only its ID (Section IV: "a tuple's hash key must be derived from
    (possibly a subset of) the attributes in its ID").
    """

    key_values: tuple[Value, ...]
    epoch: int
    partition_width: int = 0

    def __init__(self, key_values: Sequence[Value], epoch: int, partition_width: int = 0):
        object.__setattr__(self, "key_values", tuple(key_values))
        object.__setattr__(self, "epoch", int(epoch))
        width = int(partition_width)
        if width <= 0 or width > len(self.key_values):
            width = len(self.key_values)
        object.__setattr__(self, "partition_width", width)

    @property
    def partition_values(self) -> tuple[Value, ...]:
        return self.key_values[: self.partition_width]

    @property
    def hash_key(self) -> int:
        """Ring position of the tuple, derived from its partition-key values.

        Computed lazily once per instance: tuple IDs are compared, routed and
        stored by hash key constantly (B+-tree keys, scan routing, page
        assignment), and the SHA-1 is pure, so the first result is kept.
        """
        cached = self.__dict__.get("_hash_key")
        if cached is None:
            cached = partition_hash(self.key_values[: self.partition_width])
            object.__setattr__(self, "_hash_key", cached)
        return cached

    def with_epoch(self, epoch: int) -> "TupleId":
        return TupleId(self.key_values, epoch, self.partition_width)

    def __repr__(self) -> str:
        key_repr = ", ".join(repr(v) for v in self.key_values)
        return f"⟨{key_repr} @ {self.epoch}⟩"


@dataclass(frozen=True)
class VersionedTuple:
    """A fully materialised tuple version as stored at a data storage node."""

    relation: str
    tuple_id: TupleId
    values: tuple[Value, ...]
    deleted: bool = False

    def __init__(
        self,
        relation: str,
        tuple_id: TupleId,
        values: Sequence[Value],
        deleted: bool = False,
    ):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "tuple_id", tuple_id)
        object.__setattr__(self, "values", tuple(values))
        object.__setattr__(self, "deleted", bool(deleted))

    @property
    def epoch(self) -> int:
        return self.tuple_id.epoch

    @property
    def hash_key(self) -> int:
        return self.tuple_id.hash_key

    def estimated_size(self) -> int:
        """Rough wire size in bytes; used by the traffic accounting.

        Cached per instance: the same stored tuple is re-sized on every
        store/lookup/replication touch, and the instance is immutable.
        """
        cached = self.__dict__.get("_estimated_size")
        if cached is None:
            cached = estimate_values_size(self.values) + 8 + len(self.relation)
            object.__setattr__(self, "_estimated_size", cached)
        return cached


#: Shared attribute-name → position maps, one per distinct attribute tuple.
#: A handful of plans/schemas produce millions of rows, so the map is built
#: once per attribute list and every ``row[name]`` becomes one dict lookup
#: instead of a linear ``tuple.index`` scan.
_ATTRIBUTE_INDEXES: dict[tuple[str, ...], dict[str, int]] = {}
#: Hard caps on the shared attribute caches: one entry per distinct schema /
#: plan signature in normal runs, but long-lived processes generating ad-hoc
#: schemas (chaos sweeps) must not grow them without limit.  Past the cap new
#: signatures simply skip the memo.
_ATTRIBUTE_CACHE_MAX = 1 << 12
#: Concatenated attribute tuples (join outputs), keyed by the input pair so
#: every joined row of one join shares one attributes tuple object.
_CONCAT_ATTRIBUTES: dict[tuple[tuple[str, ...], tuple[str, ...]], tuple[str, ...]] = {}


def concat_attributes(
    left: tuple[str, ...], right: tuple[str, ...]
) -> tuple[str, ...]:
    """The concatenation ``left + right``, shared per input pair.

    Join outputs concatenate the same two attribute tuples for every matched
    row; sharing one result object keeps downstream per-batch compiled-plan
    lookups hitting the same key.
    """
    pair = (left, right)
    attributes = _CONCAT_ATTRIBUTES.get(pair)
    if attributes is None:
        attributes = left + right
        if len(_CONCAT_ATTRIBUTES) < _ATTRIBUTE_CACHE_MAX:
            _CONCAT_ATTRIBUTES[pair] = attributes
    return attributes


def attribute_index(attributes: tuple[str, ...]) -> dict[str, int]:
    lookup = _ATTRIBUTE_INDEXES.get(attributes)
    if lookup is None:
        lookup = {}
        for index, name in enumerate(attributes):
            # First occurrence wins, matching tuple.index on duplicate
            # attribute names (join outputs may repeat a name).
            if name not in lookup:
                lookup[name] = index
        if len(_ATTRIBUTE_INDEXES) < _ATTRIBUTE_CACHE_MAX:
            _ATTRIBUTE_INDEXES[attributes] = lookup
    return lookup


class Row(Mapping[str, Value]):
    """An immutable attribute-name → value mapping over a value tuple.

    The query engine manipulates rows rather than raw value tuples so that
    operators can address attributes by (possibly qualified) name after joins
    and projections.  ``Row`` is a thin view: it shares the underlying value
    tuple and only stores the attribute ordering once per schema.
    """

    __slots__ = ("_attributes", "_values", "_lookup")

    def __init__(self, attributes: Sequence[str], values: Sequence[Value]):
        if len(attributes) != len(values):
            raise SchemaError(
                f"row has {len(values)} values for {len(attributes)} attributes"
            )
        self._attributes = tuple(attributes)
        self._values = tuple(values)
        self._lookup = None

    @classmethod
    def unchecked(cls, attributes: tuple[str, ...], values: tuple[Value, ...]) -> "Row":
        """Construct without re-validating lengths (operator inner loops).

        Callers must guarantee ``len(attributes) == len(values)``; the query
        operators do, because both come from one compiled plan step.
        """
        row = object.__new__(cls)
        row._attributes = attributes
        row._values = values
        row._lookup = None
        return row

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Value]) -> "Row":
        return cls(tuple(mapping.keys()), tuple(mapping.values()))

    @property
    def attributes(self) -> tuple[str, ...]:
        return self._attributes

    @property
    def values(self) -> tuple[Value, ...]:
        return self._values

    def __getitem__(self, key: str) -> Value:
        # The name → position map is shared per attribute tuple and attached
        # lazily: rows that are only ever read positionally (the vectorized
        # operators) never pay for it.
        lookup = self._lookup
        if lookup is None:
            lookup = self._lookup = attribute_index(self._attributes)
        try:
            return self._values[lookup[key]]
        except KeyError:
            raise KeyError(key) from None

    def __iter__(self):
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __hash__(self) -> int:
        return hash((self._attributes, self._values))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._attributes == other._attributes and self._values == other._values
        return NotImplemented

    def project(self, attributes: Sequence[str]) -> "Row":
        return Row(tuple(attributes), tuple(self[a] for a in attributes))

    def concat(self, other: "Row") -> "Row":
        return Row.unchecked(
            concat_attributes(self._attributes, other._attributes),
            self._values + other._values,
        )

    def estimated_size(self) -> int:
        return estimate_values_size(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{a}={v!r}" for a, v in zip(self._attributes, self._values))
        return f"Row({inner})"


def estimate_values_size(values: Iterable[Value]) -> int:
    """Estimate the serialized size of a value tuple in bytes.

    The simulator charges network transfer time proportional to this estimate;
    it intentionally mirrors a compact binary encoding (4-byte ints, 8-byte
    floats, UTF-8 strings with a 2-byte length prefix) rather than Python's
    in-memory sizes.
    """
    total = 2  # arity header
    for value in values:
        if value is None:
            total += 1
        elif isinstance(value, bool):
            total += 1
        elif isinstance(value, int):
            total += 5
        elif isinstance(value, float):
            total += 9
        elif isinstance(value, str):
            total += 2 + len(value.encode("utf-8"))
        elif isinstance(value, bytes):
            total += 2 + len(value)
        elif isinstance(value, tuple):
            total += estimate_values_size(value)
        else:
            total += 16
    return total


@dataclass
class RelationData:
    """An in-memory relation instance: schema plus a list of value tuples.

    Workload generators produce ``RelationData`` objects which are then
    published into the versioned distributed storage; the reference (oracle)
    query evaluator used in tests also runs directly over them.
    """

    schema: Schema
    rows: list[tuple[Value, ...]] = field(default_factory=list)

    def add(self, *values: Value) -> None:
        if len(values) != self.schema.arity:
            raise SchemaError(
                f"relation {self.schema.name!r} expects {self.schema.arity} values, "
                f"got {len(values)}"
            )
        self.rows.append(tuple(values))

    def extend(self, rows: Iterable[Sequence[Value]]) -> None:
        for values in rows:
            self.add(*values)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def estimated_size(self) -> int:
        return sum(estimate_values_size(r) for r in self.rows)
