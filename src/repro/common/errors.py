"""Exception hierarchy shared by every subsystem of the reproduction.

The original ORCHESTRA storage and query layer distinguishes three broad
failure categories: problems in the networking/overlay substrate, problems in
the versioned storage layer, and problems during distributed query execution.
We mirror that structure so callers can catch at the granularity they care
about (e.g. the recovery manager catches :class:`NodeFailedError` but lets a
:class:`PlanError` propagate, because the latter indicates a bug rather than a
runtime fault).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


# ---------------------------------------------------------------------------
# Network / overlay substrate
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for errors in the simulated networking substrate."""


class NodeFailedError(NetworkError):
    """Raised when a message is sent to (or from) a node that has failed.

    This models the broken-TCP-connection signal the paper relies on for fast
    failure detection (Section V-A).
    """

    def __init__(self, node_id: str, detail: str = "") -> None:
        self.node_id = node_id
        message = f"node {node_id!r} has failed"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class UnknownNodeError(NetworkError):
    """Raised when addressing a node that was never registered in the network."""


class ConnectionClosedError(NetworkError):
    """Raised when using a transport connection after it was closed or dropped."""


class RoutingError(NetworkError):
    """Raised when a key cannot be routed (e.g. empty routing table snapshot)."""


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for versioned-storage errors."""


class RelationNotFoundError(StorageError):
    """The requested relation does not exist at the requested epoch."""


class EpochNotFoundError(StorageError):
    """No published version of the relation exists at or before the epoch."""


class TupleNotFoundError(StorageError):
    """A tuple ID referenced by an index page could not be located anywhere."""


class StaleDataError(StorageError):
    """A node attempted to serve data that the index says is stale.

    The paper guarantees this can never surface to a query (Section IV): when
    the correct version is missing locally, the node must fetch it from a
    replica rather than return the stale version.  This error therefore only
    appears in tests that deliberately disable the fallback.
    """


class SchemaError(StorageError):
    """A tuple does not conform to its relation's schema."""


# ---------------------------------------------------------------------------
# Query processing
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for distributed query-processing errors."""


class PlanError(QueryError):
    """A query plan is malformed (bad operator wiring, unknown attribute...)."""


class ExpressionError(QueryError):
    """A scalar expression or predicate references unknown attributes or types."""


class QueryAbortedError(QueryError):
    """The query was aborted (for instance because restart-based recovery
    decided to re-run it from scratch and the caller asked for no retries)."""


class RecoveryError(QueryError):
    """Incremental recovery could not complete (e.g. no replica holds the
    failed node's data)."""


class OptimizerError(QueryError):
    """The optimizer could not produce a plan for the logical query."""


class SQLSyntaxError(QueryError):
    """The single-block SQL parser rejected the statement."""


# ---------------------------------------------------------------------------
# CDSS layer
# ---------------------------------------------------------------------------


class CDSSError(ReproError):
    """Base class for collaborative-data-sharing-layer errors."""


class MappingError(CDSSError):
    """A schema mapping is malformed or references unknown relations."""


class ReconciliationError(CDSSError):
    """Conflict resolution failed or was mis-configured."""
