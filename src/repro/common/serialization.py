"""Binary serialization and batch compression for tuples on the wire.

Section V-A of the paper notes that, for performance, the query processor
"batches tuples into blocks by destination, compressing them (using
lightweight Zip-based compression) and marshalling them in a format that
exploits their commonalities".  Network traffic measurements in the evaluation
(Figures 8, 9, 11, 12, 15, 16, 19, 20) therefore reflect *compressed* batch
sizes.

This module provides a compact, deterministic binary encoding for value
tuples, plus :class:`TupleBatch`, which marshals a list of rows sharing one
schema column-wise (exploiting commonality between tuples) and compresses the
result with zlib — the closest Python equivalent to the paper's Zip-based
compression.  The simulator charges transfer time and records traffic based on
the *compressed* size, so the traffic figures inherit realistic compression
behaviour (string-heavy STBenchmark batches compress much better than the
mostly-numeric TPC-H batches).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterable, Sequence

from .errors import ReproError
from .types import Value

#: zlib level 1 ≈ "lightweight Zip-based compression".
COMPRESSION_LEVEL = 1

_TAG_NONE = 0
_TAG_BOOL = 1
_TAG_INT = 2
_TAG_FLOAT = 3
_TAG_STR = 4
_TAG_BYTES = 5
_TAG_TUPLE = 6
#: Integers whose two's-complement encoding exceeds 255 bytes (≈ ±2**2035).
#: ``_TAG_INT`` carries a one-byte length, which such values overflow — they
#: were unencodable before this tag existed, so adding it changes no wire
#: bytes for previously-encodable values.
_TAG_BIGINT = 7


class SerializationError(ReproError):
    """Raised when a value cannot be encoded or a payload cannot be decoded."""


def encode_value(value: Value) -> bytes:
    """Encode a single value with a one-byte type tag."""
    if value is None:
        return bytes([_TAG_NONE])
    if isinstance(value, bool):
        return bytes([_TAG_BOOL, 1 if value else 0])
    if isinstance(value, int):
        encoded = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        if len(encoded) > 255:
            return bytes([_TAG_BIGINT]) + struct.pack(">I", len(encoded)) + encoded
        return bytes([_TAG_INT, len(encoded)]) + encoded
    if isinstance(value, float):
        return bytes([_TAG_FLOAT]) + struct.pack(">d", value)
    if isinstance(value, str):
        encoded = value.encode("utf-8")
        return bytes([_TAG_STR]) + struct.pack(">I", len(encoded)) + encoded
    if isinstance(value, bytes):
        return bytes([_TAG_BYTES]) + struct.pack(">I", len(value)) + value
    if isinstance(value, tuple):
        parts = [bytes([_TAG_TUPLE]), struct.pack(">I", len(value))]
        parts.extend(encode_value(v) for v in value)
        return b"".join(parts)
    raise SerializationError(f"cannot serialize value of type {type(value).__name__}")


def decode_value(payload: bytes, offset: int = 0) -> tuple[Value, int]:
    """Decode one value starting at ``offset``; returns ``(value, next_offset)``."""
    if offset >= len(payload):
        raise SerializationError("truncated payload")
    tag = payload[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_BOOL:
        return bool(payload[offset]), offset + 1
    if tag == _TAG_INT:
        length = payload[offset]
        offset += 1
        raw = payload[offset : offset + length]
        return int.from_bytes(raw, "big", signed=True), offset + length
    if tag == _TAG_BIGINT:
        (length,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        raw = payload[offset : offset + length]
        return int.from_bytes(raw, "big", signed=True), offset + length
    if tag == _TAG_FLOAT:
        (value,) = struct.unpack_from(">d", payload, offset)
        return value, offset + 8
    if tag == _TAG_STR:
        (length,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        raw = payload[offset : offset + length]
        return raw.decode("utf-8"), offset + length
    if tag == _TAG_BYTES:
        (length,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        return bytes(payload[offset : offset + length]), offset + length
    if tag == _TAG_TUPLE:
        (count,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        items = []
        for _ in range(count):
            item, offset = decode_value(payload, offset)
            items.append(item)
        return tuple(items), offset
    raise SerializationError(f"unknown type tag {tag}")


def encode_values(values: Sequence[Value]) -> bytes:
    """Encode a value tuple (row) as a length-prefixed sequence."""
    parts = [struct.pack(">I", len(values))]
    parts.extend(encode_value(v) for v in values)
    return b"".join(parts)


def decode_values(payload: bytes, offset: int = 0) -> tuple[tuple[Value, ...], int]:
    (count,) = struct.unpack_from(">I", payload, offset)
    offset += 4
    values = []
    for _ in range(count):
        value, offset = decode_value(payload, offset)
        values.append(value)
    return tuple(values), offset


@dataclass
class TupleBatch:
    """A destination-addressed batch of rows sharing a single attribute list.

    The batch records both the uncompressed and compressed payload sizes.  The
    networking layer uses :attr:`wire_size` (compressed, plus a small framing
    header) when charging bandwidth and accounting traffic, matching the
    paper's use of compressed batches on the wire.
    """

    attributes: tuple[str, ...]
    rows: list[tuple[Value, ...]]
    raw_size: int
    compressed_size: int

    HEADER_BYTES = 24  # destination, batch id, attribute digest, lengths

    @classmethod
    def build(cls, attributes: Sequence[str], rows: Iterable[Sequence[Value]]) -> "TupleBatch":
        rows = [tuple(r) for r in rows]
        payload = cls._marshal(attributes, rows)
        compressed = zlib.compress(payload, COMPRESSION_LEVEL)
        return cls(
            attributes=tuple(attributes),
            rows=rows,
            raw_size=len(payload),
            compressed_size=len(compressed),
        )

    @staticmethod
    def _marshal(attributes: Sequence[str], rows: Sequence[tuple[Value, ...]]) -> bytes:
        """Column-wise marshalling: values of the same attribute are adjacent.

        Grouping a column's values together is what lets the compressor
        exploit commonality between tuples (repeated prefixes, small numeric
        deltas), as the paper's marshalling format does.
        """
        parts = [struct.pack(">II", len(attributes), len(rows))]
        for name in attributes:
            encoded = name.encode("utf-8")
            parts.append(struct.pack(">H", len(encoded)))
            parts.append(encoded)
        for column, _name in enumerate(attributes):
            for row in rows:
                parts.append(encode_value(row[column]))
        return b"".join(parts)

    @classmethod
    def unmarshal(cls, payload: bytes) -> "TupleBatch":
        """Rebuild a batch from a compressed payload (used in round-trip tests)."""
        raw = zlib.decompress(payload)
        arity, count = struct.unpack_from(">II", raw, 0)
        offset = 8
        attributes = []
        for _ in range(arity):
            (length,) = struct.unpack_from(">H", raw, offset)
            offset += 2
            attributes.append(raw[offset : offset + length].decode("utf-8"))
            offset += length
        columns: list[list[Value]] = [[] for _ in range(arity)]
        for column in range(arity):
            for _ in range(count):
                value, offset = decode_value(raw, offset)
                columns[column].append(value)
        rows = [tuple(columns[c][i] for c in range(arity)) for i in range(count)]
        return cls(
            attributes=tuple(attributes),
            rows=rows,
            raw_size=len(raw),
            compressed_size=len(payload),
        )

    def compressed_payload(self) -> bytes:
        return zlib.compress(self._marshal(self.attributes, self.rows), COMPRESSION_LEVEL)

    @property
    def wire_size(self) -> int:
        """Bytes this batch occupies on the (simulated) wire."""
        return self.compressed_size + self.HEADER_BYTES

    def __len__(self) -> int:
        return len(self.rows)
