"""Binary serialization and batch compression for tuples on the wire.

Section V-A of the paper notes that, for performance, the query processor
"batches tuples into blocks by destination, compressing them (using
lightweight Zip-based compression) and marshalling them in a format that
exploits their commonalities".  Network traffic measurements in the evaluation
(Figures 8, 9, 11, 12, 15, 16, 19, 20) therefore reflect *compressed* batch
sizes.

This module provides a compact, deterministic binary encoding for value
tuples, plus :class:`TupleBatch`, which marshals a list of rows sharing one
schema column-wise (exploiting commonality between tuples) and compresses the
result with zlib — the closest Python equivalent to the paper's Zip-based
compression.  The simulator charges transfer time and records traffic based on
the *compressed* size, so the traffic figures inherit realistic compression
behaviour (string-heavy STBenchmark batches compress much better than the
mostly-numeric TPC-H batches).

Fast paths
----------
The traffic figures depend on the *exact* bytes, so every fast path below is
byte-identical to the original recursive encoder (pinned by the golden-vector
tests in ``tests/common/test_golden_wire.py``).  Three levels of speedup:

* **value caches** — the encodings of small integers and short strings are
  memoised (placement keys, flags and enumeration values repeat endlessly in
  real batches); both caches are bounded.
* **type-dispatch** — :func:`encode_value` dispatches on ``type(value)``
  through a dict instead of an ``isinstance`` chain, falling back to the
  original chain for subclasses.
* **column codecs** — :meth:`TupleBatch._marshal` detects each column's type
  signature once and runs a compiled per-column encoder: fixed-width columns
  (floats, bools, Nones) are assembled with ``struct`` block packs and strided
  buffer writes in a single pass, variable-width columns through the value
  caches.  Mixed columns fall back to per-value encoding.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Iterable, Sequence

from .errors import ReproError
from .types import Value

#: zlib level 1 ≈ "lightweight Zip-based compression".
COMPRESSION_LEVEL = 1

_TAG_NONE = 0
_TAG_BOOL = 1
_TAG_INT = 2
_TAG_FLOAT = 3
_TAG_STR = 4
_TAG_BYTES = 5
_TAG_TUPLE = 6
#: Integers whose two's-complement encoding exceeds 255 bytes (≈ ±2**2035).
#: ``_TAG_INT`` carries a one-byte length, which such values overflow — they
#: were unencodable before this tag existed, so adding it changes no wire
#: bytes for previously-encodable values.
_TAG_BIGINT = 7

_U32 = struct.Struct(">I")
_FLOAT_VALUE = struct.Struct(">Bd")

_NONE_BYTES = bytes([_TAG_NONE])
_BOOL_TRUE = bytes([_TAG_BOOL, 1])
_BOOL_FALSE = bytes([_TAG_BOOL, 0])
_FLOAT_TAG = bytes([_TAG_FLOAT])
_STR_TAG = bytes([_TAG_STR])
_BYTES_TAG = bytes([_TAG_BYTES])
_TUPLE_TAG = bytes([_TAG_TUPLE])
_BIGINT_TAG = bytes([_TAG_BIGINT])

#: Bounded memo of small-integer encodings.  Insert-only with a hard cap:
#: placement keys and enumeration values revisit a working set far smaller
#: than the cap, so eviction machinery would cost more than it saves.
_INT_CACHE: dict[int, bytes] = {}
_INT_CACHE_MAX = 1 << 16
#: Bounded memo of short-string encodings (flags, status codes, city names).
_STR_CACHE: dict[str, bytes] = {}
_STR_CACHE_MAX = 1 << 16
_STR_CACHE_MAX_LENGTH = 64
#: Bounded memo of encoded attribute-name headers, one per schema signature.
_HEADER_CACHE: dict[tuple[str, ...], bytes] = {}
_HEADER_CACHE_MAX = 1 << 10


class SerializationError(ReproError):
    """Raised when a value cannot be encoded or a payload cannot be decoded."""


def _encode_int(value: int) -> bytes:
    encoded = _INT_CACHE.get(value)
    if encoded is None:
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        length = len(raw)
        if length > 255:
            return _BIGINT_TAG + _U32.pack(length) + raw
        encoded = bytes((_TAG_INT, length)) + raw
        # Only narrow integers enter the memo: they are the repeating
        # population (keys, quantities, flags); wide randoms would flush it.
        if length <= 5 and len(_INT_CACHE) < _INT_CACHE_MAX:
            _INT_CACHE[value] = encoded
    return encoded


def _encode_str(value: str) -> bytes:
    encoded = _STR_CACHE.get(value)
    if encoded is None:
        raw = value.encode("utf-8")
        encoded = _STR_TAG + _U32.pack(len(raw)) + raw
        if len(value) <= _STR_CACHE_MAX_LENGTH and len(_STR_CACHE) < _STR_CACHE_MAX:
            _STR_CACHE[value] = encoded
    return encoded


def _encode_float(value: float) -> bytes:
    return _FLOAT_VALUE.pack(_TAG_FLOAT, value)


def _encode_bool(value: bool) -> bytes:
    return _BOOL_TRUE if value else _BOOL_FALSE


def _encode_bytes(value: bytes) -> bytes:
    return _BYTES_TAG + _U32.pack(len(value)) + value


def _encode_tuple(value: tuple) -> bytes:
    parts = [_TUPLE_TAG, _U32.pack(len(value))]
    parts.extend(map(encode_value, value))
    return b"".join(parts)


#: Exact-type dispatch for the common case; subclasses (IntEnum and friends)
#: fall through to the original isinstance chain below.
_ENCODERS: dict[type, Callable] = {
    bool: _encode_bool,
    int: _encode_int,
    float: _encode_float,
    str: _encode_str,
    bytes: _encode_bytes,
    tuple: _encode_tuple,
}


def encode_value(value: Value) -> bytes:
    """Encode a single value with a one-byte type tag."""
    if value is None:
        return _NONE_BYTES
    encoder = _ENCODERS.get(type(value))
    if encoder is not None:
        return encoder(value)
    # Subclass fallback: the original isinstance chain, in the original order
    # (bool before int — bool is an int subclass).
    if isinstance(value, bool):
        return _encode_bool(value)
    if isinstance(value, int):
        return _encode_int(value)
    if isinstance(value, float):
        return _encode_float(value)
    if isinstance(value, str):
        return _encode_str(value)
    if isinstance(value, bytes):
        return _encode_bytes(value)
    if isinstance(value, tuple):
        return _encode_tuple(value)
    raise SerializationError(f"cannot serialize value of type {type(value).__name__}")


def decode_value(payload: bytes, offset: int = 0) -> tuple[Value, int]:
    """Decode one value starting at ``offset``; returns ``(value, next_offset)``.

    Tags are tested hottest-first (ints, floats and strings dominate real
    batches); the ordering is invisible on the wire — tags are mutually
    exclusive.
    """
    if offset >= len(payload):
        raise SerializationError("truncated payload")
    tag = payload[offset]
    offset += 1
    if tag == _TAG_INT:
        length = payload[offset]
        offset += 1
        raw = payload[offset : offset + length]
        return int.from_bytes(raw, "big", signed=True), offset + length
    if tag == _TAG_FLOAT:
        (value,) = struct.unpack_from(">d", payload, offset)
        return value, offset + 8
    if tag == _TAG_STR:
        (length,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        raw = payload[offset : offset + length]
        return raw.decode("utf-8"), offset + length
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_BOOL:
        return bool(payload[offset]), offset + 1
    if tag == _TAG_BIGINT:
        (length,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        raw = payload[offset : offset + length]
        return int.from_bytes(raw, "big", signed=True), offset + length
    if tag == _TAG_BYTES:
        (length,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        return bytes(payload[offset : offset + length]), offset + length
    if tag == _TAG_TUPLE:
        (count,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        items = []
        for _ in range(count):
            item, offset = decode_value(payload, offset)
            items.append(item)
        return tuple(items), offset
    raise SerializationError(f"unknown type tag {tag}")


def encode_values(values: Sequence[Value]) -> bytes:
    """Encode a value tuple (row) as a length-prefixed sequence."""
    parts = [_U32.pack(len(values))]
    append = parts.append
    encoders = _ENCODERS
    for value in values:
        if value is None:
            append(_NONE_BYTES)
            continue
        encoder = encoders.get(type(value))
        append(encoder(value) if encoder is not None else encode_value(value))
    return b"".join(parts)


def decode_values(payload: bytes, offset: int = 0) -> tuple[tuple[Value, ...], int]:
    (count,) = struct.unpack_from(">I", payload, offset)
    offset += 4
    values = []
    append = values.append
    for _ in range(count):
        value, offset = decode_value(payload, offset)
        append(value)
    return tuple(values), offset


# ---------------------------------------------------------------------------
# Column codecs: compiled per column-type signature
# ---------------------------------------------------------------------------


@lru_cache(maxsize=1024)
def _float_block(count: int) -> struct.Struct:
    """Block pack for ``count`` untagged big-endian doubles."""
    return struct.Struct(f">{count}d")


def _encode_float_column(column: Sequence[float]) -> bytes:
    """Single-pass assembly of a float column: one block pack, then strided
    writes interleave the type tags — no per-value Python calls at all."""
    count = len(column)
    packed = _float_block(count).pack(*column)
    buffer = bytearray(9 * count)
    buffer[0::9] = _FLOAT_TAG * count
    for byte_index in range(8):
        buffer[1 + byte_index :: 9] = packed[byte_index::8]
    return bytes(buffer)


def _encode_bool_column(column: Sequence[bool]) -> bytes:
    return b"".join([_BOOL_TRUE if value else _BOOL_FALSE for value in column])


def _encode_none_column(column: Sequence[None]) -> bytes:
    return _NONE_BYTES * len(column)


def _encode_int_column(column: Sequence[int]) -> bytes:
    cache_get = _INT_CACHE.get
    parts = []
    append = parts.append
    for value in column:
        encoded = cache_get(value)
        if encoded is None:
            encoded = _encode_int(value)
        append(encoded)
    return b"".join(parts)


def _encode_str_column(column: Sequence[str]) -> bytes:
    # Inlined cache loop: one function call per *miss* instead of per value.
    cache_get = _STR_CACHE.get
    cache = _STR_CACHE
    pack = _U32.pack
    tag = _STR_TAG
    parts = []
    append = parts.append
    for value in column:
        encoded = cache_get(value)
        if encoded is None:
            raw = value.encode("utf-8")
            encoded = tag + pack(len(raw)) + raw
            if len(value) <= _STR_CACHE_MAX_LENGTH and len(cache) < _STR_CACHE_MAX:
                cache[value] = encoded
        append(encoded)
    return b"".join(parts)


#: Compiled encoder per homogeneous column-type signature.
_COLUMN_CODECS: dict[type, Callable] = {
    float: _encode_float_column,
    int: _encode_int_column,
    str: _encode_str_column,
    bool: _encode_bool_column,
    type(None): _encode_none_column,
}


def _encode_column(column: Sequence[Value]) -> bytes:
    """Encode one column, dispatching on its type signature.

    ``set(map(type, column))`` is a C-level pass; when the signature is a
    single exact type the compiled codec runs, otherwise (mixed columns,
    subclasses, nested tuples) each value goes through :func:`encode_value`,
    which produces the identical bytes.
    """
    signature = set(map(type, column))
    if len(signature) == 1:
        codec = _COLUMN_CODECS.get(signature.pop())
        if codec is not None:
            return codec(column)
    return b"".join(map(encode_value, column))


@dataclass
class TupleBatch:
    """A destination-addressed batch of rows sharing a single attribute list.

    The batch records both the uncompressed and compressed payload sizes.  The
    networking layer uses :attr:`wire_size` (compressed, plus a small framing
    header) when charging bandwidth and accounting traffic, matching the
    paper's use of compressed batches on the wire.
    """

    attributes: tuple[str, ...]
    rows: list[tuple[Value, ...]]
    raw_size: int
    compressed_size: int

    HEADER_BYTES = 24  # destination, batch id, attribute digest, lengths

    @classmethod
    def build(cls, attributes: Sequence[str], rows: Iterable[Sequence[Value]]) -> "TupleBatch":
        rows = [tuple(r) for r in rows]
        payload = cls._marshal(attributes, rows)
        compressed = zlib.compress(payload, COMPRESSION_LEVEL)
        return cls(
            attributes=tuple(attributes),
            rows=rows,
            raw_size=len(payload),
            compressed_size=len(compressed),
        )

    @staticmethod
    def _marshal(attributes: Sequence[str], rows: Sequence[tuple[Value, ...]]) -> bytes:
        """Column-wise marshalling: values of the same attribute are adjacent.

        Grouping a column's values together is what lets the compressor
        exploit commonality between tuples (repeated prefixes, small numeric
        deltas), as the paper's marshalling format does.  Columns are
        transposed in one C-level ``zip`` and encoded by the compiled column
        codecs above; the output is byte-identical to per-value encoding.
        """
        arity = len(attributes)
        attribute_key = tuple(attributes)
        header = _HEADER_CACHE.get(attribute_key)
        if header is None:
            header_parts = []
            for name in attributes:
                encoded = name.encode("utf-8")
                header_parts.append(struct.pack(">H", len(encoded)))
                header_parts.append(encoded)
            header = b"".join(header_parts)
            if len(_HEADER_CACHE) < _HEADER_CACHE_MAX:
                _HEADER_CACHE[attribute_key] = header
        parts = [struct.pack(">II", arity, len(rows)), header]
        if rows:
            if all(len(row) == arity for row in rows):
                columns: Iterable[Sequence[Value]] = zip(*rows)
            elif all(len(row) >= arity for row in rows):
                columns = (
                    tuple(row[index] for row in rows) for index in range(arity)
                )
            else:
                # Malformed (short) rows: keep the original per-value loop so
                # the same IndexError surfaces.
                for column_index in range(arity):
                    for row in rows:
                        parts.append(encode_value(row[column_index]))
                return b"".join(parts)
            for column in columns:
                parts.append(_encode_column(column))
        return b"".join(parts)

    @classmethod
    def unmarshal(cls, payload: bytes) -> "TupleBatch":
        """Rebuild a batch from a compressed payload (used in round-trip tests)."""
        raw = zlib.decompress(payload)
        arity, count = struct.unpack_from(">II", raw, 0)
        offset = 8
        attributes = []
        for _ in range(arity):
            (length,) = struct.unpack_from(">H", raw, offset)
            offset += 2
            attributes.append(raw[offset : offset + length].decode("utf-8"))
            offset += length
        columns: list[list[Value]] = []
        for _ in range(arity):
            column, offset = _decode_column(raw, offset, count)
            columns.append(column)
        rows = list(zip(*columns)) if columns else [() for _ in range(count)]
        return cls(
            attributes=tuple(attributes),
            rows=rows,
            raw_size=len(raw),
            compressed_size=len(payload),
        )

    def compressed_payload(self) -> bytes:
        return zlib.compress(self._marshal(self.attributes, self.rows), COMPRESSION_LEVEL)

    @property
    def wire_size(self) -> int:
        """Bytes this batch occupies on the (simulated) wire."""
        return self.compressed_size + self.HEADER_BYTES

    def __len__(self) -> int:
        return len(self.rows)


def _decode_column(payload: bytes, offset: int, count: int) -> tuple[list[Value], int]:
    """Decode ``count`` values with the common tags inlined (no per-value
    function call for ints, floats and strings).  A column that is entirely
    floats — the common case for measures — is detected with one strided tag
    check and decoded with a single block unpack."""
    if count and payload[offset] == _TAG_FLOAT:
        end = offset + 9 * count
        block = payload[offset:end]
        if len(block) == 9 * count and block[0::9] == _FLOAT_TAG * count:
            doubles = bytearray(8 * count)
            for byte_index in range(8):
                doubles[byte_index::8] = block[1 + byte_index :: 9]
            return list(_float_block(count).unpack(doubles)), end
    values: list[Value] = []
    append = values.append
    unpack_float = struct.unpack_from
    for _ in range(count):
        tag = payload[offset]
        if tag == _TAG_INT:
            length = payload[offset + 1]
            end = offset + 2 + length
            append(int.from_bytes(payload[offset + 2 : end], "big", signed=True))
            offset = end
        elif tag == _TAG_FLOAT:
            append(unpack_float(">d", payload, offset + 1)[0])
            offset += 9
        elif tag == _TAG_STR:
            (length,) = unpack_float(">I", payload, offset + 1)
            end = offset + 5 + length
            append(payload[offset + 5 : end].decode("utf-8"))
            offset = end
        else:
            value, offset = decode_value(payload, offset)
            append(value)
    return values, offset
