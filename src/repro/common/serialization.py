"""Binary serialization and batch compression for tuples on the wire.

Section V-A of the paper notes that, for performance, the query processor
"batches tuples into blocks by destination, compressing them (using
lightweight Zip-based compression) and marshalling them in a format that
exploits their commonalities".  Network traffic measurements in the evaluation
(Figures 8, 9, 11, 12, 15, 16, 19, 20) therefore reflect *compressed* batch
sizes.

This module provides a compact, deterministic binary encoding for value
tuples, plus :class:`TupleBatch`, which marshals a list of rows sharing one
schema column-wise (exploiting commonality between tuples) and compresses the
result with zlib — the closest Python equivalent to the paper's Zip-based
compression.  The simulator charges transfer time and records traffic based on
the *compressed* size, so the traffic figures inherit realistic compression
behaviour (string-heavy STBenchmark batches compress much better than the
mostly-numeric TPC-H batches).

Fast paths
----------
The traffic figures depend on the *exact* bytes, so every fast path below is
byte-identical to the original recursive encoder (pinned by the golden-vector
tests in ``tests/common/test_golden_wire.py``).  Three levels of speedup:

* **value caches** — the encodings of small integers and short strings are
  memoised (placement keys, flags and enumeration values repeat endlessly in
  real batches); both caches are bounded.
* **type-dispatch** — :func:`encode_value` dispatches on ``type(value)``
  through a dict instead of an ``isinstance`` chain, falling back to the
  original chain for subclasses.
* **column codecs** — :meth:`TupleBatch._marshal` detects each column's type
  signature once and runs a compiled per-column encoder: fixed-width columns
  (floats, bools, Nones) are assembled with ``struct`` block packs and strided
  buffer writes in a single pass, variable-width columns through the value
  caches.  Mixed columns fall back to per-value encoding.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Iterable, Sequence

from .errors import ReproError
from .types import Value, VersionedTuple

#: zlib level 1 ≈ "lightweight Zip-based compression".
COMPRESSION_LEVEL = 1

_TAG_NONE = 0
_TAG_BOOL = 1
_TAG_INT = 2
_TAG_FLOAT = 3
_TAG_STR = 4
_TAG_BYTES = 5
_TAG_TUPLE = 6
#: Integers whose two's-complement encoding exceeds 255 bytes (≈ ±2**2035).
#: ``_TAG_INT`` carries a one-byte length, which such values overflow — they
#: were unencodable before this tag existed, so adding it changes no wire
#: bytes for previously-encodable values.
_TAG_BIGINT = 7

_U32 = struct.Struct(">I")
_FLOAT_VALUE = struct.Struct(">Bd")

_NONE_BYTES = bytes([_TAG_NONE])
_BOOL_TRUE = bytes([_TAG_BOOL, 1])
_BOOL_FALSE = bytes([_TAG_BOOL, 0])
_FLOAT_TAG = bytes([_TAG_FLOAT])
_STR_TAG = bytes([_TAG_STR])
_BYTES_TAG = bytes([_TAG_BYTES])
_TUPLE_TAG = bytes([_TAG_TUPLE])
_BIGINT_TAG = bytes([_TAG_BIGINT])

#: Bounded memo of small-integer encodings.  Insert-only with a hard cap:
#: placement keys and enumeration values revisit a working set far smaller
#: than the cap, so eviction machinery would cost more than it saves.
_INT_CACHE: dict[int, bytes] = {}
_INT_CACHE_MAX = 1 << 16
#: Bounded memo of short-string encodings (flags, status codes, city names).
_STR_CACHE: dict[str, bytes] = {}
_STR_CACHE_MAX = 1 << 16
_STR_CACHE_MAX_LENGTH = 64
#: Bounded memo of encoded attribute-name headers, one per schema signature.
_HEADER_CACHE: dict[tuple[str, ...], bytes] = {}
_HEADER_CACHE_MAX = 1 << 10


class SerializationError(ReproError):
    """Raised when a value cannot be encoded or a payload cannot be decoded."""


def _encode_int(value: int) -> bytes:
    encoded = _INT_CACHE.get(value)
    if encoded is None:
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        length = len(raw)
        if length > 255:
            return _BIGINT_TAG + _U32.pack(length) + raw
        encoded = bytes((_TAG_INT, length)) + raw
        # Only narrow integers enter the memo: they are the repeating
        # population (keys, quantities, flags); wide randoms would flush it.
        if length <= 5 and len(_INT_CACHE) < _INT_CACHE_MAX:
            _INT_CACHE[value] = encoded
    return encoded


def _encode_str(value: str) -> bytes:
    encoded = _STR_CACHE.get(value)
    if encoded is None:
        raw = value.encode("utf-8")
        encoded = _STR_TAG + _U32.pack(len(raw)) + raw
        if len(value) <= _STR_CACHE_MAX_LENGTH and len(_STR_CACHE) < _STR_CACHE_MAX:
            _STR_CACHE[value] = encoded
    return encoded


def _encode_float(value: float) -> bytes:
    return _FLOAT_VALUE.pack(_TAG_FLOAT, value)


def _encode_bool(value: bool) -> bytes:
    return _BOOL_TRUE if value else _BOOL_FALSE


def _encode_bytes(value: bytes) -> bytes:
    return _BYTES_TAG + _U32.pack(len(value)) + value


def _encode_tuple(value: tuple) -> bytes:
    parts = [_TUPLE_TAG, _U32.pack(len(value))]
    parts.extend(map(encode_value, value))
    return b"".join(parts)


#: Exact-type dispatch for the common case; subclasses (IntEnum and friends)
#: fall through to the original isinstance chain below.
_ENCODERS: dict[type, Callable] = {
    bool: _encode_bool,
    int: _encode_int,
    float: _encode_float,
    str: _encode_str,
    bytes: _encode_bytes,
    tuple: _encode_tuple,
}


def encode_value(value: Value) -> bytes:
    """Encode a single value with a one-byte type tag."""
    if value is None:
        return _NONE_BYTES
    encoder = _ENCODERS.get(type(value))
    if encoder is not None:
        return encoder(value)
    # Subclass fallback: the original isinstance chain, in the original order
    # (bool before int — bool is an int subclass).
    if isinstance(value, bool):
        return _encode_bool(value)
    if isinstance(value, int):
        return _encode_int(value)
    if isinstance(value, float):
        return _encode_float(value)
    if isinstance(value, str):
        return _encode_str(value)
    if isinstance(value, bytes):
        return _encode_bytes(value)
    if isinstance(value, tuple):
        return _encode_tuple(value)
    raise SerializationError(f"cannot serialize value of type {type(value).__name__}")


def decode_value(payload: bytes, offset: int = 0) -> tuple[Value, int]:
    """Decode one value starting at ``offset``; returns ``(value, next_offset)``.

    Tags are tested hottest-first (ints, floats and strings dominate real
    batches); the ordering is invisible on the wire — tags are mutually
    exclusive.
    """
    if offset >= len(payload):
        raise SerializationError("truncated payload")
    tag = payload[offset]
    offset += 1
    if tag == _TAG_INT:
        length = payload[offset]
        offset += 1
        raw = payload[offset : offset + length]
        return int.from_bytes(raw, "big", signed=True), offset + length
    if tag == _TAG_FLOAT:
        (value,) = struct.unpack_from(">d", payload, offset)
        return value, offset + 8
    if tag == _TAG_STR:
        (length,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        raw = payload[offset : offset + length]
        return raw.decode("utf-8"), offset + length
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_BOOL:
        return bool(payload[offset]), offset + 1
    if tag == _TAG_BIGINT:
        (length,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        raw = payload[offset : offset + length]
        return int.from_bytes(raw, "big", signed=True), offset + length
    if tag == _TAG_BYTES:
        (length,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        return bytes(payload[offset : offset + length]), offset + length
    if tag == _TAG_TUPLE:
        (count,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        items = []
        for _ in range(count):
            item, offset = decode_value(payload, offset)
            items.append(item)
        return tuple(items), offset
    raise SerializationError(f"unknown type tag {tag}")


def encode_values(values: Sequence[Value]) -> bytes:
    """Encode a value tuple (row) as a length-prefixed sequence."""
    parts = [_U32.pack(len(values))]
    append = parts.append
    encoders = _ENCODERS
    for value in values:
        if value is None:
            append(_NONE_BYTES)
            continue
        encoder = encoders.get(type(value))
        append(encoder(value) if encoder is not None else encode_value(value))
    return b"".join(parts)


def decode_values(payload: bytes, offset: int = 0) -> tuple[tuple[Value, ...], int]:
    (count,) = struct.unpack_from(">I", payload, offset)
    offset += 4
    values = []
    append = values.append
    for _ in range(count):
        value, offset = decode_value(payload, offset)
        append(value)
    return tuple(values), offset


# ---------------------------------------------------------------------------
# Column codecs: compiled per column-type signature
# ---------------------------------------------------------------------------


@lru_cache(maxsize=1024)
def _float_block(count: int) -> struct.Struct:
    """Block pack for ``count`` untagged big-endian doubles."""
    return struct.Struct(f">{count}d")


def _encode_float_column(column: Sequence[float]) -> bytes:
    """Single-pass assembly of a float column: one block pack, then strided
    writes interleave the type tags — no per-value Python calls at all."""
    count = len(column)
    packed = _float_block(count).pack(*column)
    buffer = bytearray(9 * count)
    buffer[0::9] = _FLOAT_TAG * count
    for byte_index in range(8):
        buffer[1 + byte_index :: 9] = packed[byte_index::8]
    return bytes(buffer)


def _encode_bool_column(column: Sequence[bool]) -> bytes:
    return b"".join([_BOOL_TRUE if value else _BOOL_FALSE for value in column])


def _encode_none_column(column: Sequence[None]) -> bytes:
    return _NONE_BYTES * len(column)


def _encode_int_column(column: Sequence[int]) -> bytes:
    cache_get = _INT_CACHE.get
    parts = []
    append = parts.append
    for value in column:
        encoded = cache_get(value)
        if encoded is None:
            encoded = _encode_int(value)
        append(encoded)
    return b"".join(parts)


def _encode_str_column(column: Sequence[str]) -> bytes:
    # Inlined cache loop: one function call per *miss* instead of per value.
    cache_get = _STR_CACHE.get
    cache = _STR_CACHE
    pack = _U32.pack
    tag = _STR_TAG
    parts = []
    append = parts.append
    for value in column:
        encoded = cache_get(value)
        if encoded is None:
            raw = value.encode("utf-8")
            encoded = tag + pack(len(raw)) + raw
            if len(value) <= _STR_CACHE_MAX_LENGTH and len(cache) < _STR_CACHE_MAX:
                cache[value] = encoded
        append(encoded)
    return b"".join(parts)


#: Compiled encoder per homogeneous column-type signature.
_COLUMN_CODECS: dict[type, Callable] = {
    float: _encode_float_column,
    int: _encode_int_column,
    str: _encode_str_column,
    bool: _encode_bool_column,
    type(None): _encode_none_column,
}


def _encode_column(column: Sequence[Value]) -> bytes:
    """Encode one column, dispatching on its type signature.

    ``set(map(type, column))`` is a C-level pass; when the signature is a
    single exact type the compiled codec runs, otherwise (mixed columns,
    subclasses, nested tuples) each value goes through :func:`encode_value`,
    which produces the identical bytes.
    """
    signature = set(map(type, column))
    if len(signature) == 1:
        codec = _COLUMN_CODECS.get(signature.pop())
        if codec is not None:
            return codec(column)
    return b"".join(map(encode_value, column))


@dataclass
class TupleBatch:
    """A destination-addressed batch of rows sharing a single attribute list.

    The batch records both the uncompressed and compressed payload sizes.  The
    networking layer uses :attr:`wire_size` (compressed, plus a small framing
    header) when charging bandwidth and accounting traffic, matching the
    paper's use of compressed batches on the wire.
    """

    attributes: tuple[str, ...]
    rows: list[tuple[Value, ...]]
    raw_size: int
    compressed_size: int

    HEADER_BYTES = 24  # destination, batch id, attribute digest, lengths

    @classmethod
    def build(cls, attributes: Sequence[str], rows: Iterable[Sequence[Value]]) -> "TupleBatch":
        rows = [tuple(r) for r in rows]
        payload = cls._marshal(attributes, rows)
        compressed = zlib.compress(payload, COMPRESSION_LEVEL)
        return cls(
            attributes=tuple(attributes),
            rows=rows,
            raw_size=len(payload),
            compressed_size=len(compressed),
        )

    @staticmethod
    def _marshal(attributes: Sequence[str], rows: Sequence[tuple[Value, ...]]) -> bytes:
        """Column-wise marshalling: values of the same attribute are adjacent.

        Grouping a column's values together is what lets the compressor
        exploit commonality between tuples (repeated prefixes, small numeric
        deltas), as the paper's marshalling format does.  Columns are
        transposed in one C-level ``zip`` and encoded by the compiled column
        codecs above; the output is byte-identical to per-value encoding.
        """
        arity = len(attributes)
        attribute_key = tuple(attributes)
        header = _HEADER_CACHE.get(attribute_key)
        if header is None:
            header_parts = []
            for name in attributes:
                encoded = name.encode("utf-8")
                header_parts.append(struct.pack(">H", len(encoded)))
                header_parts.append(encoded)
            header = b"".join(header_parts)
            if len(_HEADER_CACHE) < _HEADER_CACHE_MAX:
                _HEADER_CACHE[attribute_key] = header
        parts = [struct.pack(">II", arity, len(rows)), header]
        if rows:
            if all(len(row) == arity for row in rows):
                columns: Iterable[Sequence[Value]] = zip(*rows)
            elif all(len(row) >= arity for row in rows):
                columns = (
                    tuple(row[index] for row in rows) for index in range(arity)
                )
            else:
                # Malformed (short) rows: keep the original per-value loop so
                # the same IndexError surfaces.
                for column_index in range(arity):
                    for row in rows:
                        parts.append(encode_value(row[column_index]))
                return b"".join(parts)
            for column in columns:
                parts.append(_encode_column(column))
        return b"".join(parts)

    @classmethod
    def unmarshal(cls, payload: bytes) -> "TupleBatch":
        """Rebuild a batch from a compressed payload (used in round-trip tests)."""
        raw = zlib.decompress(payload)
        arity, count = struct.unpack_from(">II", raw, 0)
        offset = 8
        attributes = []
        for _ in range(arity):
            (length,) = struct.unpack_from(">H", raw, offset)
            offset += 2
            attributes.append(raw[offset : offset + length].decode("utf-8"))
            offset += length
        columns: list[list[Value]] = []
        for _ in range(arity):
            column, offset = _decode_column(raw, offset, count)
            columns.append(column)
        rows = list(zip(*columns)) if columns else [() for _ in range(count)]
        return cls(
            attributes=tuple(attributes),
            rows=rows,
            raw_size=len(raw),
            compressed_size=len(payload),
        )

    def compressed_payload(self) -> bytes:
        return zlib.compress(self._marshal(self.attributes, self.rows), COMPRESSION_LEVEL)

    @property
    def wire_size(self) -> int:
        """Bytes this batch occupies on the (simulated) wire."""
        return self.compressed_size + self.HEADER_BYTES

    def __len__(self) -> int:
        return len(self.rows)


# ---------------------------------------------------------------------------
# Encoded columns: dictionary / run-length / frame-of-reference / raw fallback
# ---------------------------------------------------------------------------
#
# Section V-A's marshalling format "exploits commonalities" between tuples;
# the codecs below push that further with the classic lightweight column
# encodings.  Each codec tag extends the value-tag namespace above (tags 8-11
# never appear inside a value stream, so the existing golden vectors are
# untouched).  Batches stay encoded on the wire and in the scan cache, and
# pushed predicates are evaluated against dictionary codes, run values, or
# frame-of-reference bounds *before* any value is materialised — decode
# happens only for surviving positions, and the counters in
# :data:`ENCODING_STATS` prove it.

_TAG_DICT = 8
_TAG_RLE = 9
_TAG_FOR = 10
_TAG_RAWCOL = 11

#: Human-readable codec names for the ``page.encoded_bytes{codec=…}`` metrics.
CODEC_NAMES = {
    _TAG_DICT: "dict",
    _TAG_RLE: "rle",
    _TAG_FOR: "for",
    _TAG_RAWCOL: "raw",
}

#: A dictionary column past this many distinct values stops paying for itself.
_DICT_MAX_DISTINCT = 4096

# Compact per-codec headers.  The batch header already carries the row count,
# so no codec repeats it; every payload is self-delimiting given the count.
_DICT_HEADER = struct.Struct(">BH")  # code width, dictionary size
_RLE_HEADER = struct.Struct(">I")  # run count
_RLE_RUN = struct.Struct(">H")  # run length (runs are split at 65535)
_RLE_MAX_RUN = 0xFFFF
_FOR_WIDTH_FORMATS = {1: "B", 2: "H", 4: "I", 8: "Q"}


class EncodingStats:
    """Process-wide instrumentation for the encoding pipeline.

    ``encoded_bytes`` feeds the ``page.encoded_bytes{codec=…}`` counters;
    the decode counters exist so tests can prove that predicate evaluation
    over encoded data never materialises values of a non-surviving batch.
    """

    __slots__ = (
        "batches_encoded",
        "encoded_bytes",
        "columns_decoded",
        "values_decoded",
        "batches_decoded",
        "batches_skipped",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.batches_encoded = 0
        self.encoded_bytes = {name: 0 for name in CODEC_NAMES.values()}
        self.columns_decoded = 0
        self.values_decoded = 0
        self.batches_decoded = 0
        self.batches_skipped = 0

    def snapshot(self) -> dict:
        return {
            "batches_encoded": self.batches_encoded,
            "encoded_bytes": dict(self.encoded_bytes),
            "columns_decoded": self.columns_decoded,
            "values_decoded": self.values_decoded,
            "batches_decoded": self.batches_decoded,
            "batches_skipped": self.batches_skipped,
        }


#: Module-level singleton, like the value caches above: encoding is a
#: process-wide concern and the observability layer reads deltas.
ENCODING_STATS = EncodingStats()


def _distinct_key(value: Value):
    """Hashable identity that keeps equal-comparing but distinct values apart.

    A plain ``(type, value)`` key would collapse ``0.0`` and ``-0.0`` (same
    type, equal, same hash) and a bare value would collapse ``1``/``1.0``/
    ``True``; decoding must restore the *exact* stored value, so floats and
    tuples key on their repr (the same trick the page-pruning hash variants
    use).
    """
    kind = type(value)
    if kind is float or kind is tuple:
        return (kind, repr(value))
    return (kind, value)


class EncodedColumn:
    """Base class of the per-column encodings.

    Subclasses expose three capabilities: ``payload()`` (deterministic wire
    bytes under the codec's tag), ``decode()``/``decode_positions()``
    (materialise values, bumping the decode counters), and the predicate
    hooks ``match_positions()``/``min_max()`` that evaluate over the encoded
    form without materialising anything.
    """

    __slots__ = ("count",)
    tag = -1

    def payload(self) -> bytes:
        raise NotImplementedError

    def decode(self) -> list:
        raise NotImplementedError

    def decode_positions(self, positions: Sequence[int]) -> list:
        raise NotImplementedError

    def match_positions(self, test: Callable[[Value], bool]) -> "list[int] | None":
        """Positions whose value satisfies ``test``; None = undecidable."""
        return None

    def min_max(self) -> "tuple[Value, Value] | None":
        """(lo, hi) bounds when the column is provably ordered; else None."""
        return None

    def _count_decode(self, values_out: int) -> None:
        stats = ENCODING_STATS
        stats.columns_decoded += 1
        stats.values_decoded += values_out


def _comparable_bounds(values: Iterable[Value]) -> "tuple[Value, Value] | None":
    """min/max over ``values`` when they are one orderable exact type."""
    values = list(values)
    if not values:
        return None
    kind = type(values[0])
    if kind not in (int, float, str) or any(type(v) is not kind for v in values):
        return None
    if kind is float and any(v != v for v in values):
        # NaN poisons min()/max() (order-dependent results), and a NaN row
        # still matches ``!=`` — finite bounds over it would be unsound.
        return None
    return min(values), max(values)


class DictColumn(EncodedColumn):
    """Dictionary encoding: distinct values once, then fixed-width codes."""

    __slots__ = ("dictionary", "codes", "code_width")
    tag = _TAG_DICT

    def __init__(self, count: int, dictionary: tuple, codes: bytes, code_width: int):
        self.count = count
        self.dictionary = dictionary
        self.codes = codes
        self.code_width = code_width

    def payload(self) -> bytes:
        parts = [_DICT_HEADER.pack(self.code_width, len(self.dictionary))]
        parts.extend(encode_value(value) for value in self.dictionary)
        parts.append(self.codes)
        return b"".join(parts)

    def _code_iter(self):
        if self.code_width == 1:
            return iter(self.codes)
        codes = self.codes
        return (
            (codes[i] << 8) | codes[i + 1] for i in range(0, 2 * self.count, 2)
        )

    def decode(self) -> list:
        self._count_decode(self.count)
        dictionary = self.dictionary
        return [dictionary[code] for code in self._code_iter()]

    def decode_positions(self, positions: Sequence[int]) -> list:
        self._count_decode(len(positions))
        dictionary = self.dictionary
        if self.code_width == 1:
            codes = self.codes
            return [dictionary[codes[i]] for i in positions]
        codes = self.codes
        return [
            dictionary[(codes[2 * i] << 8) | codes[2 * i + 1]] for i in positions
        ]

    def match_positions(self, test: Callable[[Value], bool]) -> "list[int] | None":
        # Translate the predicate once, against the dictionary, then compare
        # codes — the column's values are never materialised.
        matching = {
            code for code, value in enumerate(self.dictionary) if test(value)
        }
        if not matching:
            return []
        if len(matching) == len(self.dictionary):
            return list(range(self.count))
        return [i for i, code in enumerate(self._code_iter()) if code in matching]

    def min_max(self):
        return _comparable_bounds(self.dictionary)


class RleColumn(EncodedColumn):
    """Run-length encoding: (value, run length) pairs."""

    __slots__ = ("runs",)
    tag = _TAG_RLE

    def __init__(self, count: int, runs: tuple):
        self.count = count
        self.runs = runs  # tuple of (value, length)

    def payload(self) -> bytes:
        parts = [_RLE_HEADER.pack(len(self.runs))]
        for value, length in self.runs:
            parts.append(encode_value(value))
            parts.append(_RLE_RUN.pack(length))
        return b"".join(parts)

    def decode(self) -> list:
        self._count_decode(self.count)
        values: list = []
        for value, length in self.runs:
            values.extend([value] * length)
        return values

    def decode_positions(self, positions: Sequence[int]) -> list:
        self._count_decode(len(positions))
        # Positions arrive sorted (they come from match/filter scans), so one
        # forward walk over the runs covers them all.
        values: list = []
        run_index = 0
        run_end = self.runs[0][1] if self.runs else 0
        for position in positions:
            while position >= run_end:
                run_index += 1
                run_end += self.runs[run_index][1]
            values.append(self.runs[run_index][0])
        return values

    def match_positions(self, test: Callable[[Value], bool]) -> "list[int] | None":
        # One evaluation per *run*: a failing run is skipped wholesale.
        positions: list[int] = []
        offset = 0
        for value, length in self.runs:
            if test(value):
                positions.extend(range(offset, offset + length))
            offset += length
        return positions

    def min_max(self):
        return _comparable_bounds(value for value, _ in self.runs)


class ForColumn(EncodedColumn):
    """Frame-of-reference: base + fixed-width unsigned deltas.

    ``scale == 0`` is the plain integer form.  A non-zero scale is the
    scaled-decimal variant for columns of floats with a fixed number of
    decimal places (prices, rates, balances): each value is stored as the
    integer ``value * 10**scale`` and decoded by dividing back.  The encoder
    only picks this form after verifying every value round-trips *exactly*
    (value and repr), so decode is bit-faithful.
    """

    __slots__ = ("base", "delta_width", "deltas", "hi", "scale")
    tag = _TAG_FOR

    def __init__(
        self,
        count: int,
        base: int,
        delta_width: int,
        deltas: bytes,
        hi: int,
        scale: int = 0,
    ):
        self.count = count
        self.base = base
        self.delta_width = delta_width
        self.deltas = deltas
        self.hi = hi
        self.scale = scale

    def payload(self) -> bytes:
        # Width fits a nibble (1/2/4/8), so the scale rides in the high one.
        header = self.delta_width | (self.scale << 4)
        return bytes((header,)) + encode_value(self.base) + self.deltas

    def _delta_struct(self) -> struct.Struct:
        return struct.Struct(f">{self.count}{_FOR_WIDTH_FORMATS[self.delta_width]}")

    def _materialise(self, scaled: int) -> Value:
        if self.scale:
            return scaled / (10.0 ** self.scale)
        return scaled

    def decode(self) -> list:
        self._count_decode(self.count)
        base = self.base
        if self.scale:
            divisor = 10.0 ** self.scale
            return [
                (base + delta) / divisor
                for delta in self._delta_struct().unpack(self.deltas)
            ]
        return [base + delta for delta in self._delta_struct().unpack(self.deltas)]

    def decode_positions(self, positions: Sequence[int]) -> list:
        self._count_decode(len(positions))
        base = self.base
        width = self.delta_width
        deltas = self.deltas
        from_bytes = int.from_bytes
        scaled = [
            base + from_bytes(deltas[i * width : (i + 1) * width], "big")
            for i in positions
        ]
        if self.scale:
            divisor = 10.0 ** self.scale
            return [value / divisor for value in scaled]
        return scaled

    def match_positions(self, test: Callable[[Value], bool]) -> "list[int] | None":
        base = self.base
        materialise = self._materialise
        return [
            i
            for i, delta in enumerate(self._delta_struct().unpack(self.deltas))
            if test(materialise(base + delta))
        ]

    def min_max(self):
        return self._materialise(self.base), self._materialise(self.hi)


class RawColumn(EncodedColumn):
    """Fallback: the plain tagged-value column encoding (byte-identical to
    :func:`_encode_column`), with the values kept alongside for free decode."""

    __slots__ = ("values", "_payload")
    tag = _TAG_RAWCOL

    def __init__(self, values: tuple, payload: bytes):
        self.count = len(values)
        self.values = values
        self._payload = payload

    def payload(self) -> bytes:
        return self._payload

    def decode(self) -> list:
        self._count_decode(self.count)
        return list(self.values)

    def decode_positions(self, positions: Sequence[int]) -> list:
        self._count_decode(len(positions))
        values = self.values
        return [values[i] for i in positions]


def encode_column_values(column: Sequence[Value]) -> EncodedColumn:
    """Encode one column, choosing the cheapest codec by exact payload size.

    One pass collects runs and the distinct-value dictionary; each candidate
    codec's payload size is then computed exactly (distinct values go through
    the memoised :func:`encode_value`, so the sizing pass is cheap) and the
    smallest wins, with the raw tagged encoding as the fallback.  The choice
    is fully deterministic: first-occurrence dictionary order, fixed
    comparison order, no hashing of values.
    """
    count = len(column)
    raw_payload = _encode_column(column)
    best_size = len(raw_payload)
    best_tag = _TAG_RAWCOL
    if count >= 4:
        runs: list = []
        distinct: dict = {}
        distinct_values: list = []
        previous_key = None
        for value in column:
            key = _distinct_key(value)
            if runs and key == previous_key and runs[-1][1] < _RLE_MAX_RUN:
                runs[-1][1] += 1
            else:
                runs.append([value, 1])
                previous_key = key
            if distinct is not None and key not in distinct:
                if len(distinct) >= _DICT_MAX_DISTINCT:
                    distinct = None
                else:
                    distinct[key] = len(distinct)
                    distinct_values.append(value)

        # Frame-of-reference: int-only columns (bool is an int subclass but
        # decodes distinctly, so exact-type only) with an int64 base, or
        # float columns that are exactly fixed-point decimals (scale 2 —
        # prices, rates, balances), verified value-by-value before use.
        for_fields = None
        scaled_column: "list[int] | None" = None
        for_scale = 0
        if all(type(value) is int for value in column):
            scaled_column = list(column)
        elif all(type(value) is float for value in column):
            scaled = []
            for value in column:
                if value != value or value in (float("inf"), float("-inf")):
                    scaled = None
                    break
                as_int = int(round(value * 100))
                if as_int / 100.0 != value or repr(as_int / 100.0) != repr(value):
                    scaled = None
                    break
                scaled.append(as_int)
            if scaled is not None:
                scaled_column = scaled
                for_scale = 2
        if scaled_column is not None:
            lo = min(scaled_column)
            hi = max(scaled_column)
            span = hi - lo
            if -(1 << 63) <= lo < (1 << 63) and span < (1 << 64):
                if span <= 0xFF:
                    width = 1
                elif span <= 0xFFFF:
                    width = 2
                elif span <= 0xFFFFFFFF:
                    width = 4
                else:
                    width = 8
                for_size = 1 + len(encode_value(lo)) + width * count
                if for_size < best_size:
                    best_size = for_size
                    best_tag = _TAG_FOR
                    for_fields = (lo, hi, width)

        dict_fields = None
        if distinct:
            code_width = 1 if len(distinct) <= 256 else 2
            dict_size = (
                _DICT_HEADER.size
                + sum(len(encode_value(value)) for value in distinct_values)
                + code_width * count
            )
            if dict_size < best_size:
                best_size = dict_size
                best_tag = _TAG_DICT
                dict_fields = code_width

        rle_size = _RLE_HEADER.size + sum(
            len(encode_value(value)) + _RLE_RUN.size for value, _ in runs
        )
        if rle_size < best_size:
            best_size = rle_size
            best_tag = _TAG_RLE

        if best_tag == _TAG_RLE:
            return RleColumn(count, tuple((value, length) for value, length in runs))
        if best_tag == _TAG_DICT:
            dictionary = tuple(distinct_values)
            codes_map = distinct
            if dict_fields == 1:
                codes = bytes(codes_map[_distinct_key(value)] for value in column)
            else:
                packed = bytearray()
                for value in column:
                    code = codes_map[_distinct_key(value)]
                    packed.append(code >> 8)
                    packed.append(code & 0xFF)
                codes = bytes(packed)
            return DictColumn(count, dictionary, codes, dict_fields)
        if best_tag == _TAG_FOR:
            lo, hi, width = for_fields
            deltas = struct.pack(
                f">{count}{_FOR_WIDTH_FORMATS[width]}",
                *[value - lo for value in scaled_column],
            )
            return ForColumn(count, lo, width, deltas, hi, for_scale)
    return RawColumn(tuple(column), raw_payload)


def _unmarshal_encoded_column(
    payload: bytes, offset: int, count: int
) -> tuple[EncodedColumn, int]:
    """Parse one tagged codec payload in place.

    There is no per-column length prefix: the batch header's row count plus
    each codec's compact header fully delimit the payload, which keeps the
    per-column framing to the single tag byte.
    """
    tag = payload[offset]
    at = offset + 1
    if tag == _TAG_DICT:
        code_width, dict_size = _DICT_HEADER.unpack_from(payload, at)
        at += _DICT_HEADER.size
        dictionary = []
        for _ in range(dict_size):
            value, at = decode_value(payload, at)
            dictionary.append(value)
        end = at + code_width * count
        codes = payload[at:end]
        return DictColumn(count, tuple(dictionary), codes, code_width), end
    if tag == _TAG_RLE:
        (run_count,) = _RLE_HEADER.unpack_from(payload, at)
        at += _RLE_HEADER.size
        runs = []
        for _ in range(run_count):
            value, at = decode_value(payload, at)
            (run_length,) = _RLE_RUN.unpack_from(payload, at)
            at += _RLE_RUN.size
            runs.append((value, run_length))
        return RleColumn(count, tuple(runs)), at
    if tag == _TAG_FOR:
        header = payload[at]
        width = header & 0x0F
        scale = header >> 4
        base, at = decode_value(payload, at + 1)
        end = at + width * count
        deltas = payload[at:end]
        hi = base
        if count:
            hi = base + max(
                struct.unpack(f">{count}{_FOR_WIDTH_FORMATS[width]}", deltas)
            )
        return ForColumn(count, base, width, deltas, hi, scale), end
    if tag == _TAG_RAWCOL:
        values, end = _decode_column(payload, offset + 1, count)
        return RawColumn(tuple(values), payload[offset + 1 : end]), end
    raise SerializationError(f"unknown column codec tag {tag}")


@dataclass
class EncodedTupleBatch:
    """A batch whose columns stay individually encoded.

    Same framing roles as :class:`TupleBatch` — the networking layer charges
    :attr:`wire_size` (compressed marshal plus framing header) — but each
    column carries its own codec tag, and consumers decode only the columns
    (and positions) they actually touch.

    The marshal is deliberately leaner than :class:`TupleBatch`'s self-
    describing format: exchange schemas are fixed by the disseminated plan,
    so the receiver resolves attribute names from the framing header's
    attribute digest (already part of ``HEADER_BYTES``) instead of reading
    them from every batch, and each column is framed by its single tag byte
    (codec payloads are self-delimiting given the row count).  Batches that
    zlib cannot shrink ship the marshal as-is — the compressor only pays for
    itself on larger runs, and small encoded payloads are near-entropy
    already.
    """

    attributes: tuple[str, ...]
    columns: tuple[EncodedColumn, ...]
    count: int
    raw_size: int
    compressed_size: int

    # Destination, batch id, attribute digest.  The raw format's header also
    # carries explicit payload-length words; the encoded marshal does not
    # need them (codec payloads are self-delimiting and the message envelope
    # carries the total), so the framing charge is 16 bytes, not 24.
    HEADER_BYTES = 16

    @classmethod
    def build(
        cls, attributes: Sequence[str], rows: Iterable[Sequence[Value]]
    ) -> "EncodedTupleBatch":
        rows = [tuple(r) for r in rows]
        arity = len(attributes)
        count = len(rows)
        if rows and arity:
            if all(len(row) == arity for row in rows):
                transposed: Iterable[Sequence[Value]] = zip(*rows)
            else:
                transposed = (
                    tuple(row[index] for row in rows) for index in range(arity)
                )
            columns = tuple(encode_column_values(list(c)) for c in transposed)
        else:
            # A zero-row batch still marshals one (empty) column per
            # attribute: the header's arity drives unmarshalling.
            columns = tuple(encode_column_values([]) for _ in range(arity))
        batch = cls(
            attributes=tuple(attributes),
            columns=columns,
            count=count,
            raw_size=0,
            compressed_size=0,
        )
        payload = batch.marshal()
        compressed = zlib.compress(payload, COMPRESSION_LEVEL)
        batch.raw_size = len(payload)
        batch.compressed_size = min(len(compressed), len(payload))
        stats = ENCODING_STATS
        stats.batches_encoded += 1
        encoded_bytes = stats.encoded_bytes
        for column in columns:
            encoded_bytes[CODEC_NAMES[column.tag]] += len(column.payload())
        return batch

    def marshal(self) -> bytes:
        parts = [struct.pack(">HI", len(self.attributes), self.count)]
        for column in self.columns:
            parts.append(bytes((column.tag,)))
            parts.append(column.payload())
        return b"".join(parts)

    @classmethod
    def unmarshal(
        cls, payload: bytes, attributes: "Sequence[str] | None" = None
    ) -> "EncodedTupleBatch":
        """Rebuild a batch from its wire payload.

        ``attributes`` is the schema the framing header's digest resolves to
        (the exchange operator's output schema); when omitted, positional
        ``c0..cN`` names are synthesised.  The payload may be either the zlib
        stream or — when compression did not pay — the bare marshal; the two
        are distinguishable because a marshal never starts with a valid zlib
        header (its first byte is the arity's high byte, ``0x00``).
        """
        try:
            raw = zlib.decompress(payload)
        except zlib.error:
            raw = payload
        arity, count = struct.unpack_from(">HI", raw, 0)
        offset = 6
        columns = []
        for _ in range(arity):
            column, offset = _unmarshal_encoded_column(raw, offset, count)
            columns.append(column)
        if attributes is None:
            attributes = tuple(f"c{i}" for i in range(arity))
        elif len(attributes) != arity:
            raise SerializationError(
                f"schema arity mismatch: {len(attributes)} names for {arity} columns"
            )
        return cls(
            attributes=tuple(attributes),
            columns=tuple(columns),
            count=count,
            raw_size=len(raw),
            compressed_size=len(payload),
        )

    def compressed_payload(self) -> bytes:
        payload = self.marshal()
        compressed = zlib.compress(payload, COMPRESSION_LEVEL)
        return compressed if len(compressed) < len(payload) else payload

    @property
    def wire_size(self) -> int:
        return self.compressed_size + self.HEADER_BYTES

    def decode_rows(self) -> list[tuple]:
        """Materialise every row (bumps the batch decode counter)."""
        ENCODING_STATS.batches_decoded += 1
        if not self.columns:
            return [() for _ in range(self.count)]
        return list(zip(*(column.decode() for column in self.columns)))

    def decode_rows_at(self, positions: Sequence[int]) -> list[tuple]:
        """Materialise only the given positions of every column."""
        if not positions:
            return []
        ENCODING_STATS.batches_decoded += 1
        if not self.columns:
            return [() for _ in positions]
        return list(
            zip(*(column.decode_positions(positions) for column in self.columns))
        )

    def __len__(self) -> int:
        return self.count


class EncodedScanBatch:
    """A scan-cache entry: tuple ids plus the values kept columnar-encoded.

    This is the form :class:`~repro.cache.node.NodeCache` stores for page
    tuple batches — the budget is charged on :meth:`stored_size` (the actual
    encoded payload), so effective cache capacity grows with the encoding
    win.  Pushed predicates evaluate against the encoded columns and only
    surviving positions are ever decoded back into
    :class:`~repro.common.types.VersionedTuple` objects.
    """

    __slots__ = ("relation", "tuple_ids", "deleted_positions", "batch")

    ID_BYTES = 24  # matches the tuple-id wire charge used by scan messages

    def __init__(self, relation, tuple_ids, deleted_positions, batch):
        self.relation = relation
        self.tuple_ids = tuple_ids
        self.deleted_positions = deleted_positions
        self.batch = batch

    @classmethod
    def from_tuples(cls, tuples: Sequence[VersionedTuple]) -> "EncodedScanBatch":
        tuples = tuple(tuples)
        relation = tuples[0].relation if tuples else ""
        tuple_ids = tuple(t.tuple_id for t in tuples)
        deleted = frozenset(i for i, t in enumerate(tuples) if t.deleted)
        arity = max((len(t.values) for t in tuples), default=0)
        attributes = tuple(f"c{i}" for i in range(arity))
        batch = EncodedTupleBatch.build(attributes, [t.values for t in tuples])
        return cls(relation, tuple_ids, deleted, batch)

    def stored_size(self) -> int:
        return 64 + self.ID_BYTES * len(self.tuple_ids) + self.batch.compressed_size

    def decode_tuples(self) -> list[VersionedTuple]:
        rows = self.batch.decode_rows()
        deleted = self.deleted_positions
        return [
            VersionedTuple(self.relation, tuple_id, row, deleted=index in deleted)
            for index, (tuple_id, row) in enumerate(zip(self.tuple_ids, rows))
        ]

    def decode_tuples_at(self, positions: Sequence[int]) -> list[VersionedTuple]:
        rows = self.batch.decode_rows_at(positions)
        deleted = self.deleted_positions
        return [
            VersionedTuple(self.relation, self.tuple_ids[i], row, deleted=i in deleted)
            for i, row in zip(positions, rows)
        ]

    def __len__(self) -> int:
        return len(self.tuple_ids)


def _decode_column(payload: bytes, offset: int, count: int) -> tuple[list[Value], int]:
    """Decode ``count`` values with the common tags inlined (no per-value
    function call for ints, floats and strings).  A column that is entirely
    floats — the common case for measures — is detected with one strided tag
    check and decoded with a single block unpack."""
    if count and payload[offset] == _TAG_FLOAT:
        end = offset + 9 * count
        block = payload[offset:end]
        if len(block) == 9 * count and block[0::9] == _FLOAT_TAG * count:
            doubles = bytearray(8 * count)
            for byte_index in range(8):
                doubles[byte_index::8] = block[1 + byte_index :: 9]
            return list(_float_block(count).unpack(doubles)), end
    values: list[Value] = []
    append = values.append
    unpack_float = struct.unpack_from
    for _ in range(count):
        tag = payload[offset]
        if tag == _TAG_INT:
            length = payload[offset + 1]
            end = offset + 2 + length
            append(int.from_bytes(payload[offset + 2 : end], "big", signed=True))
            offset = end
        elif tag == _TAG_FLOAT:
            append(unpack_float(">d", payload, offset + 1)[0])
            offset += 9
        elif tag == _TAG_STR:
            (length,) = unpack_float(">I", payload, offset + 1)
            end = offset + 5 + length
            append(payload[offset + 5 : end].decode("utf-8"))
            offset = end
        else:
            value, offset = decode_value(payload, offset)
            append(value)
    return values, offset
