"""Reference (oracle) query evaluator used by the test suite.

The distributed engine's results are checked against this straightforward
single-process evaluator: it executes a :class:`~repro.query.logical.LogicalQuery`
directly over in-memory :class:`~repro.common.types.RelationData` instances
with no partitioning, no batching and no failure handling.  Any divergence
between the two engines on the same input is a correctness bug in the
distributed engine (or in the optimizer's plan).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..common.errors import PlanError
from ..common.types import RelationData, Row, Value
from .expressions import AggregateSpec
from .logical import (
    LogicalAggregate,
    LogicalJoin,
    LogicalPlan,
    LogicalProject,
    LogicalQuery,
    LogicalScan,
    LogicalSelect,
)


def evaluate_plan(plan: LogicalPlan, relations: Mapping[str, RelationData]) -> list[Row]:
    """Evaluate a logical plan tree, returning rows."""
    if isinstance(plan, LogicalScan):
        data = relations.get(plan.schema.name)
        if data is None:
            raise PlanError(f"reference evaluator has no relation {plan.schema.name!r}")
        return [Row(plan.schema.attributes, values) for values in data.rows]
    if isinstance(plan, LogicalSelect):
        rows = evaluate_plan(plan.child, relations)
        return [row for row in rows if plan.predicate.evaluate(row)]
    if isinstance(plan, LogicalProject):
        rows = evaluate_plan(plan.child, relations)
        attributes = tuple(name for name, _ in plan.outputs)
        return [
            Row(attributes, tuple(expr.evaluate(row) for _name, expr in plan.outputs))
            for row in rows
        ]
    if isinstance(plan, LogicalJoin):
        left_rows = evaluate_plan(plan.left, relations)
        right_rows = evaluate_plan(plan.right, relations)
        index: dict[tuple, list[Row]] = {}
        for row in right_rows:
            key = tuple(row[attr] for attr in plan.right_keys)
            index.setdefault(key, []).append(row)
        output = []
        for row in left_rows:
            key = tuple(row[attr] for attr in plan.left_keys)
            for match in index.get(key, ()):
                output.append(row.concat(match))
        return output
    if isinstance(plan, LogicalAggregate):
        rows = evaluate_plan(plan.child, relations)
        return _aggregate(rows, plan.group_by, plan.aggregates)
    raise PlanError(f"reference evaluator cannot handle {type(plan).__name__}")


def _aggregate(
    rows: Iterable[Row], group_by: Sequence[str], aggregates: Sequence[AggregateSpec]
) -> list[Row]:
    groups: dict[tuple, list[Value]] = {}
    for row in rows:
        key = tuple(row[attr] for attr in group_by)
        states = groups.get(key)
        if states is None:
            states = [spec.function.initial() for spec in aggregates]
            groups[key] = states
        for index, spec in enumerate(aggregates):
            states[index] = spec.function.add(states[index], spec.argument.evaluate(row))
    attributes = tuple(group_by) + tuple(spec.name for spec in aggregates)
    result = []
    for key, states in groups.items():
        values = tuple(key) + tuple(
            spec.function.result(state) for spec, state in zip(aggregates, states)
        )
        result.append(Row(attributes, values))
    return result


def evaluate_query(
    query: LogicalQuery, relations: Mapping[str, RelationData]
) -> list[tuple[Value, ...]]:
    """Evaluate a full query (plan + ordering + limit) to value tuples."""
    rows = evaluate_plan(query.root, relations)
    values = [row.values for row in rows]
    attributes = query.output_attributes()
    if query.order_by:
        for attribute, ascending in reversed(query.order_by):
            index = attributes.index(attribute)
            values = sorted(
                values, key=lambda r: (r[index] is None, r[index]), reverse=not ascending
            )
    if query.limit is not None:
        values = values[: query.limit]
    return list(values)


def normalise(rows: Iterable[Sequence[Value]], float_digits: int = 6) -> list[tuple[Value, ...]]:
    """Canonical form of a result set for order-insensitive comparison.

    Floats are rounded so the distributed engine's different summation order
    does not produce spurious mismatches.
    """
    def canon(value: Value) -> Value:
        if isinstance(value, float):
            return round(value, float_digits)
        return value

    return sorted(tuple(canon(v) for v in row) for row in rows)
