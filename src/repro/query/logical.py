"""Logical query plans (single-block select-project-join-aggregate queries).

The logical plan is the optimizer's input: a relational-algebra tree built
either programmatically (the workloads construct their queries this way) or by
the single-block SQL parser.  Logical plans carry no placement or exchange
information — that is the optimizer's job when it produces a
:class:`~repro.query.physical.PhysicalPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import PlanError
from ..common.types import Schema
from .expressions import AggregateSpec, Column, Expression


class LogicalPlan:
    """Base class for logical plan nodes."""

    def output_attributes(self) -> tuple[str, ...]:
        raise NotImplementedError

    def children(self) -> tuple["LogicalPlan", ...]:
        return ()

    def referenced_relations(self) -> set[str]:
        result: set[str] = set()
        for child in self.children():
            result |= child.referenced_relations()
        return result


@dataclass
class LogicalScan(LogicalPlan):
    """Scan of a stored relation (optionally at an explicit epoch)."""

    schema: Schema
    epoch: int | None = None

    def output_attributes(self) -> tuple[str, ...]:
        return self.schema.attributes

    def referenced_relations(self) -> set[str]:
        return {self.schema.name}

    def __repr__(self) -> str:
        return f"Scan({self.schema.name})"


@dataclass
class LogicalSelect(LogicalPlan):
    """Filter rows with a predicate."""

    child: LogicalPlan
    predicate: Expression

    def output_attributes(self) -> tuple[str, ...]:
        return self.child.output_attributes()

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        return f"Select({self.predicate!r}, {self.child!r})"


@dataclass
class LogicalProject(LogicalPlan):
    """Projection / scalar computation: output columns are named expressions."""

    child: LogicalPlan
    outputs: list[tuple[str, Expression]]

    def output_attributes(self) -> tuple[str, ...]:
        return tuple(name for name, _expr in self.outputs)

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def is_simple_projection(self) -> bool:
        """True when every output is a bare column reference (no computation)."""
        return all(isinstance(expr, Column) for _name, expr in self.outputs)

    def __repr__(self) -> str:
        cols = ", ".join(name for name, _ in self.outputs)
        return f"Project([{cols}], {self.child!r})"


@dataclass
class LogicalJoin(LogicalPlan):
    """Equi-join on one or more attribute pairs."""

    left: LogicalPlan
    right: LogicalPlan
    #: pairs of (left attribute, right attribute)
    condition: list[tuple[str, str]]

    def __post_init__(self) -> None:
        if not self.condition:
            raise PlanError("joins must have at least one equi-join condition")
        left_attrs = set(self.left.output_attributes())
        right_attrs = set(self.right.output_attributes())
        for left_attr, right_attr in self.condition:
            if left_attr not in left_attrs:
                raise PlanError(f"join attribute {left_attr!r} not produced by left input")
            if right_attr not in right_attrs:
                raise PlanError(f"join attribute {right_attr!r} not produced by right input")

    def output_attributes(self) -> tuple[str, ...]:
        return self.left.output_attributes() + self.right.output_attributes()

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    @property
    def left_keys(self) -> tuple[str, ...]:
        return tuple(left for left, _right in self.condition)

    @property
    def right_keys(self) -> tuple[str, ...]:
        return tuple(r for _l, r in self.condition)

    def __repr__(self) -> str:
        cond = ", ".join(f"{left}={right}" for left, right in self.condition)
        return f"Join({cond}, {self.left!r}, {self.right!r})"


@dataclass
class LogicalAggregate(LogicalPlan):
    """Grouping and aggregation (GROUP BY may be empty for scalar aggregates)."""

    child: LogicalPlan
    group_by: list[str]
    aggregates: list[AggregateSpec]
    having: Expression | None = None

    def __post_init__(self) -> None:
        available = set(self.child.output_attributes())
        for attr in self.group_by:
            if attr not in available:
                raise PlanError(f"group-by attribute {attr!r} not produced by input")
        if not self.aggregates and not self.group_by:
            raise PlanError("an aggregate needs group-by attributes or aggregate functions")

    def output_attributes(self) -> tuple[str, ...]:
        return tuple(self.group_by) + tuple(spec.name for spec in self.aggregates)

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        return (
            f"Aggregate(group_by={self.group_by}, "
            f"aggs=[{', '.join(repr(a) for a in self.aggregates)}], {self.child!r})"
        )


@dataclass
class LogicalQuery:
    """A complete single-block query: the plan root plus presentation details."""

    root: LogicalPlan
    order_by: list[tuple[str, bool]] = field(default_factory=list)  # (attribute, ascending)
    limit: int | None = None
    name: str = "query"

    def output_attributes(self) -> tuple[str, ...]:
        return self.root.output_attributes()

    def referenced_relations(self) -> set[str]:
        return self.root.referenced_relations()


def validate_plan(plan: LogicalPlan, catalog: dict[str, Schema] | None = None) -> None:
    """Sanity-check a logical plan (attribute references, known relations)."""
    if isinstance(plan, LogicalScan):
        if catalog is not None and plan.schema.name not in catalog:
            raise PlanError(f"unknown relation {plan.schema.name!r}")
        return
    for child in plan.children():
        validate_plan(child, catalog)
    available: set[str] = set()
    for child in plan.children():
        available |= set(child.output_attributes())
    if isinstance(plan, LogicalSelect):
        missing = plan.predicate.references() - available
        if missing:
            raise PlanError(f"selection references unknown attributes {sorted(missing)}")
    elif isinstance(plan, LogicalProject):
        for _name, expr in plan.outputs:
            missing = expr.references() - available
            if missing:
                raise PlanError(f"projection references unknown attributes {sorted(missing)}")
    elif isinstance(plan, LogicalAggregate):
        for spec in plan.aggregates:
            missing = spec.argument.references() - available
            if missing:
                raise PlanError(
                    f"aggregate {spec.name!r} references unknown attributes {sorted(missing)}"
                )


def relations_in(plan: LogicalPlan) -> list[LogicalScan]:
    """All scans in the plan, left-to-right."""
    if isinstance(plan, LogicalScan):
        return [plan]
    result: list[LogicalScan] = []
    for child in plan.children():
        result.extend(relations_in(child))
    return result
