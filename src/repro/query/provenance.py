"""Provenance (taint) tags and phase counters for incremental recovery.

Section V-D: to make it possible to discard exactly the state that depends on
a failed node, "we tag each tuple in the system with the set of nodes that
have processed it (or any tuple used to create it), and maintain these sets of
nodes as the tuples propagate their way through the operator graph."  Tuples
are additionally stamped with the *phase* of the computation that produced
them (initial execution is phase 0; each incremental-recovery invocation
increments the phase), which lets operators distinguish stale in-flight data
from freshly recomputed results.

:class:`TaggedRow` is the unit that flows between runtime operators: the row
itself, its provenance node-set and its phase.  The module also provides the
helpers used when shipping rows across the network (tags add a small,
measurable overhead to every message — the "overhead of incremental
recomputation" quantified in Section VI-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..common.types import Row, Value, estimate_values_size


@dataclass(slots=True)
class TaggedRow:
    """A row plus its provenance node-set and production phase.

    Slotted and deliberately *not* ``frozen``: one TaggedRow is allocated per
    row per operator hop, and the frozen-dataclass ``__init__`` (one
    ``object.__setattr__`` per field) costs ~3x a plain slotted init on this
    hottest allocation of the engine.  Treat instances as immutable — every
    transformation (``with_node``, ``with_phase``, ``merge``) returns a new
    one — and equality/hashing remain field-based as before.
    """

    row: Row
    nodes: frozenset[str]
    phase: int = 0

    def __hash__(self) -> int:
        return hash((self.row, self.nodes, self.phase))

    def tainted_by(self, failed: Iterable[str]) -> bool:
        """Whether any of ``failed`` contributed to this row."""
        failed_set = failed if isinstance(failed, (set, frozenset)) else set(failed)
        return bool(self.nodes & failed_set)

    def with_node(self, address: str) -> "TaggedRow":
        """The same row after being processed by ``address``."""
        if address in self.nodes:
            return self
        return TaggedRow(self.row, self.nodes | {address}, self.phase)

    def with_phase(self, phase: int) -> "TaggedRow":
        if phase == self.phase:
            return self
        return TaggedRow(self.row, self.nodes, phase)

    def merge(self, other: "TaggedRow", row: Row) -> "TaggedRow":
        """A derived row combining this row and ``other`` (e.g. a join result)."""
        nodes = self.nodes
        other_nodes = other.nodes
        if nodes is not other_nodes and nodes != other_nodes:
            nodes = nodes | other_nodes
        phase = self.phase
        if other.phase > phase:
            phase = other.phase
        return TaggedRow(row, nodes, phase)

    def estimated_size(self, with_provenance: bool = True) -> int:
        """Wire size of the row, optionally including the provenance tag.

        The provenance tag is encoded as a small bitmap over the participating
        nodes (one bit per contributing node, dozens to hundreds of
        participants) plus a phase byte, so it costs only a few bytes per
        tuple; disabling it models running the engine without incremental-
        recovery support (the baseline of the Section VI-E overhead
        experiment).
        """
        base = estimate_values_size(self.row.values)
        if not with_provenance:
            return base
        return base + 2 + (len(self.nodes) + 7) // 8 + 1  # header + bitmap + phase


def tag_rows(
    attributes: Sequence[str],
    value_rows: Iterable[Sequence[Value]],
    node: str,
    phase: int = 0,
) -> list[TaggedRow]:
    """Tag freshly scanned value tuples as originating at ``node``."""
    origin = frozenset({node})
    return [TaggedRow(Row(attributes, values), origin, phase) for values in value_rows]


def untainted(rows: Iterable[TaggedRow], failed: Iterable[str]) -> list[TaggedRow]:
    """The subset of ``rows`` that does not depend on any failed node."""
    failed_set = set(failed)
    return [row for row in rows if not row.tainted_by(failed_set)]


def batch_size(rows: Iterable[TaggedRow], with_provenance: bool = True) -> int:
    """Estimated wire size of a batch of tagged rows."""
    return sum(row.estimated_size(with_provenance) for row in rows)


def provenance_overhead(rows: Iterable[TaggedRow]) -> int:
    """Wire bytes the provenance tags add to a batch.

    Exactly ``batch_size(rows, True) - batch_size(rows, False)`` — header,
    node bitmap and phase byte per row — computed without estimating the
    value payload twice (the hot send path only needs the tag delta on top of
    the real compressed batch size).
    """
    return sum(3 + (len(row.nodes) + 7) // 8 for row in rows)
