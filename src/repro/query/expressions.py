"""Scalar expressions, predicates and aggregate functions.

The query engine evaluates expressions against :class:`~repro.common.types.Row`
objects (attribute-name → value mappings).  Expressions are small immutable
trees built from columns, literals, arithmetic, comparisons, boolean
connectives and scalar functions (string concatenation for the STBenchmark
*Concatenate* scenario, arithmetic for TPC-H aggregates).

Two pieces of analysis live here because the storage and execution layers need
them:

* :func:`split_conjuncts` / :func:`split_sargable` — separate the part of a
  selection predicate that can be evaluated from a tuple's *key attributes
  alone* (a "sargable" predicate in the paper's wording, pushed to the index
  nodes) from the residual part that needs the full tuple (evaluated at the
  data storage nodes or in a Select operator).
* :class:`AggregateFunction` — distributive/algebraic aggregates (SUM, COUNT,
  MIN, MAX, AVG) with explicit partial states so the Aggregate operator can
  re-aggregate partially aggregated intermediate results (Table I).
"""

from __future__ import annotations

import operator as _operator
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..common.errors import ExpressionError
from ..common.types import Row, Value, attribute_index


class Expression(ABC):
    """Base class of all scalar expressions."""

    @abstractmethod
    def evaluate(self, row: Row) -> Value:
        """Value of this expression for ``row``."""

    @abstractmethod
    def references(self) -> frozenset[str]:
        """Names of the attributes this expression reads."""

    # Operator sugar so plans read naturally: col("a") + lit(1), etc.
    def __add__(self, other: "Expression") -> "Expression":
        return Arithmetic("+", self, _coerce(other))

    def __sub__(self, other: "Expression") -> "Expression":
        return Arithmetic("-", self, _coerce(other))

    def __mul__(self, other: "Expression") -> "Expression":
        return Arithmetic("*", self, _coerce(other))

    def __truediv__(self, other: "Expression") -> "Expression":
        return Arithmetic("/", self, _coerce(other))

    def eq(self, other) -> "Comparison":
        return Comparison("=", self, _coerce(other))

    def ne(self, other) -> "Comparison":
        return Comparison("!=", self, _coerce(other))

    def lt(self, other) -> "Comparison":
        return Comparison("<", self, _coerce(other))

    def le(self, other) -> "Comparison":
        return Comparison("<=", self, _coerce(other))

    def gt(self, other) -> "Comparison":
        return Comparison(">", self, _coerce(other))

    def ge(self, other) -> "Comparison":
        return Comparison(">=", self, _coerce(other))


def _coerce(value) -> Expression:
    if isinstance(value, Expression):
        return value
    return Literal(value)


@dataclass(frozen=True)
class Column(Expression):
    """Reference to an attribute of the input row."""

    name: str

    def evaluate(self, row: Row) -> Value:
        try:
            return row[self.name]
        except KeyError:
            raise ExpressionError(f"row has no attribute {self.name!r}") from None

    def references(self) -> frozenset[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Value

    def evaluate(self, row: Row) -> Value:
        return self.value

    def references(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return repr(self.value)


#: C-level comparison functions: one table serves the interpreted, the
#: positional-compiled and the columnar evaluation paths alike.
_COMPARATORS: dict[str, Callable[[Value, Value], bool]] = {
    "=": _operator.eq,
    "!=": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}


@dataclass(frozen=True)
class Comparison(Expression):
    """Binary comparison; NULL (None) operands make the comparison false."""

    operator: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.operator not in _COMPARATORS:
            raise ExpressionError(f"unknown comparison operator {self.operator!r}")

    def evaluate(self, row: Row) -> bool:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return False
        return _COMPARATORS[self.operator](left, right)

    def references(self) -> frozenset[str]:
        return self.left.references() | self.right.references()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.operator} {self.right!r})"


_ARITHMETIC: dict[str, Callable[[Value, Value], Value]] = {
    "+": _operator.add,
    "-": _operator.sub,
    "*": _operator.mul,
    "/": _operator.truediv,
}


@dataclass(frozen=True)
class Arithmetic(Expression):
    """Binary arithmetic; NULL operands propagate NULL."""

    operator: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.operator not in _ARITHMETIC:
            raise ExpressionError(f"unknown arithmetic operator {self.operator!r}")

    def evaluate(self, row: Row) -> Value:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return None
        return _ARITHMETIC[self.operator](left, right)

    def references(self) -> frozenset[str]:
        return self.left.references() | self.right.references()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.operator} {self.right!r})"


@dataclass(frozen=True)
class BooleanOp(Expression):
    """AND / OR over a list of predicates, or NOT over a single one."""

    operator: str  # "and" | "or" | "not"
    operands: tuple[Expression, ...]

    def __init__(self, operator: str, operands: Sequence[Expression]):
        if operator not in ("and", "or", "not"):
            raise ExpressionError(f"unknown boolean operator {operator!r}")
        if operator == "not" and len(operands) != 1:
            raise ExpressionError("NOT takes exactly one operand")
        object.__setattr__(self, "operator", operator)
        object.__setattr__(self, "operands", tuple(operands))

    def evaluate(self, row: Row) -> bool:
        if self.operator == "and":
            return all(op.evaluate(row) for op in self.operands)
        if self.operator == "or":
            return any(op.evaluate(row) for op in self.operands)
        return not self.operands[0].evaluate(row)

    def references(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for op in self.operands:
            result |= op.references()
        return result

    def __repr__(self) -> str:
        if self.operator == "not":
            return f"(not {self.operands[0]!r})"
        joiner = f" {self.operator} "
        return "(" + joiner.join(repr(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class InList(Expression):
    """Membership test ``expr IN (v1, v2, ...)``."""

    operand: Expression
    values: tuple[Value, ...]

    def __init__(self, operand: Expression, values: Iterable[Value]):
        object.__setattr__(self, "operand", operand)
        object.__setattr__(self, "values", tuple(values))

    def evaluate(self, row: Row) -> bool:
        return self.operand.evaluate(row) in self.values

    def references(self) -> frozenset[str]:
        return self.operand.references()

    def __repr__(self) -> str:
        return f"({self.operand!r} in {list(self.values)!r})"


_FUNCTIONS: dict[str, Callable[..., Value]] = {
    "concat": lambda *args: "".join("" if a is None else str(a) for a in args),
    "upper": lambda s: None if s is None else str(s).upper(),
    "lower": lambda s: None if s is None else str(s).lower(),
    "substr": lambda s, start, length=None: None if s is None else (
        str(s)[int(start): int(start) + int(length)] if length is not None else str(s)[int(start):]
    ),
    "abs": lambda x: None if x is None else abs(x),
    "round": lambda x, digits=0: None if x is None else round(x, int(digits)),
}


@dataclass(frozen=True)
class FunctionCall(Expression):
    """Scalar function evaluation (the Compute-function operator's workhorse)."""

    name: str
    arguments: tuple[Expression, ...]

    def __init__(self, name: str, arguments: Sequence[Expression]):
        lowered = name.lower()
        if lowered not in _FUNCTIONS:
            raise ExpressionError(f"unknown scalar function {name!r}")
        object.__setattr__(self, "name", lowered)
        object.__setattr__(self, "arguments", tuple(_coerce(a) for a in arguments))

    def evaluate(self, row: Row) -> Value:
        return _FUNCTIONS[self.name](*(a.evaluate(row) for a in self.arguments))

    def references(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for argument in self.arguments:
            result |= argument.references()
        return result

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.arguments)
        return f"{self.name}({args})"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def col(name: str) -> Column:
    return Column(name)


def lit(value: Value) -> Literal:
    return Literal(value)


def and_(*predicates: Expression) -> Expression:
    flattened = [p for p in predicates if p is not None]
    if not flattened:
        return Literal(True)
    if len(flattened) == 1:
        return flattened[0]
    return BooleanOp("and", flattened)


def or_(*predicates: Expression) -> Expression:
    if not predicates:
        return Literal(False)
    if len(predicates) == 1:
        return predicates[0]
    return BooleanOp("or", predicates)


def not_(predicate: Expression) -> Expression:
    return BooleanOp("not", (predicate,))


def concat(*arguments: Expression) -> FunctionCall:
    return FunctionCall("concat", arguments)


# ---------------------------------------------------------------------------
# Compiled (positional) evaluation
# ---------------------------------------------------------------------------


def compile_expression(
    expression: Expression, attributes: Sequence[str]
) -> Callable[[Sequence[Value]], Value]:
    """Compile ``expression`` into a closure over raw value tuples.

    ``evaluate`` resolves every column reference by name through a
    :class:`~repro.common.types.Row` on every call; the vectorized operators
    instead resolve names to positions *once* per (expression, attribute
    list) and evaluate batches through the returned closure, which reads
    ``values[i]`` directly.  Semantics are identical to ``evaluate`` —
    including NULL propagation, comparison falsity on NULL and the scalar
    function table — and a reference to a missing attribute raises the same
    :class:`ExpressionError`, at call time, as the interpreted path.
    """
    attributes = tuple(attributes)
    return _compile(expression, attribute_index(attributes), attributes)


def _compile(
    expression: Expression,
    index_of: dict[str, int],
    attributes: tuple[str, ...],
) -> Callable[[Sequence[Value]], Value]:
    if isinstance(expression, Column):
        name = expression.name
        position = index_of.get(name)
        if position is None:
            def missing(_values: Sequence[Value]) -> Value:
                raise ExpressionError(f"row has no attribute {name!r}")
            return missing
        return lambda values: values[position]
    if isinstance(expression, Literal):
        constant = expression.value
        return lambda _values: constant
    if isinstance(expression, Comparison):
        left = _compile(expression.left, index_of, attributes)
        right = _compile(expression.right, index_of, attributes)
        compare = _COMPARATORS[expression.operator]

        def run_comparison(values: Sequence[Value]) -> bool:
            a = left(values)
            b = right(values)
            if a is None or b is None:
                return False
            return compare(a, b)

        return run_comparison
    if isinstance(expression, Arithmetic):
        left = _compile(expression.left, index_of, attributes)
        right = _compile(expression.right, index_of, attributes)
        combine = _ARITHMETIC[expression.operator]

        def run_arithmetic(values: Sequence[Value]) -> Value:
            a = left(values)
            b = right(values)
            if a is None or b is None:
                return None
            return combine(a, b)

        return run_arithmetic
    if isinstance(expression, BooleanOp):
        compiled = tuple(_compile(op, index_of, attributes) for op in expression.operands)
        if expression.operator == "and":
            return lambda values: all(f(values) for f in compiled)
        if expression.operator == "or":
            return lambda values: any(f(values) for f in compiled)
        negated = compiled[0]
        return lambda values: not negated(values)
    if isinstance(expression, InList):
        operand = _compile(expression.operand, index_of, attributes)
        members = expression.values
        return lambda values: operand(values) in members
    if isinstance(expression, FunctionCall):
        function = _FUNCTIONS[expression.name]
        arguments = tuple(_compile(a, index_of, attributes) for a in expression.arguments)
        return lambda values: function(*(a(values) for a in arguments))
    # Unknown expression subclass: evaluate through a Row view, preserving
    # whatever semantics the subclass defines.
    def run_fallback(values: Sequence[Value]) -> Value:
        return expression.evaluate(Row(attributes, values))

    return run_fallback


def compile_columnar(
    expression: Expression, attributes: Sequence[str]
) -> Callable[[Sequence[Sequence[Value]], int], list[Value]]:
    """Compile ``expression`` into an evaluator over *column lists*.

    The returned function takes ``(columns, count)`` — one value list per
    input attribute, all of length ``count`` — and returns the expression's
    output column.  Each tree node is one list comprehension over its child
    columns with the C-level ``operator`` functions, so the per-row cost is
    bytecode, not a closure-call chain.  Column references return the input
    column itself (zero per-row work).  Semantics match ``evaluate`` exactly:
    NULL comparisons are false, NULL arithmetic propagates NULL.
    """
    attributes = tuple(attributes)
    return _compile_columnar(expression, attribute_index(attributes), attributes)


def _compile_columnar(
    expression: Expression,
    index_of: dict[str, int],
    attributes: tuple[str, ...],
) -> Callable[[Sequence[Sequence[Value]], int], list[Value]]:
    if isinstance(expression, Column):
        name = expression.name
        position = index_of.get(name)
        if position is None:
            def missing(_columns, _count) -> list[Value]:
                raise ExpressionError(f"row has no attribute {name!r}")
            return missing
        return lambda columns, _count: columns[position]
    if isinstance(expression, Literal):
        constant = expression.value
        return lambda _columns, count: [constant] * count
    if isinstance(expression, Comparison):
        left = _compile_columnar(expression.left, index_of, attributes)
        right = _compile_columnar(expression.right, index_of, attributes)
        compare = _COMPARATORS[expression.operator]
        return lambda columns, count: [
            False if a is None or b is None else compare(a, b)
            for a, b in zip(left(columns, count), right(columns, count))
        ]
    if isinstance(expression, Arithmetic):
        left = _compile_columnar(expression.left, index_of, attributes)
        right = _compile_columnar(expression.right, index_of, attributes)
        combine = _ARITHMETIC[expression.operator]
        return lambda columns, count: [
            None if a is None or b is None else combine(a, b)
            for a, b in zip(left(columns, count), right(columns, count))
        ]
    if isinstance(expression, BooleanOp):
        compiled = tuple(
            _compile_columnar(op, index_of, attributes) for op in expression.operands
        )
        if expression.operator == "and":
            if not compiled:
                return lambda _columns, count: [True] * count  # all(()) is True

            def run_and(columns, count) -> list[Value]:
                result = [bool(a) for a in compiled[0](columns, count)]
                for factor in compiled[1:]:
                    # Short-circuit semantics per row, preserved batch-wise:
                    # a later conjunct is only ever evaluated on the rows
                    # every earlier conjunct accepted (exactly the rows the
                    # interpreted all() would have evaluated it on), so a
                    # conjunct guarding a raising expression still guards it.
                    live = [i for i, a in enumerate(result) if a]
                    if not live:
                        break
                    if len(live) == count:
                        # Every row passed so far: the conjunct's own column
                        # becomes the running result.
                        result = [bool(b) for b in factor(columns, count)]
                    else:
                        sub_columns = [[col[i] for i in live] for col in columns]
                        sub = factor(sub_columns, len(live))
                        for position, value in zip(live, sub):
                            result[position] = bool(value)
                return result
            return run_and
        if expression.operator == "or":
            if not compiled:
                return lambda _columns, count: [False] * count  # any(()) is False

            def run_or(columns, count) -> list[Value]:
                result = [bool(a) for a in compiled[0](columns, count)]
                for factor in compiled[1:]:
                    # Mirror of run_and: only rows still false see the next
                    # disjunct, as any() short-circuits row-wise.
                    live = [i for i, a in enumerate(result) if not a]
                    if not live:
                        break
                    if len(live) == count:
                        result = [bool(b) for b in factor(columns, count)]
                    else:
                        sub_columns = [[col[i] for i in live] for col in columns]
                        sub = factor(sub_columns, len(live))
                        for position, value in zip(live, sub):
                            result[position] = bool(value)
                return result
            return run_or
        negated = compiled[0]
        return lambda columns, count: [not a for a in negated(columns, count)]
    if isinstance(expression, InList):
        operand = _compile_columnar(expression.operand, index_of, attributes)
        members = expression.values
        return lambda columns, count: [a in members for a in operand(columns, count)]
    if isinstance(expression, FunctionCall):
        function = _FUNCTIONS[expression.name]
        arguments = tuple(
            _compile_columnar(a, index_of, attributes) for a in expression.arguments
        )
        if not arguments:
            return lambda _columns, count: [function() for _ in range(count)]
        return lambda columns, count: [
            function(*args)
            for args in zip(*(a(columns, count) for a in arguments))
        ]
    # Unknown subclass: evaluate row-wise through the positional compiler.
    positional = _compile(expression, index_of, attributes)
    return lambda columns, count: [
        positional(values) for values in zip(*columns)
    ] if columns else [positional(()) for _ in range(count)]


# ---------------------------------------------------------------------------
# Sargable predicate analysis
# ---------------------------------------------------------------------------


def split_conjuncts(predicate: Expression | None) -> list[Expression]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if predicate is None:
        return []
    if isinstance(predicate, BooleanOp) and predicate.operator == "and":
        result: list[Expression] = []
        for operand in predicate.operands:
            result.extend(split_conjuncts(operand))
        return result
    if isinstance(predicate, Literal) and predicate.value is True:
        return []
    return [predicate]


def split_sargable(
    predicate: Expression | None, key_attributes: Sequence[str]
) -> tuple[Expression | None, Expression | None]:
    """Split ``predicate`` into (sargable, residual) parts.

    The sargable part references only ``key_attributes`` and can therefore be
    evaluated by an index node from the tuple IDs alone; the residual part
    needs the full tuple.  Either part may be ``None``.
    """
    key_set = set(key_attributes)
    sargable: list[Expression] = []
    residual: list[Expression] = []
    for conjunct in split_conjuncts(predicate):
        if conjunct.references() <= key_set:
            sargable.append(conjunct)
        else:
            residual.append(conjunct)
    return (
        and_(*sargable) if sargable else None,
        and_(*residual) if residual else None,
    )


def key_predicate_function(
    sargable: Expression | None, key_attributes: Sequence[str]
) -> Callable[[tuple[Value, ...]], bool] | None:
    """Compile a sargable predicate to a function over raw key-value tuples.

    This is the form the storage layer's index nodes accept (they hold tuple
    IDs, not full rows).
    """
    if sargable is None:
        return None
    compiled = compile_expression(sargable, tuple(key_attributes))

    def evaluate(key_values: tuple[Value, ...]) -> bool:
        return bool(compiled(key_values))

    return evaluate


# ---------------------------------------------------------------------------
# Aggregate functions
# ---------------------------------------------------------------------------


class AggregateFunction(ABC):
    """An aggregate with an explicit, mergeable partial state.

    ``initial`` → ``add`` (per input row) → ``merge`` (combine partials from
    different nodes) → ``result``.  The partial state must be a plain value
    (or small tuple) so it can ship between nodes as part of a row.
    """

    name: str = "agg"

    @abstractmethod
    def initial(self) -> Value:
        ...

    @abstractmethod
    def add(self, state: Value, value: Value) -> Value:
        ...

    @abstractmethod
    def merge(self, state: Value, other: Value) -> Value:
        ...

    def result(self, state: Value) -> Value:
        return state

    def __repr__(self) -> str:
        return self.name.upper()


class Sum(AggregateFunction):
    name = "sum"

    def initial(self) -> Value:
        return None

    def add(self, state: Value, value: Value) -> Value:
        if value is None:
            return state
        return value if state is None else state + value

    def merge(self, state: Value, other: Value) -> Value:
        return self.add(state, other)


class Count(AggregateFunction):
    name = "count"

    def initial(self) -> Value:
        return 0

    def add(self, state: Value, value: Value) -> Value:
        return state + (0 if value is None else 1)

    def merge(self, state: Value, other: Value) -> Value:
        return state + other


class Min(AggregateFunction):
    name = "min"

    def initial(self) -> Value:
        return None

    def add(self, state: Value, value: Value) -> Value:
        if value is None:
            return state
        return value if state is None else min(state, value)

    def merge(self, state: Value, other: Value) -> Value:
        return self.add(state, other)


class Max(AggregateFunction):
    name = "max"

    def initial(self) -> Value:
        return None

    def add(self, state: Value, value: Value) -> Value:
        if value is None:
            return state
        return value if state is None else max(state, value)

    def merge(self, state: Value, other: Value) -> Value:
        return self.add(state, other)


class Avg(AggregateFunction):
    """Average, carried as a (sum, count) pair until the final result."""

    name = "avg"

    def initial(self) -> Value:
        return (0.0, 0)

    def add(self, state: Value, value: Value) -> Value:
        total, count = state
        if value is None:
            return state
        return (total + value, count + 1)

    def merge(self, state: Value, other: Value) -> Value:
        return (state[0] + other[0], state[1] + other[1])

    def result(self, state: Value) -> Value:
        total, count = state
        return None if count == 0 else total / count


AGGREGATES: dict[str, Callable[[], AggregateFunction]] = {
    "sum": Sum,
    "count": Count,
    "min": Min,
    "max": Max,
    "avg": Avg,
}


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate output column: ``name = func(expression)``."""

    name: str
    function: AggregateFunction
    argument: Expression

    def __repr__(self) -> str:
        return f"{self.name}={self.function!r}({self.argument!r})"
