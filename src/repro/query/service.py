"""Distributed query execution service (Sections V-A through V-D).

One :class:`QueryService` runs on every node.  It plays two roles:

* **participant** — it receives the plan + routing snapshot from a query
  initiator, instantiates the local operator fragment, performs the index-node
  and data-node sides of the leaf scans, exchanges data and end-of-stream
  messages with the other participants, and executes recovery instructions;
* **initiator (coordinator)** — for queries submitted locally it resolves the
  scanned relation versions, takes the routing snapshot, disseminates the
  plan, collects the shipped results, detects participant failures through the
  transport layer, and drives either a full restart or the four-stage
  incremental recovery of Section V-D.

All communication uses one-way casts; completion is tracked with the
end-of-stream protocol described in the paper (scans → rehash → ship), so the
initiator knows the result is complete exactly when every participant has
reported end-of-stream for the final ship exchange.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..cache.result import SemanticResultCache, plan_fingerprint
from ..common.errors import QueryError
from ..common.hashing import KeyRange
from ..common.serialization import ENCODING_STATS, EncodedTupleBatch, TupleBatch
from ..common.types import Value
from ..net.simnet import SimNode
from ..net.transport import RpcEndpoint, rpc_endpoint
from ..overlay.membership import MembershipView
from ..overlay.routing import RoutingSnapshot, physical_address
from ..storage.client import StorageClient
from ..storage.pages import CoordinatorRecord, PageRef
from ..storage.service import StorageService
from .operators import Fragment, build_fragment
from .pushdown import ScanPredicate, prune_page_refs
from .physical import (
    COLLECT_MERGE_PARTIALS,
    COLLECT_REPLACE_GROUPS,
    PhysScan,
    PhysShip,
    PhysicalPlan,
)
from .provenance import TaggedRow, provenance_overhead

#: Recovery strategies of Section V-D / Figure 21.
RECOVERY_RESTART = "restart"
RECOVERY_INCREMENTAL = "incremental"


@dataclass
class QueryOptions:
    """Per-query knobs.

    ``provenance_enabled`` turns the per-tuple provenance tags (and therefore
    incremental-recovery support) on or off — the Section VI-E overhead
    experiment compares the two.  ``recovery_mode`` selects what the initiator
    does when a participant fails mid-query.
    """

    provenance_enabled: bool = True
    recovery_mode: str = RECOVERY_INCREMENTAL
    batch_rows: int = 256
    max_restarts: int = 3
    #: Consult/fill the initiator's semantic result cache (only effective when
    #: the cluster was built with a :class:`~repro.cache.config.CacheConfig`).
    use_result_cache: bool = True


@dataclass
class QueryStatistics:
    """Execution statistics reported alongside the result rows."""

    started_at: float = 0.0
    completed_at: float = 0.0
    phases: int = 1
    restarts: int = 0
    failures_handled: int = 0
    rows_shipped: int = 0
    bytes_total: int = 0
    bytes_per_node: dict[str, int] = field(default_factory=dict)
    participating_nodes: int = 0
    #: True when the answer was served from the semantic result cache.
    result_cache_hit: bool = False
    #: Remote messages the query put on the wire (local sends are free).
    messages_total: int = 0
    #: Bytes per protocol stage (RPC method → bytes), e.g. ``query.start``
    #: (plan + scan-spec dissemination), ``query.scan_tuples`` (leaf-scan
    #: tuple-ID requests), ``query.data`` (exchange rows) — the breakdown the
    #: wire-traffic benchmarks report.
    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    #: Index pages of all leaf scans under the launch snapshot, and how many
    #: of them plan-time pruning removed before any node was asked for them.
    scan_pages_total: int = 0
    scan_pages_pruned: int = 0
    #: Columnar-encoding footprint of this query (all attempts): per-codec
    #: encoded column bytes plus batch encode/decode/skip counts, the delta
    #: of :data:`repro.common.serialization.ENCODING_STATS` over the run.
    encoding: dict[str, object] = field(default_factory=dict)
    #: Resilience activity attributable to this query (all attempts): the
    #: delta of the merged per-node :class:`~repro.resilience.ResilienceStats`
    #: over the run — hedges by outcome, retries, adaptive timeouts, breaker
    #: skips.  Empty when the cluster runs without a resilience config (or
    #: when the query triggered none of it).
    resilience: dict[str, object] = field(default_factory=dict)
    #: Integrity activity attributable to this query (all attempts): the
    #: delta of the merged per-node :class:`~repro.integrity.IntegrityStats`
    #: over the run — detections by site, repairs by source, quarantines.
    #: Empty when the cluster runs without an integrity config (or the
    #: query's reads all verified clean).
    integrity: dict[str, object] = field(default_factory=dict)
    #: Trace identity of the query's span tree, set when the cluster has
    #: tracing enabled (:meth:`repro.cluster.Cluster.enable_tracing`).
    trace_id: int | None = None

    # Bound by the service when tracing is on; not dataclass fields so they
    # stay out of __init__/__repr__ and equality.
    _tracer = None
    _plan = None

    @property
    def execution_time(self) -> float:
        return self.completed_at - self.started_at

    @property
    def data_bytes(self) -> int:
        """Exchange-row bytes (``query.data``): the pushdown-sensitive share."""
        return self.bytes_by_kind.get("query.data", 0)

    def profile(self):
        """The per-operator execution profile, attributed from the span tree.

        Returns a :class:`~repro.obs.profile.QueryProfile` (render it with
        ``.format()`` or :func:`repro.obs.profile.format_profile`), or
        ``None`` when the query ran without tracing — including result-cache
        hits, which execute no operators.
        """
        if self._tracer is None or self.trace_id is None or self._plan is None:
            return None
        from ..obs.profile import build_profile

        return build_profile(
            self._tracer, self.trace_id, self._plan, encoding=self.encoding,
            resilience=self.resilience, integrity=self.integrity,
        )

    def to_dict(self) -> dict:
        """Common stats-serialization protocol (see :mod:`repro.obs.metrics`)."""
        return {
            "started_at": self.started_at,
            "completed_at": self.completed_at,
            "execution_time": self.execution_time,
            "phases": self.phases,
            "restarts": self.restarts,
            "failures_handled": self.failures_handled,
            "rows_shipped": self.rows_shipped,
            "bytes_total": self.bytes_total,
            "bytes_per_node": dict(self.bytes_per_node),
            "participating_nodes": self.participating_nodes,
            "result_cache_hit": self.result_cache_hit,
            "messages_total": self.messages_total,
            "bytes_by_kind": dict(self.bytes_by_kind),
            "scan_pages_total": self.scan_pages_total,
            "scan_pages_pruned": self.scan_pages_pruned,
            "encoding": dict(self.encoding),
            "resilience": dict(self.resilience),
            "integrity": dict(self.integrity),
            "trace_id": self.trace_id,
        }

    def metric_series(self):
        """Registry samples: ``query.bytes{kind=...}``, ``query.rows``, ..."""
        samples = [
            ("query.bytes", {}, self.bytes_total),
            ("query.messages", {}, self.messages_total),
            ("query.rows_shipped", {}, self.rows_shipped),
            ("query.phases", {}, self.phases),
            ("query.restarts", {}, self.restarts),
        ]
        for kind in sorted(self.bytes_by_kind):
            samples.append(("query.bytes", {"kind": kind}, self.bytes_by_kind[kind]))
        encoded = self.encoding.get("encoded_bytes", {})
        for codec in sorted(encoded):
            samples.append(("query.encoded_bytes", {"codec": codec}, encoded[codec]))
        hedges = self.resilience.get("hedges", {})
        for outcome in sorted(hedges):
            samples.append(("query.hedges", {"outcome": outcome}, hedges[outcome]))
        if self.resilience.get("retries"):
            samples.append(("query.rpc_retries", {}, self.resilience["retries"]))
        detected = self.integrity.get("detected", {})
        for site in sorted(detected):
            samples.append(("query.integrity_detected", {"site": site}, detected[site]))
        repaired = self.integrity.get("repaired", {})
        for source in sorted(repaired):
            samples.append(("query.integrity_repaired", {"source": source}, repaired[source]))
        return samples

    def _absorb_traffic(self, delta) -> None:
        """Fold one attempt's traffic delta into the cumulative counters."""
        self.bytes_total += delta.total_bytes
        self.messages_total += delta.total_messages
        for address, count in delta.per_node_bytes().items():
            self.bytes_per_node[address] = self.bytes_per_node.get(address, 0) + count
        for kind, count in delta.bytes_by_kind.items():
            if count:
                self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + count

    def _absorb_encoding(self, before: dict, after: dict) -> None:
        """Fold one attempt's encoding-stats delta into the cumulative view."""
        if not before:
            return  # no launch-time snapshot (e.g. result-cache hit)
        deltas = {
            codec: count - before["encoded_bytes"].get(codec, 0)
            for codec, count in after["encoded_bytes"].items()
            if count - before["encoded_bytes"].get(codec, 0)
        }
        if deltas:
            encoded = self.encoding.setdefault("encoded_bytes", {})
            for codec, delta in deltas.items():
                encoded[codec] = encoded.get(codec, 0) + delta
        for counter in (
            "batches_encoded", "batches_decoded", "batches_skipped",
            "columns_decoded", "values_decoded",
        ):
            delta = after[counter] - before[counter]
            if delta:
                self.encoding[counter] = self.encoding.get(counter, 0) + delta

    def _absorb_resilience(self, before: dict, after: dict) -> None:
        """Fold one attempt's resilience-stats delta into the cumulative view.

        ``before``/``after`` are merged cluster-wide snapshots (the resilience
        layer, like :data:`~repro.common.serialization.ENCODING_STATS`, keeps
        live process-side counters), so the delta attributes every hedge and
        retry that fired while this query's attempt was in flight.
        """
        if not before:
            return  # resilience disabled, or no launch-time snapshot
        for counter in ("calls", "retries", "timeouts", "breaker_skips"):
            delta = after[counter] - before[counter]
            if delta:
                self.resilience[counter] = self.resilience.get(counter, 0) + delta
        deltas = {
            outcome: count - before["hedges"].get(outcome, 0)
            for outcome, count in after["hedges"].items()
            if count - before["hedges"].get(outcome, 0)
        }
        if deltas:
            hedges = self.resilience.setdefault("hedges", {})
            for outcome, delta in deltas.items():
                hedges[outcome] = hedges.get(outcome, 0) + delta

    def _absorb_integrity(self, before: dict, after: dict) -> None:
        """Fold one attempt's integrity-stats delta into the cumulative view.

        ``before``/``after`` are merged cluster-wide snapshots, so every
        corruption this query's reads surfaced — and every read-repair its
        failover performed — is attributed to it.
        """
        if not before:
            return  # integrity disabled, or no launch-time snapshot
        for tagged in ("detected", "repaired"):
            deltas = {
                key: count - before[tagged].get(key, 0)
                for key, count in after[tagged].items()
                if count - before[tagged].get(key, 0)
            }
            if deltas:
                folded = self.integrity.setdefault(tagged, {})
                for key, delta in deltas.items():
                    folded[key] = folded.get(key, 0) + delta
        delta = after["quarantined"] - before["quarantined"]
        if delta:
            self.integrity["quarantined"] = self.integrity.get("quarantined", 0) + delta


@dataclass
class QueryResult:
    """Final answer of a distributed query."""

    attributes: tuple[str, ...]
    rows: list[tuple[Value, ...]]
    statistics: QueryStatistics

    def __len__(self) -> int:
        return len(self.rows)

    def as_dicts(self) -> list[dict[str, Value]]:
        return [dict(zip(self.attributes, row)) for row in self.rows]


@dataclass
class _ScanSpec:
    """Initiator-computed description of one leaf scan.

    The initiator keeps the full page assignment (``pages_by_index_node``
    covering every index node); each participant receives a slimmed copy that
    lists only the pages *it* must serve as index node, because that is all a
    participant needs — the expected end-of-stream senders and the scan-done
    recipients are precomputed by the initiator (see :meth:`QueryService._launch`).
    """

    scan_op_id: int
    relation: str
    epoch: int
    covering: bool
    pages_by_index_node: dict[str, list[PageRef]]
    #: Sargable predicate as a *serializable descriptor* (expression tree +
    #: key-attribute signature); each index node compiles it positionally.
    key_predicate: ScanPredicate | None

    def key_predicate_function(self) -> Callable[[tuple[Value, ...]], bool] | None:
        return None if self.key_predicate is None else self.key_predicate.compile()

    def index_nodes(self) -> list[str]:
        return sorted(self.pages_by_index_node.keys())

    def estimated_size(self) -> int:
        """Wire size of this spec inside a ``query.start`` payload.

        Charges the real contents: fixed framing, each page reference
        (:meth:`PageRef.estimated_size`), the per-index-node grouping, and
        the pushed predicate descriptor — not a flat 64 bytes per page.  The
        projection descriptor rides in the plan itself
        (:meth:`PhysScan.estimated_descriptor_size`), so it is not
        double-charged here.
        """
        # Page-ref lists ship delta-encoded: refs are sorted by hash range,
        # so the first carries both 160-bit bounds (64 bytes, the standalone
        # PageRef size) and each subsequent ref shares its start bound with
        # its predecessor's end — page id, one bound, framing (44 bytes).
        pages = sum(
            64 + 44 * (len(refs) - 1)
            for refs in self.pages_by_index_node.values()
            if refs
        )
        groups = 16 * len(self.pages_by_index_node)
        predicate = 0 if self.key_predicate is None else self.key_predicate.estimated_size()
        return 48 + predicate + groups + pages

    def restricted_to(self, address: str) -> "_ScanSpec":
        """A copy carrying only the page assignment of ``address``."""
        own_pages = self.pages_by_index_node.get(address)
        return _ScanSpec(
            scan_op_id=self.scan_op_id,
            relation=self.relation,
            epoch=self.epoch,
            covering=self.covering,
            pages_by_index_node={address: list(own_pages)} if own_pages else {},
            key_predicate=self.key_predicate,
        )


def _scan_completion_maps(
    scan_specs: Mapping[int, "_ScanSpec"],
    participants: Sequence[str],
    snapshot: RoutingSnapshot,
) -> tuple[dict[str, dict[int, list[str]]], dict[str, dict[int, list[str]]]]:
    """Precompute the scan end-of-stream exchanges for every participant.

    Returns two maps, both keyed by participant address and scan operator id:

    * ``expected[participant][scan]`` — index nodes whose ``scan_done`` the
      participant must wait for before its leaf scan can complete.  For a
      non-covering scan these are the index nodes owning a page whose hash
      range overlaps one of the participant's key ranges (only those index
      nodes can route tuple IDs to it); for a covering scan rows are produced
      at the index node itself, so a participant only waits for itself.
    * ``receivers[index_node][scan]`` — the inverse map: participants an index
      node must notify when it finishes requesting tuples for its pages.

    Both maps are derived from the same page/range overlap relation, so a
    ``scan_done`` is sent exactly to the nodes that are waiting for it.  This
    keeps the completion protocol O(pages) instead of O(participants²): thanks
    to the co-location of index pages and tuple data (Section IV) a page
    overlaps only one or two adjacent nodes' ranges — found by walking the
    ring from the page range's start (:meth:`RoutingSnapshot.owners_overlapping`)
    rather than testing every participant's ranges against every page.
    """
    order_index = {address: i for i, address in enumerate(participants)}
    expected: dict[str, dict[int, list[str]]] = {
        address: {} for address in participants
    }
    receivers: dict[str, dict[int, list[str]]] = {
        address: {} for address in participants
    }
    for op_id, spec in scan_specs.items():
        for address in participants:
            expected[address][op_id] = []
            receivers[address][op_id] = []
        for index_node, pages in spec.pages_by_index_node.items():
            if index_node not in receivers:
                continue
            if spec.covering:
                # Covering scans produce rows right at the index node.
                if pages:
                    receivers[index_node][op_id].append(index_node)
                    expected[index_node][op_id].append(index_node)
                continue
            touched: set[str] = set()
            for ref in pages:
                for entry in snapshot.owners_overlapping(ref.hash_range):
                    touched.add(physical_address(entry))
            # Participant order (not discovery order) keeps the scan_done
            # send sequence identical to the participant-major formulation.
            for participant in sorted(
                (address for address in touched if address in order_index),
                key=order_index.__getitem__,
            ):
                receivers[index_node][op_id].append(participant)
                expected[participant][op_id].append(index_node)
    return expected, receivers


class _ResultCollector:
    """Initiator-side collector for the ship exchange of one query."""

    def __init__(self, ship: PhysShip, participants: Sequence[str]) -> None:
        self.ship = ship
        self.mode = ship.collector_mode
        self._rows: list[TaggedRow] = []
        self._groups: dict[tuple, TaggedRow] = {}
        self._partials: list[TaggedRow] = []
        #: End-of-stream senders received, grouped by phase.
        self._eos_by_phase: dict[int, set[str]] = {}
        self._expected: set[str] = set(participants)
        #: Per-phase set of expected senders still outstanding, maintained
        #: incrementally so completion checks need not rebuild O(n) sets on
        #: every EOS (built lazily; dropped whenever ``_expected`` changes).
        self._pending: dict[int, set[str]] = {}
        self.rows_received = 0

    def accept(self, rows: list[TaggedRow], failed: set[str]) -> None:
        if failed:
            live = [row for row in rows if not row.nodes & failed]
        else:
            live = rows  # batch fast path: no failure, nothing is tainted
        self.rows_received += len(live)
        if self.mode == COLLECT_MERGE_PARTIALS:
            self._partials.extend(live)
        elif self.mode == COLLECT_REPLACE_GROUPS:
            for row in live:
                key = tuple(row.row[attr] for attr in self.ship.group_by)
                current = self._groups.get(key)
                if current is None or row.phase >= current.phase:
                    self._groups[key] = row
        else:
            self._rows.extend(live)

    def sender_eos(self, sender: str, phase: int = 0) -> None:
        self._eos_by_phase.setdefault(phase, set()).add(sender)
        pending = self._pending.get(phase)
        if pending is not None:
            pending.discard(sender)

    def purge_tainted(self, failed: set[str]) -> None:
        self._rows = [row for row in self._rows if not row.tainted_by(failed)]
        self._partials = [row for row in self._partials if not row.tainted_by(failed)]
        for key in list(self._groups.keys()):
            if self._groups[key].tainted_by(failed):
                del self._groups[key]

    def reset_eos(self, participants: Sequence[str], failed: set[str]) -> None:
        self._expected = {address for address in participants if address not in failed}
        self._pending.clear()

    def is_complete(self, failed: set[str], phase: int) -> bool:
        # Equivalent to (expected - failed) <= received(phase), restated as
        # pending <= failed with pending := expected - received(phase): the
        # common mid-stream call answers False after one length comparison
        # instead of materialising two O(n) sets per EOS message.
        pending = self._pending.get(phase)
        if pending is None:
            received = self._eos_by_phase.get(phase, ())
            pending = {a for a in self._expected if a not in received}
            self._pending[phase] = pending
        if not pending:
            return True
        if len(pending) > len(failed):
            return False
        return pending <= failed

    # -- final result -------------------------------------------------------------

    def final_rows(self) -> list[tuple[Value, ...]]:
        attributes = self.ship.output_attributes()
        if self.mode == COLLECT_MERGE_PARTIALS:
            rows = self._merge_partials()
        elif self.mode == COLLECT_REPLACE_GROUPS:
            rows = [tagged.row.values for tagged in self._groups.values()]
        else:
            rows = [tagged.row.values for tagged in self._rows]
        if self.ship.order_by:
            for attribute, ascending in reversed(self.ship.order_by):
                index = attributes.index(attribute)
                rows = sorted(rows, key=lambda r: (r[index] is None, r[index]), reverse=not ascending)
        if self.ship.limit is not None:
            rows = rows[: self.ship.limit]
        return list(rows)

    def _merge_partials(self) -> list[tuple[Value, ...]]:
        group_by = self.ship.group_by
        aggregates = self.ship.aggregates
        merged: dict[tuple, list[Value]] = {}
        for tagged in self._partials:
            key = tuple(tagged.row[attr] for attr in group_by)
            states = merged.get(key)
            if states is None:
                states = [spec.function.initial() for spec in aggregates]
                merged[key] = states
            for index, spec in enumerate(aggregates):
                states[index] = spec.function.merge(states[index], tagged.row[spec.name])
        results = []
        for key, states in merged.items():
            values = tuple(key) + tuple(
                spec.function.result(state) for spec, state in zip(aggregates, states)
            )
            results.append(values)
        return results


class _NodeQueryContext:
    """Per-node, per-query execution context (implements FragmentContext)."""

    def __init__(
        self,
        service: "QueryService",
        query_id: str,
        plan: PhysicalPlan,
        snapshot: RoutingSnapshot,
        initiator: str,
        options: QueryOptions,
        scan_specs: Mapping[int, _ScanSpec],
    ) -> None:
        self.service = service
        self.query_id = query_id
        self.plan = plan
        self.snapshot = snapshot
        self.initiator_address = initiator
        self.options = options
        self.scan_specs = dict(scan_specs)
        self.phase = 0
        self.failed_nodes: set[str] = set()
        self.provenance_enabled = options.provenance_enabled
        self.encoding_enabled = getattr(plan, "enable_encoding", True)
        # Frozen from the start snapshot so every node (and the initiator)
        # agrees on the relay decision for the query's whole lifetime,
        # regardless of how failures later shrink the live set.
        self.eos_relay_enabled = (
            len(service.participants_of(snapshot))
            >= QueryService.EOS_RELAY_MIN_PARTICIPANTS
        )
        self.fragment: Fragment = build_fragment(plan, self)
        # scan op id -> participants this node must notify when it finishes its
        # index-node duties for that scan (precomputed by the initiator; during
        # a recovery phase both sides re-derive the narrowed receiver sets
        # from the rescan plan via ``_recovery_receivers``).
        self.scan_done_receivers: dict[int, Sequence[str]] = {}
        # scan op id -> set of (index node, phase) markers we are waiting for.
        # Tokens carry the phase they were armed in: a recovery re-arm keeps
        # the previous phase's unsatisfied tokens (that work is still on the
        # wire), and a marker from a sender satisfies every token of the same
        # sender with an equal or older phase — per-pair FIFO guarantees all
        # rows the sender produced up to that phase arrived before it.
        self._pending_scan_done: dict[int, set[tuple[str, int]]] = {}
        self._scan_completed: set[int] = set()
        # scan_done markers that arrived for a phase this node has not entered
        # yet: a fast peer can finish its recovery rescan before this node
        # even receives the initiator's recover message (messages on different
        # node pairs are not mutually ordered).  They are replayed when
        # arm_scans enters the phase; dropping them would hang the query.
        self._early_scan_done: list[tuple[int, int, str]] = []
        # Outstanding replica chases for tuple versions this data node was
        # asked to produce but does not hold locally; the scan cannot
        # complete while any are in flight, or the recovered rows would
        # arrive after the operators sealed.
        self._scan_fetches: dict[int, int] = {}

    # -- FragmentContext interface ----------------------------------------------------

    @property
    def address(self) -> str:
        return self.service.node.address

    def charge_cpu(self, seconds: float) -> None:
        self.service.node.charge_cpu(seconds)

    def destination_for(self, hash_key: int) -> str:
        return physical_address(self.snapshot.owner_of(hash_key))

    def participants(self) -> list[str]:
        return self.service.participants_of(self.snapshot)

    def initiator(self) -> str:
        return self.initiator_address

    def send_rows(
        self, destination: str, exchange_id: int, rows: list[TaggedRow], eos: bool = False
    ) -> None:
        self.service.send_data(self, destination, exchange_id, rows, eos=eos)

    def send_eos(self, destination: str, exchange_id: int) -> None:
        self.service.send_eos(self, destination, exchange_id)

    def send_eos_summary(self, exchange_id: int, zero_destinations: list[str]) -> None:
        self.service.send_eos_summary(self, exchange_id, zero_destinations)

    # -- scan end-of-stream bookkeeping -------------------------------------------------

    def arm_scans(
        self,
        expected_index_nodes: Mapping[int, Sequence[str]],
        carry_pending: bool = False,
    ) -> None:
        """Arm (or re-arm, for a recovery phase) the per-scan EOS tracking.

        With ``carry_pending`` (recovery re-arms) the previous phase's
        unsatisfied tokens are kept alongside the new expectations: a launch
        scan whose rows and marker are still in flight when the recover
        message lands must keep gating the scan, or those rows would arrive
        after the operators sealed and silently vanish from the answer.
        """
        self._scan_completed.clear()
        self._scan_fetches.clear()
        for scan_op_id in self.fragment.scan_sources:
            expected = {
                (sender, self.phase)
                for sender in expected_index_nodes.get(scan_op_id, ())
                if sender not in self.failed_nodes
            }
            if carry_pending:
                expected |= {
                    token
                    for token in self._pending_scan_done.get(scan_op_id, ())
                    if token[0] not in self.failed_nodes
                }
            self._pending_scan_done[scan_op_id] = expected
            if not expected:
                self._complete_scan(scan_op_id)
        # Replay markers that raced ahead of this phase's recover message.
        ready = [entry for entry in self._early_scan_done if entry[0] == self.phase]
        self._early_scan_done = [
            entry for entry in self._early_scan_done if entry[0] > self.phase
        ]
        for phase, scan_op_id, sender in ready:
            self.scan_done_received(scan_op_id, sender, phase)

    def note_scan_done(self, scan_op_id: int, sender: str, phase: int) -> None:
        """Record a scan_done marker, buffering ones from a future phase."""
        if phase > self.phase:
            self._early_scan_done.append((phase, scan_op_id, sender))
        else:
            # Markers from the current *or an older* phase are credited: a
            # stale marker still proves every row its sender produced up to
            # that phase has been delivered on this pair (FIFO).
            self.scan_done_received(scan_op_id, sender, phase)

    def scan_done_received(
        self, scan_op_id: int, sender: str, phase: int | None = None
    ) -> None:
        pending = self._pending_scan_done.get(scan_op_id)
        if pending is None:
            return
        marker_phase = self.phase if phase is None else phase
        pending -= {
            token
            for token in pending
            if token[0] == sender and token[1] <= marker_phase
        }
        if not pending:
            self._complete_scan(scan_op_id)

    def drop_failed_scan_producers(self, failed: set[str]) -> None:
        for scan_op_id, pending in self._pending_scan_done.items():
            pending -= {token for token in pending if token[0] in failed}
            if not pending:
                self._complete_scan(scan_op_id)

    def begin_scan_fetch(self, scan_op_id: int) -> None:
        self._scan_fetches[scan_op_id] = self._scan_fetches.get(scan_op_id, 0) + 1

    def end_scan_fetch(self, scan_op_id: int) -> None:
        remaining = self._scan_fetches.get(scan_op_id, 0) - 1
        if remaining > 0:
            self._scan_fetches[scan_op_id] = remaining
        else:
            self._scan_fetches.pop(scan_op_id, None)
            pending = self._pending_scan_done.get(scan_op_id)
            if pending is not None and not pending:
                self._complete_scan(scan_op_id)

    def _complete_scan(self, scan_op_id: int) -> None:
        if scan_op_id in self._scan_completed:
            return
        if self._scan_fetches.get(scan_op_id):
            return  # replica chases still in flight; completion re-fires after
        self._scan_completed.add(scan_op_id)
        source = self.fragment.scan_sources.get(scan_op_id)
        if source is not None:
            source.complete()


@dataclass
class _ActiveQuery:
    """Initiator-side state of one running query."""

    query_id: str
    plan: PhysicalPlan
    epoch: int
    options: QueryOptions
    snapshot: RoutingSnapshot
    original_snapshot: RoutingSnapshot
    scan_specs: dict[int, _ScanSpec]
    collector: _ResultCollector
    on_complete: Callable[[QueryResult], None]
    statistics: QueryStatistics
    failed_nodes: set[str] = field(default_factory=set)
    phase: int = 0
    completed: bool = False
    traffic_start: object = None
    #: ENCODING_STATS snapshot at launch; deltas feed ``statistics.encoding``.
    encoding_start: dict = field(default_factory=dict)
    #: Merged resilience-stats snapshot at launch (empty when the cluster has
    #: no resilience layer); deltas feed ``statistics.resilience``.
    resilience_start: dict = field(default_factory=dict)
    #: Merged integrity-stats snapshot at launch (empty when the cluster has
    #: no integrity layer); deltas feed ``statistics.integrity``.
    integrity_start: dict = field(default_factory=dict)
    #: Canonical plan fingerprint (None when result caching is off) and one
    #: ``(relation, resolved epoch, pinned epoch)`` triple per leaf scan,
    #: recorded so the finished result can enter the semantic cache with
    #: exact version keys.
    fingerprint: object = None
    scans: tuple = ()
    #: Publish sequence number of the initiator's result cache when this
    #: attempt's scan resolution started.  If it moved by completion time, a
    #: publish raced the execution and the result must not enter the cache —
    #: its scans may mix pre- and post-publish resolutions.
    cache_publish_seq: int = 0
    #: Participants already sent ``query.abort`` for this query, making the
    #: abort fan-out idempotent per ``(query_id, node)``.
    aborts_sent: set[str] = field(default_factory=set)
    #: Error callback of the submitting session (None for legacy callers):
    #: exhausting the restart budget resolves the operation through it
    #: instead of raising into the event loop.
    on_error: Callable[[Exception], None] | None = None
    #: EOS-relay aggregation (large clusters only): ``(exchange_id, phase)``
    #: -> ``{sender: [destinations the sender had no data for]}``.  Once every
    #: live participant has reported, the initiator sends each listed
    #: destination one aggregated ``query.eos`` and drops the entry.
    eos_summaries: dict[tuple[int, int], dict[str, list[str]]] = field(
        default_factory=dict
    )


class QueryService:
    """Per-node query execution service and (for local submissions) coordinator."""

    def __init__(
        self,
        node: SimNode,
        membership: MembershipView,
        storage: StorageService,
        replication_factor: int = 3,
        result_cache: SemanticResultCache | None = None,
    ) -> None:
        self.node = node
        self.rpc: RpcEndpoint = rpc_endpoint(node)
        self.membership = membership
        self.storage = storage
        self.replication_factor = replication_factor
        #: Semantic result cache for queries this node initiates (optional).
        self.result_cache = result_cache
        self._query_ids = itertools.count(1)
        #: Queries this node participates in (including ones it initiated),
        #: keyed by the cluster-unique query id.
        self._contexts: dict[str, _NodeQueryContext] = {}
        #: Queries this node initiated.
        self._active: dict[str, _ActiveQuery] = {}
        #: Messages that raced ahead of their query's ``query.start``: message
        #: channels are FIFO per node pair, but nothing orders the initiator's
        #: start against a *peer's* dataflow — under skewed link delays a
        #: participant can receive tuple requests, scan_done markers or row
        #: batches for a query it has not heard of yet.  Dropping them would
        #: lose rows silently (or hang the completion protocol), so they are
        #: held back and replayed in arrival order when the start arrives.
        self._pending_messages: dict[str, list[tuple[str, Mapping[str, object]]]] = {}
        #: Query ids whose state this node already tore down (abort received):
        #: stragglers for these are late, not early, and must stay dropped.
        #: Insertion-ordered and pruned to a fixed horizon — a straggler can
        #: only trail its query by the message-delay bound, so tombstones for
        #: long-finished queries are dead weight on a long-running node.
        self._finished_queries: dict[str, None] = {}
        self._register_handlers()
        node.add_failure_listener(self._on_peer_failure)
        node.services["query"] = self

    #: Tombstones retained for finished queries (see ``_finished_queries``).
    FINISHED_QUERY_HORIZON = 4096

    #: Participant count at which rehash end-of-stream for zero-data pairs
    #: switches from the direct per-pair fan-out to the initiator relay.  The
    #: direct path costs one fixed-overhead message per empty (sender,
    #: destination) pair — O(n²) on clusters where most pairs exchange no
    #: rows — while the relay costs n summaries plus at most n aggregated
    #: markers.  Below the crossover the per-query summary traffic would
    #: exceed the handful of empty pairs it replaces, so small clusters keep
    #: the direct path.
    EOS_RELAY_MIN_PARTICIPANTS = 16

    def _note_finished(self, query_id: str) -> None:
        self._finished_queries[query_id] = None
        while len(self._finished_queries) > self.FINISHED_QUERY_HORIZON:
            self._finished_queries.pop(next(iter(self._finished_queries)))

    # ------------------------------------------------------------------ registration

    def _register_handlers(self) -> None:
        self.rpc.register("query.start", self._on_start)
        self.rpc.register("query.scan_tuples", self._on_scan_tuples)
        self.rpc.register("query.scan_done", self._on_scan_done)
        self.rpc.register("query.scan_failed", self._on_scan_failed)
        self.rpc.register("query.data", self._on_data)
        self.rpc.register("query.eos", self._on_eos)
        self.rpc.register("query.eos_summary", self._on_eos_summary)
        self.rpc.register("query.recover", self._on_recover)
        self.rpc.register("query.abort", self._on_abort)

    # ------------------------------------------------------------------ coordinator

    def execute(
        self,
        plan: PhysicalPlan,
        epoch: int,
        on_complete: Callable[[QueryResult], None],
        options: QueryOptions | None = None,
        on_error: Callable[[Exception], None] | None = None,
    ) -> str:
        """Initiate ``plan`` at ``epoch``; the callback receives the result.

        Returns the query id — unique across the *cluster*, not just this
        node, because participants of concurrently initiated queries key
        their per-query state by it (two initiators' local counters would
        collide).
        """
        options = options or QueryOptions()
        query_id = self._next_query_id()
        fingerprint = None
        if self.result_cache is not None and options.use_result_cache:
            fingerprint = plan_fingerprint(plan)
            cached = self.result_cache.lookup(fingerprint, epoch)
            if cached is not None:
                self._serve_cached_result(cached, on_complete)
                return query_id
        snapshot = self.membership.snapshot()
        statistics = QueryStatistics(
            started_at=self.node.network.now,
            participating_nodes=len(self.participants_of(snapshot)),
        )
        tracer = self.node.network.tracer
        if tracer is not None:
            # Bind the statistics to the trace the query runs under — the
            # scheduler's operation root span when submitted through the
            # runtime, or (for direct execute() calls) the trace the first
            # message will open.  Restarts relaunch under new query ids but
            # keep this trace, so the profile spans every attempt.
            context = tracer.current()
            statistics.trace_id = (
                context.trace_id if context is not None else None
            )
            statistics._tracer = tracer
            statistics._plan = plan
            if context is not None:
                tracer.query_traces.setdefault(query_id, context.trace_id)
        # Captured before scan resolution: a publish completing between here
        # and the result's completion bumps the sequence, which vetoes the
        # result-cache fill (see _maybe_complete).
        cache_seq = self._cache_publish_seq()
        self._resolve_scans(
            plan, epoch, snapshot,
            # The routing snapshot the query runs with is taken at launch time
            # (after scan resolution), so a node that failed in the meantime
            # is already excluded rather than discovered mid-query.
            on_ready=lambda records: self._launch(
                query_id, plan, epoch, options, self.membership.snapshot(), records,
                statistics, on_complete, fingerprint=fingerprint,
                cache_publish_seq=cache_seq, on_error=on_error,
            ),
            on_error=on_error or (lambda exc: (_ for _ in ()).throw(exc)),
        )
        return query_id

    def _next_query_id(self) -> str:
        """Cluster-unique query id, namespaced by the initiating node."""
        return f"{self.node.address}/q{next(self._query_ids)}"

    def _resilience_totals(self) -> dict:
        """Merged cluster-wide resilience-stats snapshot (empty if disabled).

        The per-node stats objects are process-side observers (exactly like
        :data:`ENCODING_STATS`), so reading them here does not touch the
        simulated wire; the launch/finish delta attributes hedges and retries
        to the query that was in flight.
        """
        merged = None
        for peer in self.node.network.nodes.values():
            resilience = peer.services.get("resilience")
            if resilience is None:
                continue
            if merged is None:
                from ..resilience import ResilienceStats

                merged = ResilienceStats()
            merged.merge(resilience.stats)
        return merged.snapshot() if merged is not None else {}

    def _integrity_totals(self) -> dict:
        """Merged cluster-wide integrity-stats snapshot (empty if disabled).

        Same process-side-observer pattern as :meth:`_resilience_totals`: the
        launch/finish delta attributes detections and read-repairs to the
        query whose reads surfaced them.
        """
        merged = None
        for peer in self.node.network.nodes.values():
            storage = peer.services.get("storage")
            integrity = getattr(storage, "integrity", None)
            if integrity is None:
                continue
            if merged is None:
                from ..integrity import IntegrityStats

                merged = IntegrityStats()
            merged.merge(integrity.stats)
        return merged.snapshot() if merged is not None else {}

    def reset_volatile(self) -> None:
        """Drop all in-flight query state after a crash-restart.

        Queries this node participated in were recovered (or restarted) by
        their initiators when the crash was detected; queries it *initiated*
        had their futures failed by the runtime at crash time.  The query-id
        counter keeps counting across incarnations, so ids stay unique.
        """
        self._contexts.clear()
        self._active.clear()
        self._pending_messages.clear()
        self._finished_queries.clear()

    def _cache_publish_seq(self) -> int:
        """Current publish sequence of this initiator's result cache."""
        return self.result_cache.publish_seq if self.result_cache is not None else 0

    def _serve_cached_result(self, cached, on_complete: Callable[[QueryResult], None]) -> None:
        """Answer a query from the semantic result cache: no network at all."""
        statistics = QueryStatistics(
            started_at=self.node.network.now,
            participating_nodes=1,
            result_cache_hit=True,
        )

        def deliver() -> None:
            # Materialising the cached rows is the only work left; charge the
            # initiator a per-row CPU cost comparable to local dispatch.
            self.node.charge_cpu(0.1e-6 * len(cached.rows))
            statistics.completed_at = self.node.network.now
            on_complete(QueryResult(
                attributes=tuple(cached.attributes),
                rows=[tuple(row) for row in cached.rows],
                statistics=statistics,
            ))

        self.node.network.schedule(1e-6, deliver)

    def _resolve_scans(
        self,
        plan: PhysicalPlan,
        epoch: int,
        snapshot: RoutingSnapshot,
        on_ready: Callable[[dict[int, tuple[CoordinatorRecord, int]]], None],
        on_error: Callable[[Exception], None],
    ) -> None:
        """Resolve each scanned relation version and fetch its coordinator record."""
        storage_client: StorageClient = self.node.services["storage_client"]
        scans = plan.scans()
        records: dict[int, tuple[CoordinatorRecord, int]] = {}
        remaining = len(scans)
        if remaining == 0:
            on_ready(records)
            return
        errors: list[Exception] = []

        def scan_resolved(scan: PhysScan, record: CoordinatorRecord, resolved_epoch: int) -> None:
            nonlocal remaining
            records[scan.op_id] = (record, resolved_epoch)
            remaining -= 1
            if remaining == 0:
                if errors:
                    on_error(errors[0])
                else:
                    on_ready(records)

        def scan_failed(exc: Exception) -> None:
            nonlocal remaining
            errors.append(exc)
            remaining -= 1
            if remaining == 0:
                on_error(errors[0])

        for scan in scans:
            scan_epoch = scan.epoch if scan.epoch is not None else epoch

            def resolve(scan=scan, scan_epoch=scan_epoch) -> None:
                storage_client.resolve_epoch(
                    scan.schema.name, scan_epoch, snapshot,
                    on_resolved=lambda resolved, scan=scan: storage_client.fetch_coordinator(
                        scan.schema.name, resolved, snapshot,
                        on_record=lambda record, scan=scan, resolved=resolved: scan_resolved(
                            scan, record, resolved
                        ),
                        on_error=scan_failed,
                    ),
                    on_error=scan_failed,
                )

            resolve()

    def _launch(
        self,
        query_id: str,
        plan: PhysicalPlan,
        epoch: int,
        options: QueryOptions,
        snapshot: RoutingSnapshot,
        scan_records: dict[int, tuple[CoordinatorRecord, int]],
        statistics: QueryStatistics,
        on_complete: Callable[[QueryResult], None],
        fingerprint: object = None,
        cache_publish_seq: int = 0,
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        if not self.node.alive:
            # The initiator crashed while its scans were resolving; the
            # operation's future was failed at crash time.
            return
        participants = self.participants_of(snapshot)
        statistics.participating_nodes = len(participants)
        # Assign every index page of every scanned relation to its owner under
        # the launch snapshot; these assignments drive the leaf scans.
        scan_specs: dict[int, _ScanSpec] = {}
        for scan in plan.scans():
            record, resolved_epoch = scan_records[scan.op_id]
            # Page pruning: a page whose hash range contains none of the
            # plan-time candidate hashes provably holds no matching tuple ID,
            # so it is never assigned to an index node — no scan request, no
            # tuple-ID fan-out, no scan_done marker for it.
            refs, pruned = prune_page_refs(record.pages, scan.prune_hashes)
            statistics.scan_pages_total += len(record.pages)
            statistics.scan_pages_pruned += pruned
            resilience = self.node.services.get("resilience")
            pages_by_node: dict[str, list[PageRef]] = {}
            for ref in refs:
                if resilience is None:
                    owner = physical_address(snapshot.owner_of(ref.storage_key))
                else:
                    # Any page replica can run the leaf scan (participants
                    # chase pages they lack), so route around suspected
                    # owners; with every replica healthy this is exactly the
                    # primary-owner assignment.
                    from ..overlay.replication import replica_set

                    owner = resilience.select_target(
                        replica_set(snapshot, ref.storage_key, self.replication_factor)
                    )
                pages_by_node.setdefault(owner, []).append(ref)
            scan_specs[scan.op_id] = _ScanSpec(
                scan_op_id=scan.op_id,
                relation=scan.schema.name,
                epoch=resolved_epoch,
                covering=scan.covering,
                pages_by_index_node=pages_by_node,
                key_predicate=(
                    None if scan.sargable is None
                    else ScanPredicate(scan.sargable, scan.schema.key)
                ),
            )
        collector = _ResultCollector(plan.root, participants)
        pinned_epochs = {scan.op_id: scan.epoch for scan in plan.scans()}
        scanned = tuple(
            (spec.relation, spec.epoch, pinned_epochs.get(op_id))
            for op_id, spec in sorted(scan_specs.items())
        )
        active = _ActiveQuery(
            query_id=query_id,
            plan=plan,
            epoch=epoch,
            options=options,
            snapshot=snapshot,
            original_snapshot=snapshot,
            scan_specs=scan_specs,
            collector=collector,
            on_complete=on_complete,
            statistics=statistics,
            traffic_start=self.node.network.traffic.snapshot(),
            encoding_start=ENCODING_STATS.snapshot(),
            resilience_start=self._resilience_totals(),
            integrity_start=self._integrity_totals(),
            fingerprint=fingerprint,
            scans=scanned,
            cache_publish_seq=cache_publish_seq,
            on_error=on_error,
        )
        self._active[query_id] = active
        # Each participant receives only what it needs: the plan, the routing
        # snapshot, its own index-node page assignments, the index nodes it
        # must wait for (scan end-of-stream senders) and the nodes it must
        # notify when its own index duties finish.  Shipping the full page
        # catalogue to every node would make plan dissemination grow with
        # (pages × participants) — a real implementation sends scan requests
        # only to the index nodes that own the pages (Algorithm 1).
        expected_by_participant, receivers_by_index_node = _scan_completion_maps(
            scan_specs, participants, snapshot
        )
        base_size = plan.estimated_size() + 32 * len(snapshot)
        for address in participants:
            per_node_specs = {
                op_id: spec.restricted_to(address) for op_id, spec in scan_specs.items()
            }
            expected = expected_by_participant[address]
            receivers = receivers_by_index_node[address]
            start_payload = {
                "query_id": query_id,
                "initiator": self.node.address,
                "plan": plan,
                "snapshot": snapshot,
                "options": options,
                "scan_specs": per_node_specs,
                "expected_scan_senders": expected,
                "scan_done_receivers": receivers,
            }
            size = (
                base_size
                + sum(spec.estimated_size() for spec in per_node_specs.values())
                + 16 * sum(len(nodes) for nodes in expected.values())
                + 16 * sum(len(nodes) for nodes in receivers.values())
            )
            self.rpc.cast(address, "query.start", start_payload, size)

    def participants_of(self, snapshot: RoutingSnapshot) -> list[str]:
        """Physical participants under ``snapshot``, in ring order.

        Delegates to the snapshot's memoised physical-node tuple (the old
        per-call list-scan dedup was O(n²) and ran several times per message
        at large clusters); returns a fresh list so callers may mutate it.
        """
        return list(snapshot.physical_nodes())

    # ------------------------------------------------------------- participant side

    def _context_or_buffer(
        self, method: str, payload: Mapping[str, object]
    ) -> _NodeQueryContext | None:
        """The query's context, or None with the message buffered/dropped.

        Early messages (the query's start has not arrived here yet) are held
        for replay; late ones (the query was already aborted here) are
        dropped.  A message for a query whose initiator crashed before this
        node ever saw the start stays buffered — bounded by the crashed
        query's fan-out and reclaimed when this node itself restarts.
        """
        query_id = payload["query_id"]
        context = self._contexts.get(query_id)
        if context is not None:
            return context
        if query_id not in self._finished_queries:
            self._pending_messages.setdefault(query_id, []).append((method, payload))
        return None

    def _on_start(self, _src: str, payload: Mapping[str, object], _respond) -> None:
        query_id: str = payload["query_id"]
        if query_id in self._finished_queries:
            return  # the query already completed cluster-wide; stale start
        plan: PhysicalPlan = payload["plan"]
        snapshot: RoutingSnapshot = payload["snapshot"]
        options: QueryOptions = payload["options"]
        scan_specs: Mapping[int, _ScanSpec] = payload["scan_specs"]
        context = _NodeQueryContext(
            self, query_id, plan, snapshot, payload["initiator"], options, scan_specs
        )
        self._contexts[query_id] = context
        context.scan_done_receivers = dict(payload["scan_done_receivers"])
        context.arm_scans(payload["expected_scan_senders"])
        # Perform this node's index-node duties for each scan.
        for spec in scan_specs.values():
            assigned = spec.pages_by_index_node.get(self.node.address, [])
            if assigned:
                self._run_index_scan(context, spec, assigned, restrict_ranges=None)
        # Replay whatever raced ahead of the start, in arrival order.
        for method, early_payload in self._pending_messages.pop(query_id, ()):
            self._replay(method, early_payload)

    def _replay(self, method: str, payload: Mapping[str, object]) -> None:
        handler = {
            "query.scan_tuples": self._on_scan_tuples,
            "query.scan_done": self._on_scan_done,
            "query.data": self._on_data,
            "query.eos": self._on_eos,
            "query.recover": self._on_recover,
        }[method]
        handler("", payload, None)

    def _run_index_scan(
        self,
        context: _NodeQueryContext,
        spec: _ScanSpec,
        pages: Sequence[PageRef],
        restrict_ranges: Sequence[KeyRange] | None,
    ) -> None:
        """Index-node role: filter pages and fan out tuple requests.

        ``restrict_ranges`` limits the produced tuple IDs to the given hash
        ranges (used during incremental recovery, where only the failed nodes'
        ranges must be re-produced).  When all assigned pages have been
        processed, a ``scan_done`` marker is sent to every participant that may
        have received tuple requests from this index node (the set precomputed
        by the initiator); during a recovery phase it is broadcast to everyone.
        """
        remaining = {"count": len(pages)}

        def page_processed() -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                done_payload = {
                    "query_id": context.query_id,
                    "scan_op_id": spec.scan_op_id,
                    "sender": self.node.address,
                    "phase": context.phase,
                }
                receivers = context.scan_done_receivers.get(spec.scan_op_id)
                if receivers is None or context.phase > 0:
                    receivers = context.participants()
                for address in receivers:
                    self.rpc.cast(address, "query.scan_done", done_payload, 12)

        if not pages:
            page_processed()
            return

        for ref in pages:
            self._process_scan_page(context, spec, ref, restrict_ranges, page_processed)

    def _process_scan_page(
        self,
        context: _NodeQueryContext,
        spec: _ScanSpec,
        ref: PageRef,
        restrict_ranges: Sequence[KeyRange] | None,
        done: Callable[[], None],
    ) -> None:
        page = self.storage.local_or_cached_page(ref.page_id)
        if page is None:
            # Fetch the page from a replica before scanning it (the ring may
            # have moved since the page was written).
            from ..storage.client import search_targets

            targets = search_targets(
                context.snapshot, ref.storage_key, self.replication_factor,
                exclude=(self.node.address,),
            )

            def fetched(rep) -> None:
                # Keep the immutable page version for the next query that
                # scans it here (the ring will not move back on its own).
                if self.storage.cache is not None:
                    self.storage.cache.put_page(rep["page"])
                self._scan_page_contents(context, spec, rep["page"], restrict_ranges, done)

            def attempt(index: int) -> None:
                if index >= len(targets):
                    # No reachable node can produce this page right now (its
                    # holders are down or unreachable): rows would silently
                    # vanish from the answer.  Tell the initiator, which
                    # restarts the query against a fresh snapshot.
                    self.rpc.cast(
                        context.initiator(), "query.scan_failed",
                        {"query_id": context.query_id, "page_id": ref.page_id}, 24,
                    )
                    done()
                    return
                self.rpc.call(
                    targets[index], "store.get_page", {"page_id": ref.page_id}, 32,
                    on_reply=lambda rep: fetched(rep)
                    if not rep.get("missing") else attempt(index + 1),
                    on_failure=lambda _addr: attempt(index + 1),
                )

            resilience = self.node.services.get("resilience")
            if resilience is not None:
                def unavailable() -> None:
                    self.rpc.cast(
                        context.initiator(), "query.scan_failed",
                        {"query_id": context.query_id, "page_id": ref.page_id}, 24,
                    )
                    done()

                resilience.chase_call(
                    targets, "store.get_page", {"page_id": ref.page_id}, 32,
                    accept=lambda _src, rep: (
                        False if rep.get("missing") else (fetched(rep) or True)
                    ),
                    on_exhausted=unavailable,
                )
                return

            attempt(0)
            return
        self._scan_page_contents(context, spec, page, restrict_ranges, done)

    def _scan_page_contents(self, context, spec, page, restrict_ranges, done) -> None:
        self.node.charge_cpu(0.2e-6 * len(page.tuple_ids))
        matching = page.tuple_ids
        key_predicate = spec.key_predicate_function()
        if key_predicate is not None:
            matching = [tid for tid in matching if key_predicate(tid.key_values)]
        if restrict_ranges:
            matching = [
                tid for tid in matching
                if any(key_range.contains(tid.hash_key) for key_range in restrict_ranges)
            ]
        if spec.covering:
            # Covering index scan: rows are produced right here at the index node.
            source = context.fragment.scan_sources.get(spec.scan_op_id)
            if source is not None and matching:
                source.deliver_key_rows(matching)
            done()
            return
        resilience = self.node.services.get("resilience")
        by_data_node: dict[str, list] = {}
        for tid in matching:
            if resilience is None:
                owner = physical_address(context.snapshot.owner_of(tid.hash_key))
            else:
                # Same health-aware replica choice as the page assignment:
                # the data-node handler recovers tuple versions it lacks, so
                # any healthy replica is a valid destination.
                from ..overlay.replication import replica_set

                owner = resilience.select_target(
                    replica_set(context.snapshot, tid.hash_key, self.replication_factor)
                )
            by_data_node.setdefault(owner, []).append(tid)
        for data_node, tids in by_data_node.items():
            self.rpc.cast(
                data_node, "query.scan_tuples",
                {
                    "query_id": context.query_id,
                    "scan_op_id": spec.scan_op_id,
                    "relation": spec.relation,
                    "tuple_ids": tids,
                },
                size=24 * len(tids) + 64,
            )
        done()

    def _on_scan_tuples(self, _src: str, payload: Mapping[str, object], _respond) -> None:
        context = self._context_or_buffer("query.scan_tuples", payload)
        if context is None:
            return
        scan_op_id = payload["scan_op_id"]
        source = context.fragment.scan_sources.get(scan_op_id)
        if source is None:
            return
        relation = payload["relation"]
        found, missing = self.storage.lookup_tuples(relation, payload["tuple_ids"])
        source.deliver_tuples(found)
        if not missing:
            return
        # Tuple versions this node should serve but does not hold (the ring
        # moved and background replication has not caught up): chase each one
        # across the replicas before the scan is allowed to complete, exactly
        # as Algorithm-1 retrieval does — dropping them would silently lose
        # rows from the answer.  A version found on no live node aborts the
        # query attempt through the initiator (scan_failed → restart).
        from ..storage.client import search_targets

        phase = context.phase
        resilience = self.node.services.get("resilience")
        for tid in missing:
            context.begin_scan_fetch(scan_op_id)
            replicas = search_targets(
                context.snapshot, tid.hash_key, self.replication_factor,
                exclude=(self.node.address,),
            )

            if resilience is not None:

                def accept(_src, reply, tid=tid) -> bool:
                    if context.phase != phase:
                        return True  # superseded: consume silently
                    fetched = [t for t in reply.get("tuples", []) if t.tuple_id == tid]
                    if not fetched:
                        return False
                    self.storage.store_tuple(fetched[0])
                    source.deliver_tuples(fetched)
                    context.end_scan_fetch(scan_op_id)
                    return True

                def exhausted(tid=tid) -> None:
                    if context.phase != phase:
                        return
                    self.rpc.cast(
                        context.initiator(), "query.scan_failed",
                        {"query_id": context.query_id, "tuple_id": tid}, 24,
                    )
                    context.end_scan_fetch(scan_op_id)

                resilience.chase_call(
                    replicas, "store.get_tuples",
                    {"relation": relation, "tuple_ids": [tid]}, 48,
                    accept, on_exhausted=exhausted,
                )
                continue

            def attempt(index: int, tid=tid, replicas=replicas) -> None:
                if context.phase != phase:
                    return  # recovery superseded this attempt's chases
                if index >= len(replicas):
                    self.rpc.cast(
                        context.initiator(), "query.scan_failed",
                        {"query_id": context.query_id, "tuple_id": tid}, 24,
                    )
                    context.end_scan_fetch(scan_op_id)
                    return

                def handle(reply: Mapping[str, object]) -> None:
                    if context.phase != phase:
                        return
                    fetched = [t for t in reply.get("tuples", []) if t.tuple_id == tid]
                    if fetched:
                        self.storage.store_tuple(fetched[0])
                        source.deliver_tuples(fetched)
                        context.end_scan_fetch(scan_op_id)
                    else:
                        attempt(index + 1)

                self.rpc.call(
                    replicas[index], "store.get_tuples",
                    {"relation": relation, "tuple_ids": [tid]}, 48,
                    on_reply=handle,
                    on_failure=lambda _addr: attempt(index + 1),
                )

            attempt(0)

    def _on_scan_failed(self, _src: str, payload: Mapping[str, object], _respond) -> None:
        """A participant could not produce a leaf page from any replica.

        Completing the query would silently drop the page's rows, so the
        initiator restarts it instead: the fresh attempt resolves against the
        current membership, where the page's holder is typically back (or the
        page has been re-replicated).  Bounded by ``max_restarts`` like every
        other restart, after which the query fails loudly.
        """
        active = self._active.get(payload["query_id"])
        if active is None or active.completed:
            return
        self._restart_query(active)

    def _on_scan_done(self, _src: str, payload: Mapping[str, object], _respond) -> None:
        context = self._context_or_buffer("query.scan_done", payload)
        if context is None:
            return
        context.note_scan_done(
            payload["scan_op_id"], payload["sender"], payload["phase"]
        )

    # ----------------------------------------------------------------- data exchange

    def send_data(
        self,
        context: _NodeQueryContext,
        destination: str,
        exchange_id: int,
        rows: list[TaggedRow],
        eos: bool = False,
    ) -> None:
        attributes = rows[0].row.attributes if rows else ()
        values = [row.row.values for row in rows]
        if context.encoding_enabled:
            # Exchanges ship encoded columns: the charged wire size is the
            # compressed *encoded* batch.  ``enable_encoding=False`` (the A/B
            # knob mirroring ``enable_pushdown``) restores the raw batch size.
            batch = EncodedTupleBatch.build(attributes, values)
        else:
            batch = TupleBatch.build(attributes, values)
        size = batch.wire_size
        if context.provenance_enabled:
            # Identical to batch_size(rows) - sum(row sizes): only the tag
            # overhead rides on top of the real compressed batch size.
            size += provenance_overhead(rows)
        payload = {
            "query_id": context.query_id,
            "exchange_id": exchange_id,
            "sender": self.node.address,
            "phase": context.phase,
            "rows": rows,
        }
        if eos:
            # Piggybacked end-of-stream marker: one flag byte on the final
            # batch instead of a separate fixed-overhead query.eos message.
            payload["eos"] = True
            size += 1
        self.rpc.cast(destination, "query.data", payload, size)

    def send_eos(self, context: _NodeQueryContext, destination: str, exchange_id: int) -> None:
        payload = {
            "query_id": context.query_id,
            "exchange_id": exchange_id,
            "sender": self.node.address,
            "phase": context.phase,
        }
        self.rpc.cast(destination, "query.eos", payload, 12)

    def send_eos_summary(
        self, context: _NodeQueryContext, exchange_id: int, zero_destinations: list[str]
    ) -> None:
        """Report exchange completion to the initiator (large clusters only).

        ``zero_destinations`` are the participants this sender shipped no rows
        to; the initiator relays their end-of-stream in aggregate instead of
        this node fanning out one empty-pair EOS message each.  Charged as the
        12-byte control frame plus a destination bitmap over the participants.
        """
        payload = {
            "query_id": context.query_id,
            "exchange_id": exchange_id,
            "sender": self.node.address,
            "phase": context.phase,
            "zero": list(zero_destinations),
        }
        size = 12 + (len(context.participants()) + 7) // 8
        self.rpc.cast(context.initiator_address, "query.eos_summary", payload, size)

    def _on_eos_summary(self, _src: str, payload: Mapping[str, object], _respond) -> None:
        active = self._active.get(payload["query_id"])
        if active is None or active.completed:
            return
        phase = payload["phase"]
        if phase < active.phase:
            # Stale report from before a recovery phase bump: the sender will
            # re-run finish() in the current phase and report again.
            return
        key = (payload["exchange_id"], phase)
        active.eos_summaries.setdefault(key, {})[payload["sender"]] = list(
            payload["zero"]
        )
        self._maybe_relay_eos(active, key)

    def _maybe_relay_eos(self, active: _ActiveQuery, key: tuple[int, int]) -> None:
        """Relay aggregated EOS once every live sender reported ``key``."""
        reports = active.eos_summaries.get(key)
        if reports is None:
            return
        # Cheap lower bound first: |expected| >= |participants| - |failed|,
        # and expected <= reports needs len(reports) >= |expected|.  Every
        # summary but the last one fails this length test, so the O(n) set
        # comparison below runs once per (exchange, phase), not per report.
        if len(reports) < len(active.snapshot.physical_nodes()) - len(active.failed_nodes):
            return
        expected = {
            address
            for address in self.participants_of(active.snapshot)
            if address not in active.failed_nodes
        }
        if not expected <= set(reports):
            return
        exchange_id, phase = key
        del active.eos_summaries[key]
        by_destination: dict[str, list[str]] = {}
        for sender in sorted(expected):
            for destination in reports[sender]:
                by_destination.setdefault(destination, []).append(sender)
        # One aggregated marker per destination: the control frame plus a
        # sender bitmap over the participants.
        size = 12 + (len(expected) + 7) // 8
        for destination, senders in by_destination.items():
            if destination in active.failed_nodes:
                continue
            relay_payload = {
                "query_id": active.query_id,
                "exchange_id": exchange_id,
                "phase": phase,
                "senders": senders,
            }
            self.rpc.cast(destination, "query.eos", relay_payload, size)

    def _on_data(self, _src: str, payload: Mapping[str, object], _respond) -> None:
        query_id = payload["query_id"]
        exchange_id = payload["exchange_id"]
        rows: list[TaggedRow] = payload["rows"]
        eos = payload.get("eos", False)
        active = self._active.get(query_id)
        if active is not None and exchange_id == active.plan.root.op_id:
            if not active.completed:
                active.collector.accept(rows, active.failed_nodes)
                if eos:
                    active.collector.sender_eos(payload["sender"], payload["phase"])
                    self._maybe_complete(active)
            return
        context = self._context_or_buffer("query.data", payload)
        if context is None:
            return
        receiver = context.fragment.receivers.get(exchange_id)
        if receiver is not None:
            receiver.accept(rows)
            if eos:
                receiver.sender_eos(payload["sender"], payload["phase"])

    def _on_eos(self, _src: str, payload: Mapping[str, object], _respond) -> None:
        query_id = payload["query_id"]
        exchange_id = payload["exchange_id"]
        phase = payload["phase"]
        # Direct EOS names one sender; an initiator relay carries the
        # aggregated list of senders that had no data for this node.
        senders = payload.get("senders")
        if senders is None:
            senders = (payload["sender"],)
        active = self._active.get(query_id)
        if active is not None and exchange_id == active.plan.root.op_id:
            if not active.completed:
                for sender in senders:
                    active.collector.sender_eos(sender, phase)
                self._maybe_complete(active)
            return
        context = self._context_or_buffer("query.eos", payload)
        if context is None:
            return
        receiver = context.fragment.receivers.get(exchange_id)
        if receiver is not None:
            for sender in senders:
                receiver.sender_eos(sender, phase)

    def _maybe_complete(self, active: _ActiveQuery) -> None:
        if active.completed or not active.collector.is_complete(
            active.failed_nodes, active.phase
        ):
            return
        active.completed = True
        network = self.node.network
        active.statistics.completed_at = network.now
        traffic = active.traffic_start.delta(network.traffic.snapshot())
        active.statistics._absorb_traffic(traffic)
        active.statistics._absorb_encoding(
            active.encoding_start, ENCODING_STATS.snapshot()
        )
        active.statistics._absorb_resilience(
            active.resilience_start, self._resilience_totals()
        )
        active.statistics._absorb_integrity(
            active.integrity_start, self._integrity_totals()
        )
        active.statistics.rows_shipped = active.collector.rows_received
        result = QueryResult(
            attributes=active.plan.output_attributes(),
            rows=active.collector.final_rows(),
            statistics=active.statistics,
        )
        if (
            self.result_cache is not None
            and active.options.use_result_cache
            and active.fingerprint is not None
            # A publish that completed while this query ran may have raced
            # its scan resolutions (some scans pre-publish, some post); such
            # a result is correct for *no* epoch key, so it never enters the
            # cache.  On the serial path the sequence cannot move mid-query
            # and every result is cached exactly as before.
            and self._cache_publish_seq() == active.cache_publish_seq
        ):
            self.result_cache.store_result(
                active.fingerprint,
                active.epoch,
                result.attributes,
                result.rows,
                active.scans,
                cold_bytes=active.statistics.bytes_total,
            )
        # Clean up participant-side state for this query everywhere.
        self._send_aborts(active)
        del self._active[active.query_id]
        active.on_complete(result)

    def _send_aborts(self, active: _ActiveQuery, include_self: bool = True) -> None:
        """Fan ``query.abort`` out to the query's live participants.

        The single place both completion and restart broadcast from, and
        idempotent per ``(query_id, node)``: a participant that was already
        told to drop the query's state is never messaged again.
        """
        for address in self.participants_of(active.snapshot):
            if address in active.failed_nodes or address in active.aborts_sent:
                continue
            if not include_self and address == self.node.address:
                continue
            active.aborts_sent.add(address)
            self.rpc.cast(address, "query.abort", {"query_id": active.query_id}, 12)

    def _on_abort(self, _src: str, payload: Mapping[str, object], _respond) -> None:
        query_id = payload["query_id"]
        self._teardown_context(query_id)
        self._pending_messages.pop(query_id, None)
        self._note_finished(query_id)

    def _teardown_context(self, query_id: str) -> None:
        """Drop the participant-side context, reporting operator summaries to
        the tracer first so per-operator row/batch counts survive teardown.
        Crash resets bypass this deliberately: a dead node reports nothing."""
        context = self._contexts.pop(query_id, None)
        if context is None:
            return
        tracer = self.node.network.tracer
        if tracer is not None:
            self._emit_operator_summaries(tracer, context)

    def _emit_operator_summaries(self, tracer, context: _NodeQueryContext) -> None:
        from .operators import AggregateOperator, HashJoinOperator

        node = self.node.address
        query_id = context.query_id
        fragment = context.fragment
        for op_id, source in fragment.scan_sources.items():
            tracer.record_operator_summary(
                query_id, node, op_id, "scan", {"rows_out": source.rows_produced}
            )
        for op_id, sender in fragment.senders.items():
            tracer.record_operator_summary(
                query_id, node, op_id, "sender",
                {"rows_sent": sender.rows_sent, "batches_sent": sender.batches_sent},
            )
        for op_id, receiver in fragment.receivers.items():
            tracer.record_operator_summary(
                query_id, node, op_id, "receiver",
                {"rows_received": receiver.rows_received},
            )
        for op_id, operator in fragment.operators.items():
            if op_id < 0:
                continue  # negative ids alias exchange senders, reported above
            if isinstance(operator, HashJoinOperator):
                tracer.record_operator_summary(
                    query_id, node, op_id, "join", {"rows_out": operator.rows_joined}
                )
            elif isinstance(operator, AggregateOperator):
                tracer.record_operator_summary(
                    query_id, node, op_id, "aggregate",
                    {"rows_out": operator.group_count()},
                )

    # ------------------------------------------------------------------- failures

    def _on_peer_failure(self, failed_address: str) -> None:
        for context in self._contexts.values():
            context.failed_nodes.add(failed_address)
        for active in list(self._active.values()):
            if active.completed:
                continue
            if failed_address not in self.participants_of(active.snapshot):
                continue
            if failed_address in active.failed_nodes:
                continue
            active.failed_nodes.add(failed_address)
            active.statistics.failures_handled += 1
            # Failure listeners run with no active trace context; open a phase
            # span in the query's existing trace so the restart/recovery
            # fan-out stays in the trace instead of becoming orphan roots.
            if active.options.recovery_mode == RECOVERY_RESTART:
                phase = self._trace_phase(active.statistics, "query.restart")
                try:
                    self._restart_query(active)
                finally:
                    self._end_trace_phase(phase)
            else:
                phase = self._trace_phase(active.statistics, "query.recovery")
                try:
                    self._incremental_recovery(active, failed_address)
                finally:
                    self._end_trace_phase(phase)

    def _trace_phase(self, statistics: QueryStatistics, name: str):
        """Open and activate ``name`` as a span inside the query's trace;
        returns the token for :meth:`_end_trace_phase` (``None`` untraced)."""
        tracer = self.node.network.tracer
        if tracer is None or statistics.trace_id is None:
            return None
        context = tracer.current()
        parent_id = (
            context.span_id
            if context is not None and context.trace_id == statistics.trace_id
            else None
        )
        span = tracer.open_span(
            name, self.node.address, self.node.network.now,
            trace_id=statistics.trace_id, parent_id=parent_id,
        )
        token = tracer.activate(span)
        return (tracer, span, token)

    def _end_trace_phase(self, phase) -> None:
        if phase is None:
            return
        tracer, span, token = phase
        tracer.deactivate(token)
        tracer.end_span(span, self.node.network.now)

    # -- full restart ------------------------------------------------------------------

    def _restart_query(self, active: _ActiveQuery) -> None:
        """Abort the in-flight execution and re-run the query from scratch."""
        if active.statistics.restarts >= active.options.max_restarts:
            error = QueryError(
                f"query {active.query_id} exceeded the maximum number of restarts"
            )
            if active.on_error is not None:
                # Resolve the submitting session's operation instead of
                # blowing up the event loop from a message handler.
                self._send_aborts(active, include_self=False)
                self._teardown_context(active.query_id)
                self._active.pop(active.query_id, None)
                active.completed = True
                active.on_error(error)
                return
            raise QueryError(
                f"query {active.query_id} exceeded the maximum number of restarts"
            )
        self._send_aborts(active, include_self=False)
        self._teardown_context(active.query_id)
        del self._active[active.query_id]

        # Account the aborted attempt's traffic before the relaunch resets the
        # per-attempt traffic baseline.
        aborted_traffic = active.traffic_start.delta(self.node.network.traffic.snapshot())
        statistics = active.statistics
        statistics._absorb_traffic(aborted_traffic)
        statistics._absorb_encoding(active.encoding_start, ENCODING_STATS.snapshot())
        statistics._absorb_resilience(active.resilience_start, self._resilience_totals())
        statistics._absorb_integrity(active.integrity_start, self._integrity_totals())
        statistics.restarts += 1

        def relaunch() -> None:
            new_snapshot = self.membership.snapshot()
            query_id = self._next_query_id()
            tracer = self.node.network.tracer
            if tracer is not None and statistics.trace_id is not None:
                # The relaunched attempt keeps the submission's trace.
                tracer.query_traces.setdefault(query_id, statistics.trace_id)
            new_statistics = statistics  # keep cumulative timing and counters
            # The restart re-resolves every scan, so the publish-race guard
            # window restarts here too.
            cache_seq = self._cache_publish_seq()
            self._resolve_scans(
                active.plan, active.epoch, new_snapshot,
                on_ready=lambda specs: self._launch(
                    query_id, active.plan, active.epoch, active.options, new_snapshot,
                    specs, new_statistics, active.on_complete,
                    fingerprint=active.fingerprint, cache_publish_seq=cache_seq,
                    on_error=active.on_error,
                ),
                on_error=active.on_error or (lambda exc: (_ for _ in ()).throw(exc)),
            )

        relaunch()

    # -- incremental recovery -------------------------------------------------------------

    def _incremental_recovery(self, active: _ActiveQuery, failed_address: str) -> None:
        """The four recovery stages of Section V-D, driven by the initiator."""
        # Stage 1: determine the change in the assignment of ranges to nodes.
        failed_ranges = [active.snapshot.range_of(entry)
                         for entry in active.snapshot.nodes
                         if physical_address(entry) == failed_address]
        new_snapshot, _moves = active.snapshot.reassign_failed(
            [entry for entry in active.snapshot.nodes
             if physical_address(entry) == failed_address],
            self.replication_factor,
        )
        active.snapshot = new_snapshot
        active.phase += 1
        active.statistics.phases += 1
        # Summaries gathered for earlier phases are void: every live sender
        # re-runs finish() in the new phase and reports afresh.
        active.eos_summaries = {
            key: reports
            for key, reports in active.eos_summaries.items()
            if key[1] >= active.phase
        }

        # Stage 2 will be executed at every node on receipt of the recover
        # message (drop tainted intermediate results).  The collector purges
        # its own tainted results here.
        active.collector.purge_tainted(active.failed_nodes)
        active.collector.reset_eos(self.participants_of(new_snapshot), active.failed_nodes)

        # Stage 3: restart leaf-level operations for the failed ranges.
        rescan_by_node: dict[str, list] = {}
        for op_id, spec in active.scan_specs.items():
            for index_node, pages in spec.pages_by_index_node.items():
                for ref in pages:
                    if index_node == failed_address:
                        # The failed node was the index node: the new owner of
                        # the page re-scans it entirely.
                        new_owner = physical_address(new_snapshot.owner_of(ref.storage_key))
                        rescan_by_node.setdefault(new_owner, []).append((op_id, ref, None))
                    elif not spec.covering:
                        # Live index node: re-produce only the tuple IDs whose
                        # data lived on the failed node.
                        rescan_by_node.setdefault(index_node, []).append(
                            (op_id, ref, failed_ranges)
                        )
            # Update the spec's page assignment (failed node's pages move to
            # the new owners) so a later failure reassigns from current state.
            reassigned: dict[str, list[PageRef]] = {}
            for index_node, pages in spec.pages_by_index_node.items():
                for ref in pages:
                    target = index_node
                    if index_node == failed_address:
                        target = physical_address(new_snapshot.owner_of(ref.storage_key))
                    reassigned.setdefault(target, []).append(ref)
            spec.pages_by_index_node = reassigned

        # Stage 2 + 4 are executed by the participants when they receive the
        # recover message: purge tainted state, then re-create data that was
        # sent to the failed nodes from the exchange caches.
        recover_payload = {
            "query_id": active.query_id,
            "failed": set(active.failed_nodes),
            "snapshot": new_snapshot,
            "phase": active.phase,
            "rescans": rescan_by_node,
        }
        size = 64 + 32 * len(new_snapshot) + 64 * sum(len(v) for v in rescan_by_node.values())
        for address in self.participants_of(new_snapshot):
            self.rpc.cast(address, "query.recover", recover_payload, size)

    def _on_recover(self, _src: str, payload: Mapping[str, object], _respond) -> None:
        context = self._context_or_buffer("query.recover", payload)
        if context is None:
            return
        failed: set[str] = set(payload["failed"])
        context.failed_nodes |= failed
        context.snapshot = payload["snapshot"]
        context.phase = payload["phase"]

        # Stage 2: drop all intermediate results dependent on the failed nodes.
        context.fragment.purge_tainted(failed)
        context.fragment.reset_for_phase(context.phase)

        # Stage 4: re-create data that was sent to the failed nodes.  This must
        # happen before the new phase's end-of-stream tracking is armed so the
        # re-sent rows are on the wire (FIFO per node pair) before any phase
        # end-of-stream marker this node may emit.
        for sender in context.fragment.senders.values():
            sender.resend_for_failed(failed)

        # Re-arm scan end-of-stream tracking for the recovery phase.  Each
        # participant derives, from the shared rescan plan, the set of
        # rescanning index nodes whose rows can reach it; waiters and senders
        # apply the same rule, so no scan_done is awaited that is never sent.
        # Previous-phase tokens still pending are carried over: their senders'
        # rows and markers may still be in flight towards this node.
        expected: dict[int, set[str]] = {}
        for index_node, rescan_entries in payload["rescans"].items():
            for op_id, ref, ranges in rescan_entries:
                rescan_spec = context.scan_specs.get(op_id)
                if rescan_spec is None:
                    continue
                receivers = _recovery_receivers(
                    context.snapshot, index_node, rescan_spec, ref, ranges
                )
                if self.node.address in receivers:
                    expected.setdefault(op_id, set()).add(index_node)
        context.arm_scans(expected, carry_pending=True)

        # Stage 3: restart leaf-level operations for this node's share of the
        # failed ranges (acting as index node for the rescanned pages).
        my_rescans = payload["rescans"].get(self.node.address, [])
        by_scan: dict[int, list[tuple[PageRef, Sequence[KeyRange] | None]]] = {}
        for op_id, ref, ranges in my_rescans:
            by_scan.setdefault(op_id, []).append((ref, ranges))
        for op_id, entries in by_scan.items():
            spec = context.scan_specs.get(op_id)
            if spec is None:
                continue
            self._run_recovery_scan(context, spec, entries)

    def _run_recovery_scan(
        self,
        context: _NodeQueryContext,
        spec: _ScanSpec,
        entries: Sequence[tuple[PageRef, Sequence[KeyRange] | None]],
    ) -> None:
        remaining = {"count": len(entries)}

        def page_processed() -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                done_payload = {
                    "query_id": context.query_id,
                    "scan_op_id": spec.scan_op_id,
                    "sender": self.node.address,
                    "phase": context.phase,
                }
                receivers: set[str] = set()
                for ref, ranges in entries:
                    receivers |= _recovery_receivers(
                        context.snapshot, self.node.address, spec, ref, ranges
                    )
                for address in sorted(receivers):
                    self.rpc.cast(address, "query.scan_done", done_payload, 12)

        for ref, ranges in entries:
            self._process_scan_page(context, spec, ref, ranges, page_processed)


def _recovery_receivers(
    snapshot: RoutingSnapshot,
    index_node: str,
    spec: _ScanSpec,
    ref: PageRef,
    ranges: Sequence[KeyRange] | None,
) -> set[str]:
    """Participants a recovery rescan of ``ref`` at ``index_node`` can reach.

    Covering rescans produce their rows locally, so only the rescanning index
    node itself gates on the scan.  Non-covering rescans route every
    re-produced tuple to ``snapshot.owner_of(key)`` with the key inside the
    rescanned ranges (the whole page's hash range when the index node died,
    otherwise the failed node's old ranges), so the owners overlapping those
    ranges under the recovery snapshot are a guaranteed superset of the actual
    data receivers.  The rescanning sender and every armed waiter derive their
    expectations from this same function; the previous full broadcast per
    rescanning node made each mid-query failure O(participants²) scan_done
    messages, the dominant wall in large-cluster churn runs.
    """
    if spec.covering:
        return {index_node}
    pieces = (ref.hash_range,) if ranges is None else tuple(ranges)
    touched: set[str] = set()
    for piece in pieces:
        for entry in snapshot.owners_overlapping(piece):
            touched.add(physical_address(entry))
    return touched


def query_service_of(node: SimNode) -> QueryService:
    service = node.services.get("query")
    if not isinstance(service, QueryService):
        raise LookupError(f"node {node.address!r} has no query service")
    return service
